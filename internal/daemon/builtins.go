package daemon

import (
	"strconv"
	"strings"

	"ace/internal/cmdlang"
	"ace/internal/telemetry"
)

// Built-in command names provided by every ACE daemon shell.
const (
	CmdPing               = "ping"
	CmdInfo               = "info"
	CmdCommands           = "commands"
	CmdStats              = "stats"
	CmdAddNotification    = "addNotification"
	CmdRemoveNotification = "removeNotification"
	CmdListNotifications  = "listNotifications"
	CmdTelemetry          = "telemetry"
)

// builtinCommands are exempt from the authorization gate: they are
// the protocol plumbing every client needs before credentials can
// even be exchanged.
var builtinCommands = map[string]bool{
	CmdPing:               true,
	CmdInfo:               true,
	CmdCommands:           true,
	CmdStats:              true,
	CmdAddNotification:    true,
	CmdRemoveNotification: true,
	CmdListNotifications:  true,
	CmdTelemetry:          true,
}

func (d *Daemon) installBuiltins() {
	d.registry.DeclareAll(
		cmdlang.CommandSpec{Name: CmdPing, Doc: "liveness probe"},
		cmdlang.CommandSpec{Name: CmdInfo, Doc: "service identity and placement"},
		cmdlang.CommandSpec{Name: CmdCommands, Doc: "describe the command semantics"},
		cmdlang.CommandSpec{Name: CmdStats, Doc: "execution counters"},
		cmdlang.CommandSpec{
			Name: CmdAddNotification,
			Doc:  "register interest in a command's execution (§2.5)",
			Args: []cmdlang.ArgSpec{
				{Name: "cmd", Kind: cmdlang.KindWord, Required: true, Doc: "command to listen for"},
				{Name: "service", Kind: cmdlang.KindWord, Required: true, Doc: "service to notify"},
				{Name: "addr", Kind: cmdlang.KindString, Required: true, Doc: "host:port of the notified service"},
				{Name: "method", Kind: cmdlang.KindWord, Required: true, Doc: "command interface method to invoke"},
			},
		},
		cmdlang.CommandSpec{
			Name: CmdRemoveNotification,
			Args: []cmdlang.ArgSpec{
				{Name: "cmd", Kind: cmdlang.KindWord, Required: true},
				{Name: "service", Kind: cmdlang.KindWord, Required: true},
				{Name: "method", Kind: cmdlang.KindWord, Required: true},
			},
		},
		cmdlang.CommandSpec{
			Name: CmdListNotifications,
			Args: []cmdlang.ArgSpec{{Name: "cmd", Kind: cmdlang.KindWord}},
		},
		cmdlang.CommandSpec{
			Name: CmdTelemetry,
			Doc:  "introspect metrics and traces",
			Args: []cmdlang.ArgSpec{
				{Name: "op", Kind: cmdlang.KindWord, Required: true, Doc: "metrics | trace"},
				{Name: "id", Kind: cmdlang.KindString, Doc: "trace id (16 hex digits), for op=trace"},
			},
		},
	)

	d.bind(CmdPing, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().SetWord("service", wordOr(d.cfg.Name)), nil
	})
	d.bind(CmdInfo, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().
			SetWord("name", wordOr(d.cfg.Name)).
			SetString("class", d.cfg.Class).
			SetWord("room", wordOr(d.cfg.Room)).
			SetWord("host", wordOr(d.cfg.Host)).
			SetInt("port", int64(d.Port())).
			SetString("dataAddr", d.DataAddr()), nil
	})
	d.bind(CmdCommands, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().
			Set("names", cmdlang.WordVector(d.registry.Names()...)).
			SetString("describe", d.registry.Describe()), nil
	})
	d.bind(CmdStats, func(_ *Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		s := d.Stats()
		return cmdlang.OK().
			SetInt("connections", s.Connections).
			SetInt("ok", s.CommandsOK).
			SetInt("fail", s.CommandsFail).
			SetInt("denied", s.Denied).
			SetInt("notifications", s.Notifications).
			SetInt("data", s.DataPackets), nil
	})
	d.bind(CmdAddNotification, func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		d.notify.add(c.Str("cmd", ""), notifyTarget{
			Service: c.Str("service", ""),
			Addr:    c.Str("addr", ""),
			Method:  c.Str("method", ""),
		})
		return nil, nil
	})
	d.bind(CmdRemoveNotification, func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		removed := d.notify.remove(c.Str("cmd", ""), c.Str("service", ""), c.Str("method", ""))
		return cmdlang.OK().SetInt("removed", int64(removed)), nil
	})
	d.bind(CmdTelemetry, func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		switch op := c.Str("op", ""); op {
		case "metrics":
			if d.tel == nil {
				return cmdlang.Fail(cmdlang.CodeUnavailable, "telemetry disabled"), nil
			}
			return telemetry.EncodeSnapshot(d.tel.Snapshot(), cmdlang.OK()), nil
		case "trace":
			if d.traces == nil {
				return cmdlang.Fail(cmdlang.CodeUnavailable, "telemetry disabled"), nil
			}
			id, err := telemetry.ParseID(c.Str("id", ""))
			if err != nil {
				return cmdlang.Fail(cmdlang.CodeBadArgument, "bad trace id: "+err.Error()), nil
			}
			return telemetry.EncodeSpans(d.traces.Trace(id), cmdlang.OK()), nil
		default:
			return cmdlang.Fail(cmdlang.CodeBadArgument, "op must be metrics or trace, got "+strconv.Quote(op)), nil
		}
	})
	d.bind(CmdListNotifications, func(_ *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		targets := d.notify.list(c.Str("cmd", ""))
		descs := make([]string, len(targets))
		for i, t := range targets {
			descs[i] = t.Service + "@" + t.Addr + "#" + t.Method
		}
		return cmdlang.OK().Set("targets", cmdlang.StringVector(descs...)), nil
	})
}

// wordOr substitutes a safe placeholder for values that are not legal
// words so built-in replies always encode.
func wordOr(s string) string {
	if cmdlang.IsWord(s) {
		return s
	}
	if s == "" {
		return "unset"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
