package lint

// The golden-test harness: each testdata/src/<check>/ directory is a
// tiny self-contained module (own go.mod, stand-in wire/pstore/daemon
// packages) annotated with `// want "regex"` comments. The harness
// loads the module with the real driver, runs one analyzer, and
// demands an exact 1:1 match between findings and want annotations —
// so every golden package fails the suite if its check is disabled
// (the wants go unmatched) and any overreach fails it too (unexpected
// findings).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// `// want "rx"` expects a finding on its own line; `// want-1 "rx"`
// (or want+N) offsets the expected line, for findings that land on
// comment-only lines such as malformed suppression directives.
var wantLine = regexp.MustCompile(`//\s*want([+-]\d+)?\s+(.+)$`)
var wantQuoted = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "…" ["…"]` annotations from every .go
// file under dir.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, err = strconv.Atoi(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want offset: %v", path, i+1, err)
				}
			}
			quotes := wantQuoted.FindAllStringSubmatch(m[2], -1)
			if len(quotes) == 0 {
				return fmt.Errorf("%s:%d: malformed want comment: %s", path, i+1, line)
			}
			for _, q := range quotes {
				src := q[1]
				if src == "" {
					src = q[2]
				}
				re, err := regexp.Compile(src)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1 + offset, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden loads testdata/src/<name> and checks analyzers against
// the want annotations.
func runGolden(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	for _, lerr := range prog.LoadErrors {
		t.Errorf("load error: %v", lerr)
	}
	findings := Run(prog, analyzers)
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("no want annotations under %s; a golden package must assert at least one true positive", dir)
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestGoldenCtxPropagation(t *testing.T) {
	runGolden(t, "ctxpropagation", []*Analyzer{CtxPropagation})
}
func TestGoldenLockHold(t *testing.T)   { runGolden(t, "lockhold", []*Analyzer{LockHold}) }
func TestGoldenDroppedErr(t *testing.T) { runGolden(t, "droppederr", []*Analyzer{DroppedErr}) }
func TestGoldenVerbReg(t *testing.T)    { runGolden(t, "verbreg", []*Analyzer{VerbReg}) }
func TestGoldenDetRand(t *testing.T)    { runGolden(t, "detrand", []*Analyzer{DetRand}) }
func TestGoldenBoundedSpawn(t *testing.T) {
	runGolden(t, "boundedspawn", []*Analyzer{BoundedSpawn})
}

// The interprocedural analyzers: each golden module is loaded with
// the full driver, so the call graph and fact store are exercised end
// to end (cross-package emission facts, reverse sink reachability,
// spawn-to-loop resolution, program-wide metric registries).
func TestGoldenVerbConformance(t *testing.T) {
	runGolden(t, "verbconformance", []*Analyzer{VerbConformance})
}
func TestGoldenDeadlineCheck(t *testing.T) {
	runGolden(t, "deadlinecheck", []*Analyzer{DeadlineCheck})
}
func TestGoldenGoroutineLeak(t *testing.T) {
	runGolden(t, "goroutineleak", []*Analyzer{GoroutineLeak})
}
func TestGoldenMetricNames(t *testing.T) {
	runGolden(t, "metricnames", []*Analyzer{MetricNames})
}

// TestGoldenSuppression is the suppression round trip: the suppress
// module contains real violations silenced by acelint:ignore (which
// must not surface), an unused suppression and a reason-less one
// (which must surface as [ignore] findings), all asserted by wants.
func TestGoldenSuppression(t *testing.T) { runGolden(t, "suppress", All) }

// TestChecksFireOnlyWhenEnabled pins the gate semantics: with every
// analyzer disabled the golden violations must produce zero findings,
// proving the findings above come from the named check and not from
// driver side effects.
func TestChecksFireOnlyWhenEnabled(t *testing.T) {
	for _, name := range []string{"ctxpropagation", "lockhold", "droppederr", "verbreg", "detrand", "boundedspawn",
		"verbconformance", "deadlinecheck", "goroutineleak", "metricnames"} {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Load(dir, []string{"./..."})
		if err != nil {
			t.Fatalf("Load(%s): %v", dir, err)
		}
		if got := Run(prog, nil); len(got) != 0 {
			t.Errorf("%s: %d findings with all checks disabled, want 0 (first: %s)", name, len(got), got[0])
		}
	}
}
