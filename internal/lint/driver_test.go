package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverToleratesTypeErrors loads a multi-package tree where one
// package fails to type-check (and another imports it): the load must
// not panic or abort, the type error must be reported, and findings
// from healthy packages must still surface.
func TestDriverToleratesTypeErrors(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if len(prog.LoadErrors) == 0 {
		t.Fatal("expected type errors from the broken package, got none")
	}
	sawUndefined := false
	for _, e := range prog.LoadErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			sawUndefined = true
		}
	}
	if !sawUndefined {
		t.Errorf("no load error mentions undefinedIdentifier; got: %v", prog.LoadErrors)
	}

	if len(prog.Packages) < 3 {
		t.Errorf("expected all 3 packages to load for analysis, got %d", len(prog.Packages))
	}

	findings := Run(prog, All)
	sawDetrand := false
	for _, f := range findings {
		if f.Check == "detrand" && strings.Contains(f.Msg, "time.Now()") {
			sawDetrand = true
		}
	}
	if !sawDetrand {
		t.Errorf("healthy chaos package's detrand finding missing; findings: %v", findings)
	}
}

// TestLoadRejectsNonsense pins the two hard failure modes: a
// directory outside any module and a pattern matching nothing.
func TestLoadRejectsNonsense(t *testing.T) {
	if _, err := Load("/", []string{"./..."}); err == nil {
		t.Error("Load outside a module: expected error")
	}
	if _, err := Load(".", []string{"./no/such/dir/..."}); err == nil {
		t.Error("Load with empty match: expected error")
	}
}

// TestByName covers check-list resolution for the -checks flag.
func TestByName(t *testing.T) {
	got, err := ByName("detrand, lockhold")
	if err != nil || len(got) != 2 || got[0].Name != "detrand" || got[1].Name != "lockhold" {
		t.Errorf("ByName: got %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch): expected error")
	}
}

// TestFactsFlowAcrossPackages pins the interprocedural contract end to
// end: verbconformance exports a verb.emits fact against the named
// handler registered in verbconftest/server, and the fact must contain
// "not_found" — a reply code emitted by verbconftest/storage, one call
// and one package boundary away. If call-graph edges stop crossing
// packages or the fact store's cross-unit object keying breaks, the
// emitted-code set collapses to the handler's own body and this fails.
func TestFactsFlowAcrossPackages(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "verbconformance"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	Run(prog, []*Analyzer{VerbConformance})

	var obj types.Object
	for _, pkg := range prog.Packages {
		if pkg.Path == "verbconftest/server" {
			obj = pkg.Types.Scope().Lookup("HandleRenew")
		}
	}
	if obj == nil {
		t.Fatal("HandleRenew not found in verbconftest/server scope")
	}
	v, ok := prog.Facts().Import(obj, "verb.emits")
	if !ok {
		t.Fatalf("no verb.emits fact on HandleRenew; fact keys: %v", prog.Facts().Keys())
	}
	codes, ok := v.([]string)
	if !ok {
		t.Fatalf("verb.emits fact has type %T, want []string", v)
	}
	sawNotFound, sawConflict := false, false
	for _, c := range codes {
		sawNotFound = sawNotFound || c == "not_found"
		sawConflict = sawConflict || c == "conflict"
	}
	if !sawNotFound {
		t.Errorf("verb.emits = %v: missing \"not_found\", the code storage.Lookup emits across the package boundary", codes)
	}
	if sawConflict {
		t.Errorf("verb.emits = %v: contains \"conflict\", which no reachable body emits", codes)
	}
}
