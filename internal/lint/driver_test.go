package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverToleratesTypeErrors loads a multi-package tree where one
// package fails to type-check (and another imports it): the load must
// not panic or abort, the type error must be reported, and findings
// from healthy packages must still surface.
func TestDriverToleratesTypeErrors(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if len(prog.LoadErrors) == 0 {
		t.Fatal("expected type errors from the broken package, got none")
	}
	sawUndefined := false
	for _, e := range prog.LoadErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			sawUndefined = true
		}
	}
	if !sawUndefined {
		t.Errorf("no load error mentions undefinedIdentifier; got: %v", prog.LoadErrors)
	}

	if len(prog.Packages) < 3 {
		t.Errorf("expected all 3 packages to load for analysis, got %d", len(prog.Packages))
	}

	findings := Run(prog, All)
	sawDetrand := false
	for _, f := range findings {
		if f.Check == "detrand" && strings.Contains(f.Msg, "time.Now()") {
			sawDetrand = true
		}
	}
	if !sawDetrand {
		t.Errorf("healthy chaos package's detrand finding missing; findings: %v", findings)
	}
}

// TestLoadRejectsNonsense pins the two hard failure modes: a
// directory outside any module and a pattern matching nothing.
func TestLoadRejectsNonsense(t *testing.T) {
	if _, err := Load("/", []string{"./..."}); err == nil {
		t.Error("Load outside a module: expected error")
	}
	if _, err := Load(".", []string{"./no/such/dir/..."}); err == nil {
		t.Error("Load with empty match: expected error")
	}
}

// TestByName covers check-list resolution for the -checks flag.
func TestByName(t *testing.T) {
	got, err := ByName("detrand, lockhold")
	if err != nil || len(got) != 2 || got[0].Name != "detrand" || got[1].Name != "lockhold" {
		t.Errorf("ByName: got %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch): expected error")
	}
}
