// Package lint is acelint: a stdlib-only static analyzer that
// enforces ACE's concurrency, context-propagation, and
// instrumentation invariants (docs/LINT.md).
//
// The package has two halves: a loader (this file) that turns `./...`
// style patterns into parsed, type-checked packages using nothing but
// go/parser, go/types, and go/importer — no x/tools — and a set of
// analyzers (ctxprop.go, lockhold.go, droppederr.go, verbreg.go,
// detrand.go) that run over the loaded packages and report findings.
//
// The loader resolves imports in three tiers: packages inside the
// module under analysis are parsed and type-checked from source
// recursively; everything else goes to the compiler export-data
// importer first and falls back to the source importer (which
// type-checks the standard library from GOROOT/src) when no export
// data is installed.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a package's source files (including
// in-package _test.go files) together with its type information. Test
// files are merged into the unit so checks that cover tests (detrand)
// see them; checks that exempt tests filter by file name.
type Package struct {
	// Path is the import path ("ace/internal/wire"). External test
	// packages get the base path with a " [test]" suffix.
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Files holds every parsed file in the unit, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (never nil, but possibly
	// incomplete when the package has type errors).
	Types *types.Package
	// Info carries the use/def/selection/type maps the analyzers
	// consult. Partially populated when type checking failed.
	Info *types.Info
}

// IsTestFile reports whether the given file position sits in a
// _test.go file.
func (p *Package) IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Program is a loaded module tree ready for analysis.
type Program struct {
	Fset *token.FileSet
	// Module is the module path from go.mod.
	Module string
	// Dir is the module root directory.
	Dir string
	// Packages are the analysis units matched by the load patterns,
	// sorted by import path.
	Packages []*Package
	// LoadErrors collects parse and type errors encountered anywhere
	// in the tree. The loader never fails on a broken package; it
	// records the error and keeps going so the remaining packages are
	// still analyzed.
	LoadErrors []error

	local map[string]bool // import paths type-checked from the module source
	graph *Graph          // lazily built interprocedural call graph
	facts *FactStore      // cross-package fact store, created with the graph
}

// Graph returns the program-wide call graph, building it on first
// use. Program-level analyzers receive it through ProgPass; tests and
// the doc generators call it directly.
func (p *Program) Graph() *Graph {
	if p.graph == nil {
		p.graph = BuildGraph(p)
	}
	return p.graph
}

// Facts returns the program's cross-package fact store.
func (p *Program) Facts() *FactStore {
	if p.facts == nil {
		p.facts = NewFactStore(p.Fset)
	}
	return p.facts
}

// IsLocal reports whether the import path was loaded from the module
// under analysis (as opposed to the standard library). Analyzers use
// it to restrict findings to calls into ACE's own APIs.
func (p *Program) IsLocal(path string) bool { return p.local[path] }

// loader drives discovery, parsing, and type checking.
type loader struct {
	fset    *token.FileSet
	module  string
	root    string
	gc      types.Importer
	src     types.Importer
	pure    map[string]*types.Package // completed pure (no test files) packages
	loading map[string]bool           // cycle detection
	errs    []error
	local   map[string]bool
}

// Load parses and type-checks the packages under dir matched by
// patterns. dir must be inside a Go module; patterns are "./...",
// "dir/...", or plain directories, all relative to dir. A broken
// package (parse or type errors) is recorded in LoadErrors and still
// returned for analysis; Load only errors when the module itself
// cannot be located or no pattern matches anything.
func Load(dir string, patterns []string) (*Program, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer consults build.Default; with cgo enabled it
	// would try to run the cgo tool on packages like net. The pure-Go
	// variants are what the repo builds against anyway.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		module:  module,
		root:    root,
		gc:      importer.Default(),
		src:     importer.ForCompiler(fset, "source", nil),
		pure:    make(map[string]*types.Package),
		loading: make(map[string]bool),
		local:   make(map[string]bool),
	}

	dirs, err := expand(dir, root, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("acelint: no packages match %v", patterns)
	}

	prog := &Program{Fset: fset, Module: module, Dir: root, local: l.local}
	for _, d := range dirs {
		units := l.analyze(d)
		prog.Packages = append(prog.Packages, units...)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	prog.LoadErrors = l.errs
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("acelint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("acelint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// expand resolves load patterns to package directories (absolute
// paths). testdata, vendor, and hidden directories are skipped, as
// the go tool does.
func expand(cwd, root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	_ = root
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPath maps a directory inside the module to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// dirFor maps an in-module import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

func (l *loader) isLocal(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// parseDir parses every buildable .go file in dir into three groups:
// regular files, in-package test files, and external (package foo_test)
// test files.
func (l *loader) parseDir(dir string) (base, inTest, extTest []*ast.File) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		l.errs = append(l.errs, err)
		return nil, nil, nil
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.errs = append(l.errs, err)
			if f == nil {
				continue
			}
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return base, inTest, extTest
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check type-checks files as one package, recording rather than
// failing on type errors.
func (l *loader) check(path string, files []*ast.File, info *types.Info) *types.Package {
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { l.errs = append(l.errs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info) // errors already collected
	return pkg
}

// Import implements types.Importer: module-local packages are
// type-checked from source (pure variant, no test files); everything
// else tries compiler export data and falls back to source.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isLocal(path) {
		return l.loadPure(path)
	}
	if pkg, err := l.gc.Import(path); err == nil && pkg != nil && pkg.Complete() {
		return pkg, nil
	}
	return l.src.Import(path)
}

// loadPure loads the non-test variant of an in-module package, for
// use as an import dependency.
func (l *loader) loadPure(path string) (*types.Package, error) {
	if pkg, ok := l.pure[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	base, _, _ := l.parseDir(dir)
	if len(base) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg := l.check(path, base, newInfo())
	l.pure[path] = pkg
	l.local[path] = true
	return pkg, nil
}

// analyze builds the analysis units for one directory: the package
// with its in-package test files merged, plus (when present) the
// external _test package as a second unit.
func (l *loader) analyze(dir string) []*Package {
	path := l.importPath(dir)
	base, inTest, extTest := l.parseDir(dir)
	var units []*Package

	if len(base) > 0 || len(inTest) > 0 {
		// Ensure the pure variant exists first so packages whose test
		// files are imported indirectly see the test-free export.
		if len(base) > 0 {
			if _, err := l.loadPure(path); err != nil {
				l.errs = append(l.errs, err)
			}
		}
		files := append(append([]*ast.File(nil), base...), inTest...)
		info := newInfo()
		pkg := l.check(path, files, info)
		l.local[path] = true
		units = append(units, &Package{Path: path, Name: pkg.Name(), Files: files, Types: pkg, Info: info})
	}

	if len(extTest) > 0 {
		info := newInfo()
		tpath := path + " [test]"
		pkg := l.check(tpath, extTest, info)
		units = append(units, &Package{Path: tpath, Name: pkg.Name(), Files: extTest, Types: pkg, Info: info})
	}
	return units
}
