package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricNames enforces the telemetry naming contract: every metric
// registered on a *telemetry.Registry (Counter / Gauge / Histogram)
// must be named by a string constant matching
//
//	^[a-z]+(\.[a-z_]+)+$
//
// and each name must be registered from exactly one declaration — the
// same named constant may be registered at many call sites (two
// constructors sharing one metric is fine), but two independent
// literals or two different constants spelling the same string is a
// collision that silently merges two series. A dynamic suffix is
// allowed as a metric *family* when it extends a constant prefix
// ending in "." ("daemon.dispatch." + verb); the family's prefix must
// match the same grammar. Registering one name with two different
// kinds (Counter here, Gauge there) is always an error. Test files
// are exempt. The extracted registry also feeds `acelint -metrics-doc`,
// which generates docs/METRICS.md.
var MetricNames = &Analyzer{
	Name:       "metricnames",
	Doc:        "telemetry metric name not a conforming constant, or registered from conflicting declarations",
	RunProgram: runMetricNames,
}

var metricNameRE = regexp.MustCompile(`^[a-z]+(\.[a-z_]+)+$`)
var metricPrefixRE = regexp.MustCompile(`^[a-z]+(\.[a-z_]+)*\.$`)

// metricSite is one registration call.
type metricSite struct {
	name    string // "" for families
	prefix  string // family prefix when dynamic
	kind    string // Counter / Gauge / Histogram
	declKey string // canonical key of the naming const, or "lit:<pos>"
	doc     string // doc/line comment on the declaring const
	pkgPath string
	pos     token.Pos
}

func runMetricNames(pp *ProgPass) {
	sites := extractMetricSites(pp, true)

	byName := make(map[string][]*metricSite)
	for _, s := range sites {
		if s.name != "" {
			byName[s.name] = append(byName[s.name], s)
		}
	}
	var names []string
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		decls := make(map[string]*metricSite)
		kinds := make(map[string]*metricSite)
		for _, s := range group {
			if _, ok := decls[s.declKey]; !ok {
				decls[s.declKey] = s
			}
			if _, ok := kinds[s.kind]; !ok {
				kinds[s.kind] = s
			}
		}
		if len(decls) > 1 {
			first := group[0]
			for _, s := range group[1:] {
				if s.declKey != first.declKey {
					pp.Reportf(s.pos, "metric %q is registered from a second independent declaration (first at %s); share one named constant", name, pp.Fset.Position(first.pos))
				}
			}
		}
		if len(kinds) > 1 {
			var kindNames []string
			for k := range kinds {
				kindNames = append(kindNames, k)
			}
			sort.Strings(kindNames)
			for _, k := range kindNames[1:] {
				s := kinds[k]
				pp.Reportf(s.pos, "metric %q is registered as both %s and %s; one name must map to one series kind", name, kindNames[0], k)
			}
		}
	}
}

// extractMetricSites scans every registration call in the program.
// When report is set, non-conforming names are flagged; the doc
// generator calls it with report=false.
func extractMetricSites(pp *ProgPass, report bool) []*metricSite {
	constDocs := collectConstDocs(pp)
	var sites []*metricSite
	for _, pkg := range pp.Prog.Packages {
		pass := pp.PackagePass(pkg)
		for _, file := range pkg.Files {
			if pkg.IsTestFile(pp.Fset, file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := metricRegistration(pass, call)
				if !ok {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				site := &metricSite{kind: kind, pkgPath: pkg.Path, pos: call.Pos()}
				if name := constString(pass, arg); name != "" {
					if !metricNameRE.MatchString(name) {
						if report {
							pp.Reportf(call.Pos(), "metric name %q does not match ^[a-z]+(\\.[a-z_]+)+$ (lowercase dotted segments)", name)
						}
						return true
					}
					site.name = name
					site.declKey, site.doc = metricDecl(pp, pass, arg, constDocs)
					sites = append(sites, site)
					return true
				}
				// ConstPrefix + dynamicExpr: a metric family.
				if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
					if prefix := constString(pass, bin.X); prefix != "" {
						if !metricPrefixRE.MatchString(prefix) {
							if report {
								pp.Reportf(call.Pos(), "metric family prefix %q must be lowercase dotted segments ending in \".\"", prefix)
							}
							return true
						}
						site.prefix = prefix
						site.declKey, site.doc = metricDecl(pp, pass, bin.X, constDocs)
						sites = append(sites, site)
						return true
					}
				}
				if report {
					pp.Reportf(call.Pos(), "metric name must be a string constant (or a constant \"prefix.\" + suffix family); dynamic names fragment the registry")
				}
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// metricRegistration matches reg.Counter/Gauge/Histogram(name) where
// the receiver is a module-local *telemetry.Registry. Snapshot reads
// (Snapshot.Counter) and other same-named methods don't count.
func metricRegistration(pass *Pass, call *ast.CallExpr) (kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) < 1 {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	fn := pass.calleeFunc(call)
	if fn == nil {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || !pass.Prog.IsLocal(obj.Pkg().Path()) {
		return "", false
	}
	return sel.Sel.Name, true
}

// metricDecl canonicalizes the naming expression: a reference to a
// named constant keys on the constant's declaration (shared across
// call sites and packages); a bare literal keys on its own position.
func metricDecl(pp *ProgPass, pass *Pass, e ast.Expr, docs map[string]string) (key, doc string) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Pkg.Info.Uses[e.Sel]
	}
	if c, ok := obj.(*types.Const); ok {
		k := ObjectKey(pp.Fset, c)
		return k, docs[k]
	}
	pos := pp.Fset.Position(e.Pos())
	return "lit:" + pos.Filename + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Column), ""
}

// collectConstDocs indexes doc and line comments on every module
// constant declaration, keyed canonically, for the generated
// METRICS.md descriptions.
func collectConstDocs(pp *ProgPass) map[string]string {
	docs := make(map[string]string)
	for _, pkg := range pp.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					text := commentText(vs.Doc)
					if text == "" {
						text = commentText(vs.Comment)
					}
					if text == "" && len(gd.Specs) == 1 {
						text = commentText(gd.Doc)
					}
					if text == "" {
						continue
					}
					for _, name := range vs.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							docs[ObjectKey(pp.Fset, obj)] = text
						}
					}
				}
			}
		}
	}
	return docs
}

func commentText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return strings.TrimSpace(strings.ReplaceAll(cg.Text(), "\n", " "))
}
