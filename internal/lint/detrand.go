package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand guards the determinism contract of the fault-injection
// harness: chaos schedules replay byte-for-byte from a seed, so the
// chaos packages (and their tests) must not smuggle in wall-clock or
// process-global entropy. In any package whose import path contains
// "chaos" it flags:
//
//   - time.Now() in non-test code — fault schedules must be derived
//     from the seed, never from wall time (tests may poll wall-clock
//     deadlines while waiting for real goroutines to converge);
//   - the global math/rand source anywhere, tests included — only
//     rand.New(rand.NewSource(seed)) streams replay;
//   - sleep-based synchronization: time.Sleep with a compile-time
//     constant duration outside any loop, tests included — "sleep 300ms
//     and assume the fault fired" races the schedule; poll for the
//     observable state instead (a constant sleep inside a polling loop
//     is a poll interval and is fine).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "nondeterminism (wall clock, global rand, sleep sync) in the chaos harness",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "chaos") {
		return
	}
	for _, file := range pass.Pkg.Files {
		isTest := pass.Pkg.IsTestFile(pass.Fset, file.Pos())
		checkDetRand(pass, file, isTest, 0)
	}
}

// checkDetRand walks n tracking enclosing-loop depth, so constant
// sleeps inside polling loops are not flagged.
func checkDetRand(pass *Pass, n ast.Node, isTest bool, loopDepth int) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			visitLoop(pass, m.Init, m.Cond, m.Post, isTest, loopDepth)
			checkDetRand(pass, m.Body, isTest, loopDepth+1)
			return false
		case *ast.RangeStmt:
			checkDetRand(pass, m.Body, isTest, loopDepth+1)
			return false
		case *ast.CallExpr:
			checkDetRandCall(pass, m, isTest, loopDepth)
		}
		return true
	})
}

// visitLoop checks the non-body clauses of a for statement at the
// current (outer) loop depth.
func visitLoop(pass *Pass, init, cond, post ast.Node, isTest bool, loopDepth int) {
	for _, n := range []ast.Node{init, cond, post} {
		if n != nil {
			checkDetRand(pass, n, isTest, loopDepth)
		}
	}
}

func checkDetRandCall(pass *Pass, call *ast.CallExpr, isTest bool, loopDepth int) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	switch fn.Pkg().Path() {
	case "time":
		switch {
		case fn.Name() == "Now" && !isTest:
			pass.Reportf(call.Pos(), "time.Now() in the chaos harness: fault schedules must derive from the seed, not wall time")
		case fn.Name() == "Sleep" && len(call.Args) == 1 && loopDepth == 0:
			if tv, ok := pass.Pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil {
				pass.Reportf(call.Pos(), "constant time.Sleep used as synchronization races the fault schedule; poll for the observable state")
			}
		}
	case "math/rand", "math/rand/v2":
		if isMethod {
			return // seeded *rand.Rand streams replay deterministically
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors for seeded streams
		}
		pass.Reportf(call.Pos(), "global math/rand.%s is seeded from process entropy; use the schedule's seeded rand.New(rand.NewSource(seed))", fn.Name())
	}
}
