package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// VerbConformance checks the cmdlang verb protocol across the whole
// package set: the registered command surface (every CommandSpec with
// a constant-folded name, every Handle/bind registration) against
// every client-side invocation (cmdlang.New command builders flowing
// into wire.Client.Call* and daemon.Pool sends). It flags:
//
//   - verbs called but never registered anywhere (protocol drift: the
//     call can only ever earn an unknown_command reply);
//   - argument keys set by a caller that no spec for the verb declares
//     (when the spec does not opt into AllowExtra) — the daemon-side
//     Registry.Validate will reject the command at runtime;
//   - verbs registered with a handler that no in-tree caller ever
//     invokes (dead protocol surface — or a missing client);
//   - reply codes checked by callers (cmdlang.IsRemoteCode(err, code))
//     that no handler of the called verb ever emits, computed
//     transitively over the call graph, e.g. a client matching
//     wrong_group against a verb whose handlers never return it.
//
// The check is conservative where the verb is not statically known: a
// command built from a variable (acectl's CLI passthrough, the
// notification dispatcher's method names) contributes nothing, and a
// reply-code check on an error that cannot be traced to a known-verb
// call in the same function is skipped.
var VerbConformance = &Analyzer{
	Name:       "verbconformance",
	Doc:        "cmdlang verb called/argued/code-checked inconsistently with its registered handlers",
	RunProgram: runVerbConformance,
}

// verbEmitsFact is exported against each handler function object: the
// sorted list of reply codes the handler (transitively) emits.
const verbEmitsFact = "verb.emits"

// shellCodes are emitted by the daemon shell for any verb regardless
// of its handler: dispatch failures, validation, auth, and overload.
var shellCodes = map[string]bool{
	"unknown_command": true,
	"bad_argument":    true,
	"denied":          true,
	"busy":            true,
	"internal":        true,
}

// protocolArgs are stamped onto commands by the transport, not by
// callers against a spec: the client sequence number and the sharded
// store's placement epoch.
var protocolArgs = map[string]bool{"seq": true, "epoch": true}

// argDetail is one declared argument of a spec.
type argDetail struct {
	name     string
	kind     string
	doc      string
	required bool
}

// specDetail is one parsed CommandSpec literal.
type specDetail struct {
	verb       string
	args       map[string]argDetail
	allowExtra bool
	doc        string
	pos        token.Pos
	pkg        *Package
	test       bool
}

// verbEntry aggregates everything known about one verb.
type verbEntry struct {
	specs    []specDetail  // all parsed spec literals (test and not)
	handlers []*HandlerReg // Handle/bind registrations
	emits    map[string]bool
}

func (e *verbEntry) registered() bool {
	for _, s := range e.specs {
		if !s.test {
			return true
		}
	}
	for _, h := range e.handlers {
		if !h.Test {
			return true
		}
	}
	return false
}

func (e *verbEntry) declaresArg(key string) bool {
	for _, s := range e.specs {
		if s.allowExtra {
			return true
		}
		if _, ok := s.args[key]; ok {
			return true
		}
	}
	return false
}

// verbUse is one statically-known client invocation site.
type verbUse struct {
	verb string
	pos  token.Pos
	test bool
}

// keyUse is one Set*(constKey, ...) applied to a known-verb command.
type keyUse struct {
	verb, key string
	pos       token.Pos
	test      bool
}

// codeCheck is one IsRemoteCode(err, code) with err traced to a
// known-verb call.
type codeCheck struct {
	verb, code string
	pos        token.Pos
	test       bool
}

func runVerbConformance(pp *ProgPass) {
	reg := buildVerbRegistry(pp)

	var uses []verbUse
	var keys []keyUse
	var checks []codeCheck
	for _, pkg := range pp.Prog.Packages {
		pass := pp.PackagePass(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				u, k, c := scanFunctionUses(pass, fd.Body)
				uses = append(uses, u...)
				keys = append(keys, k...)
				checks = append(checks, c...)
			}
		}
	}

	computeEmittedCodes(pp, reg)

	// (a) called but never registered.
	reported := make(map[token.Pos]bool)
	for _, u := range uses {
		if u.test || reported[u.pos] {
			continue
		}
		if e, ok := reg[u.verb]; ok && e.registered() {
			continue
		}
		reported[u.pos] = true
		pp.Reportf(u.pos, "verb %q is called here but no CommandSpec anywhere registers it; the daemon will reply unknown_command", u.verb)
	}

	// (b) caller sets an argument key no spec declares.
	for _, k := range keys {
		if k.test || protocolArgs[k.key] {
			continue
		}
		e, ok := reg[k.verb]
		if !ok || !e.registered() {
			continue // (a) already covers the verb itself
		}
		if e.declaresArg(k.key) {
			continue
		}
		pp.Reportf(k.pos, "verb %q has no declared argument %q (and no spec allows extras); Registry.Validate will reject this command", k.verb, k.key)
	}

	// (c) registered with a handler but never called in-tree.
	called := make(map[string]bool)
	for _, u := range uses {
		called[u.verb] = true
	}
	for _, verb := range sortedVerbNames(reg) {
		e := reg[verb]
		if called[verb] {
			continue
		}
		var firstReg *HandlerReg
		for _, h := range e.handlers {
			if !h.Test {
				firstReg = h
				break
			}
		}
		if firstReg == nil {
			continue // spec-only declarations don't claim a caller exists
		}
		pp.Reportf(firstReg.Pos, "verb %q is registered here but never invoked by any in-tree caller (cmdlang.New(%q) appears nowhere); dead protocol surface or missing client", verb, verb)
	}

	// (d) reply codes checked but never emitted by the verb's handlers.
	for _, c := range checks {
		if c.test || shellCodes[c.code] {
			continue
		}
		e, ok := reg[c.verb]
		if !ok || !e.registered() {
			continue
		}
		if len(e.emits) == 0 {
			continue // no resolvable handler body; nothing provable
		}
		if e.emits[c.code] {
			continue
		}
		pp.Reportf(c.pos, "caller checks reply code %q on verb %q, but no handler of %q ever emits it", c.code, c.verb, c.verb)
	}
}

// buildVerbRegistry folds the graph's spec and handler indexes into
// per-verb entries.
func buildVerbRegistry(pp *ProgPass) map[string]*verbEntry {
	reg := make(map[string]*verbEntry)
	entry := func(verb string) *verbEntry {
		e, ok := reg[verb]
		if !ok {
			e = &verbEntry{emits: make(map[string]bool)}
			reg[verb] = e
		}
		return e
	}
	for _, s := range pp.Graph.Specs {
		pass := pp.PackagePass(s.Pkg)
		entry(s.Verb).specs = append(entry(s.Verb).specs, parseSpecDetail(pass, s))
	}
	for _, h := range pp.Graph.Handlers {
		entry(h.Verb).handlers = append(entry(h.Verb).handlers, h)
	}
	return reg
}

// parseSpecDetail extracts arg names/kinds/required flags, AllowExtra,
// and the doc string from one CommandSpec literal via constant folding.
func parseSpecDetail(pass *Pass, s *SpecSite) specDetail {
	d := specDetail{verb: s.Verb, args: make(map[string]argDetail), pos: s.Pos, pkg: s.Pkg, test: s.Test}
	for _, el := range s.Lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Doc":
			d.doc = constString(pass, kv.Value)
		case "AllowExtra":
			if tv, ok := pass.Pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
				d.allowExtra = constant.BoolVal(tv.Value)
			}
		case "Args":
			cl, ok := ast.Unparen(kv.Value).(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, ael := range cl.Elts {
				al, ok := ast.Unparen(ael).(*ast.CompositeLit)
				if !ok {
					continue
				}
				arg := parseArgSpec(pass, al)
				if arg.name != "" {
					d.args[arg.name] = arg
				}
			}
		}
	}
	return d
}

func parseArgSpec(pass *Pass, lit *ast.CompositeLit) argDetail {
	var a argDetail
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			a.name = constString(pass, kv.Value)
		case "Doc":
			a.doc = constString(pass, kv.Value)
		case "Required":
			if tv, ok := pass.Pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
				a.required = constant.BoolVal(tv.Value)
			}
		case "Kind":
			switch v := ast.Unparen(kv.Value).(type) {
			case *ast.SelectorExpr:
				a.kind = kindName(v.Sel.Name)
			case *ast.Ident:
				a.kind = kindName(v.Name)
			}
		}
	}
	return a
}

// kindName renders "KindWord" as "word" for documentation output.
func kindName(ident string) string {
	if rest, ok := strings.CutPrefix(ident, "Kind"); ok && rest != "" {
		return strings.ToLower(rest)
	}
	return ident
}

func constString(pass *Pass, e ast.Expr) string {
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	return ""
}

// computeEmittedCodes walks the call graph from each handler and
// collects the reply codes it can emit: cmdlang.Fail(code, ...) with a
// constant code, cmdlang.Busy (→ busy), cmdlang.FailErr (→ internal /
// bad_argument), and RemoteError{Code: ...} literals. The shell's own
// codes are always included. Results are exported to the fact store
// per handler function.
func computeEmittedCodes(pp *ProgPass, reg map[string]*verbEntry) {
	nodeCodes := make(map[*Node]map[string]bool)
	for _, e := range reg {
		for code := range shellCodes {
			e.emits[code] = true
		}
		for _, h := range e.handlers {
			if h.Handler == nil {
				continue
			}
			reach := pp.Graph.ReachableSync(h.Handler, true)
			var nodes []*Node
			for n := range reach {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })
			for _, n := range nodes {
				codes, ok := nodeCodes[n]
				if !ok {
					codes = emittedInBody(pp, n)
					nodeCodes[n] = codes
				}
				for c := range codes {
					e.emits[c] = true
				}
			}
			if h.Handler.Func != nil {
				var list []string
				for c := range e.emits {
					list = append(list, c)
				}
				sort.Strings(list)
				pp.Facts.Export(h.Handler.Func, verbEmitsFact, list)
			}
		}
	}
}

// emittedInBody collects reply codes produced directly in one node's
// body (excluding nested literals, which are separate nodes).
func emittedInBody(pp *ProgPass, n *Node) map[string]bool {
	codes := make(map[string]bool)
	if n.Body == nil || n.Pkg == nil {
		return codes
	}
	pass := pp.PackagePass(n.Pkg)
	skip := ownLiterals(n)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		switch node := node.(type) {
		case *ast.CallExpr:
			fn := pass.calleeFunc(node)
			if fn == nil || fn.Pkg() == nil || !pass.Prog.IsLocal(fn.Pkg().Path()) || fn.Pkg().Name() != "cmdlang" {
				return true
			}
			switch fn.Name() {
			case "Fail":
				if len(node.Args) >= 1 {
					if code := constString(pass, node.Args[0]); code != "" {
						codes[code] = true
					}
				}
			case "Busy":
				codes["busy"] = true
			case "FailErr":
				codes["internal"] = true
				codes["bad_argument"] = true
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(node)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Name() != "RemoteError" || named.Obj().Pkg() == nil || !pass.Prog.IsLocal(named.Obj().Pkg().Path()) {
				return true
			}
			for _, el := range node.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
					if code := constString(pass, kv.Value); code != "" {
						codes[code] = true
					}
				}
			}
		}
		return true
	})
	return codes
}

// scanFunctionUses walks one function body (closures included — they
// share the local variable namespace for tracing) and extracts New
// sites, Set* key uses, and traced reply-code checks.
func scanFunctionUses(pass *Pass, body *ast.BlockStmt) (uses []verbUse, keys []keyUse, checks []codeCheck) {
	test := pass.Pkg.IsTestFile(pass.Fset, body.Pos())
	processed := make(map[*ast.CallExpr]bool)
	varVerb := make(map[types.Object]string)   // cmd variable → verb
	errVerb := make(map[types.Object][]string) // error variable → verbs

	// callVerb resolves the verb of a command expression: a New chain
	// or a variable previously assigned one.
	callVerb := func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			base := chainBase(e)
			if verb, ok := isNewCall(pass, base); ok {
				return verb, true
			}
		case *ast.Ident:
			if obj := pass.Pkg.Info.Uses[e]; obj != nil {
				if verb, ok := varVerb[obj]; ok {
					return verb, true
				}
			}
		}
		return "", false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// cmd := cmdlang.New("verb").Set...(...) — remember the verb;
			// ret, err := pool.Call(addr, cmd) — remember err → verb.
			if len(n.Rhs) == 1 {
				if rhs, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if verb, ok := callVerb(rhs); ok && len(n.Lhs) == 1 {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if obj := identObject(pass, id); obj != nil {
								varVerb[obj] = verb
							}
						}
					} else if verb, ok := transportCallVerb(pass, rhs, callVerb); ok {
						for _, lhs := range n.Lhs {
							id, ok := lhs.(*ast.Ident)
							if !ok || id.Name == "_" {
								continue
							}
							obj := identObject(pass, id)
							if obj != nil && isErrorType(obj.Type()) {
								errVerb[obj] = append(errVerb[obj], verb)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// A constant string passed for a parameter named "method" of
			// a module-local function is a dynamic verb invocation: the
			// notification dispatcher builds cmdlang.New(method) at fan-out
			// time (daemon.Subscribe and wrappers following the idiom).
			for _, verb := range methodArgVerbs(pass, n) {
				uses = append(uses, verbUse{verb: verb, pos: n.Pos(), test: test})
			}
			// IsRemoteCode(err, code) with a traceable err.
			if fn := pass.calleeFunc(n); fn != nil && fn.Name() == "IsRemoteCode" &&
				fn.Pkg() != nil && pass.Prog.IsLocal(fn.Pkg().Path()) && len(n.Args) == 2 {
				code := constString(pass, n.Args[1])
				if code != "" {
					if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := pass.Pkg.Info.Uses[id]; obj != nil {
							for _, verb := range errVerb[obj] {
								checks = append(checks, codeCheck{verb: verb, code: code, pos: n.Pos(), test: test})
							}
						}
					}
				}
			}
			// Set* applied to a known-verb command variable.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Set") && len(n.Args) >= 1 {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Uses[id]; obj != nil {
						if verb, ok := varVerb[obj]; ok {
							if key := constString(pass, n.Args[0]); key != "" {
								keys = append(keys, keyUse{verb: verb, key: key, pos: n.Pos(), test: test})
							}
						}
					}
				}
			}
			// New chains: process each chain once, from its outermost
			// element, collecting the verb and every constant Set* key.
			if processed[n] {
				return true
			}
			base := chainBase(n)
			verb, ok := isNewCall(pass, base)
			if !ok {
				return true
			}
			for c := n; ; {
				processed[c] = true
				if c == base {
					break
				}
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
					if strings.HasPrefix(sel.Sel.Name, "Set") && len(c.Args) >= 1 {
						if key := constString(pass, c.Args[0]); key != "" {
							keys = append(keys, keyUse{verb: verb, key: key, pos: c.Pos(), test: test})
						}
					}
					inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
					if !ok {
						break
					}
					c = inner
				} else {
					break
				}
			}
			uses = append(uses, verbUse{verb: verb, pos: base.Pos(), test: test})
		}
		return true
	})
	return uses, keys, checks
}

// transportCallVerb reports the verb of a call that sends a command —
// any call carrying a known-verb *CmdLine argument.
func transportCallVerb(pass *Pass, call *ast.CallExpr, callVerb func(ast.Expr) (string, bool)) (string, bool) {
	for _, arg := range call.Args {
		if verb, ok := callVerb(arg); ok {
			return verb, true
		}
		// A bare identifier argument of command type.
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if t := pass.TypeOf(id); t != nil && isCmdLineType(pass, t) {
				if verb, ok := callVerb(id); ok {
					return verb, true
				}
			}
		}
	}
	return "", false
}

// methodArgVerbs returns the constant verbs passed for parameters
// named "method" of a module-local callee: the subscription idiom
// (daemon.Subscribe and wrappers) carries the notification callback
// verb as a string the dispatcher later turns into cmdlang.New(method).
func methodArgVerbs(pass *Pass, call *ast.CallExpr) []string {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !pass.Prog.IsLocal(fn.Pkg().Path()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return nil
	}
	var verbs []string
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		p := sig.Params().At(i)
		if p.Name() != "method" {
			continue
		}
		if b, ok := p.Type().(*types.Basic); !ok || b.Kind() != types.String {
			continue
		}
		if verb := constString(pass, call.Args[i]); verb != "" {
			verbs = append(verbs, verb)
		}
	}
	return verbs
}

func identObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}

func isCmdLineType(pass *Pass, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "CmdLine" && obj.Pkg() != nil && pass.Prog.IsLocal(obj.Pkg().Path())
}

// chainBase unwinds a method chain c1().c2().c3() to its base call.
func chainBase(call *ast.CallExpr) *ast.CallExpr {
	for {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return call
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return call
		}
		call = inner
	}
}

// isNewCall matches cmdlang.New("verb") with a constant verb in a
// module-local cmdlang package. Reply builders (OK/Fail) and dynamic
// names don't match.
func isNewCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Name() != "New" || len(call.Args) != 1 {
		return "", false
	}
	if fn.Pkg() == nil || !pass.Prog.IsLocal(fn.Pkg().Path()) || fn.Pkg().Name() != "cmdlang" {
		return "", false
	}
	verb := constString(pass, call.Args[0])
	if verb == "" || reservedVerbs[verb] {
		return "", false
	}
	return verb, true
}

func sortedVerbNames(reg map[string]*verbEntry) []string {
	names := make([]string, 0, len(reg))
	for v := range reg {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}
