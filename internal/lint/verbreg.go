package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// VerbReg cross-checks daemon handler registrations against the
// cmdlang command-semantics registry at the source level. Every
// `d.Handle(cmdlang.CommandSpec{...}, h)` call (and every declared
// CommandSpec literal) must carry a semantics entry the ACE command
// parser can validate against:
//
//   - the spec names a verb (a missing or empty Name registers an
//     unreachable handler);
//   - the verb is a legal cmdlang word (Registry.Declare panics on
//     anything else, but only at daemon construction time);
//   - the verb does not collide with the reply encoders "ok"/"fail",
//     whose names the return-command convention owns;
//   - the same verb is not registered twice on one daemon within a
//     function (the second Handle silently replaces the first).
var VerbReg = &Analyzer{
	Name: "verbreg",
	Doc:  "handler registration without valid command semantics, or duplicate verb",
	Run:  runVerbReg,
}

func runVerbReg(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkVerbRegs(pass, fd.Body)
		}
	}
	// Spec-literal well-formedness applies everywhere a CommandSpec is
	// built, including Declare/DeclareAll chains outside Handle calls.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isCommandSpec(pass, pass.TypeOf(cl)) {
				return true
			}
			checkSpecLit(pass, cl)
			return true
		})
	}
}

// checkVerbRegs tracks Handle calls per receiver within one function
// body and reports duplicate verb registrations.
func checkVerbRegs(pass *Pass, body *ast.BlockStmt) {
	type regKey struct{ recv, verb string }
	first := make(map[regKey]ast.Node)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := handleCall(pass, call)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return true // spec built elsewhere; literal checks apply there
		}
		name, state := specName(pass, lit)
		switch {
		case state == nameAbsent:
			pass.Reportf(call.Pos(), "%s.Handle registers a handler with no command name: no semantics entry is declared", recv)
		case state == nameKnown && name != "": // empty name reported by the literal check
			key := regKey{recv, name}
			if prev, dup := first[key]; dup {
				pass.Reportf(call.Pos(), "duplicate registration of verb %q on %s (previous at %s); the first handler is silently replaced",
					name, recv, pass.Fset.Position(prev.Pos()))
			} else {
				first[key] = call
			}
		}
		return true
	})
}

// handleCall matches a `recv.Handle(spec, handler)` method call whose
// first parameter is a cmdlang CommandSpec, returning the receiver's
// printed form.
func handleCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Handle" || len(call.Args) != 2 {
		return "", false
	}
	fn := pass.calleeFunc(call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 {
		return "", false
	}
	if !isCommandSpec(pass, sig.Params().At(0).Type()) {
		return "", false
	}
	return types.ExprString(ast.Unparen(sel.X)), true
}

// isCommandSpec matches the cmdlang.CommandSpec type (by name, in a
// module-local package, with Name/Args fields) so the golden-test
// stand-ins qualify.
func isCommandSpec(pass *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "CommandSpec" || obj.Pkg() == nil || !pass.Prog.IsLocal(obj.Pkg().Path()) {
		return false
	}
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasName := false
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == "Name" {
			hasName = true
		}
	}
	return hasName
}

// Name-field resolution states.
const (
	nameAbsent  = iota // no Name field in the literal
	nameDynamic        // present but not a compile-time constant
	nameKnown          // constant-folded to a string
)

// specName extracts the Name field from a CommandSpec composite
// literal, resolving string literals and named constants (Name:
// CmdPing) through the type checker's constant folding.
func specName(pass *Pass, lit *ast.CompositeLit) (name string, state int) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Name" {
			continue
		}
		if tv, ok := pass.Pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), nameKnown
		}
		return "", nameDynamic
	}
	return "", nameAbsent
}

// reservedVerbs are owned by the reply-encoding convention: replies
// are themselves command lines named "ok"/"fail", so a daemon that
// registers them would shadow every return command it receives.
var reservedVerbs = map[string]bool{"ok": true, "fail": true}

// checkSpecLit validates one CommandSpec literal: named, a legal
// cmdlang word, and not a reserved reply verb.
func checkSpecLit(pass *Pass, lit *ast.CompositeLit) {
	name, state := specName(pass, lit)
	if state != nameKnown {
		return // dynamic or absent name; Handle-level check reports absence
	}
	switch {
	case name == "":
		pass.Reportf(lit.Pos(), "CommandSpec with empty Name declares no semantics entry")
	case !isCmdWord(name):
		pass.Reportf(lit.Pos(), "command name %q is not a legal cmdlang word; Registry.Declare will panic at daemon construction", name)
	case reservedVerbs[name]:
		pass.Reportf(lit.Pos(), "command name %q collides with the reply encoders (ok/fail return commands)", name)
	}
}

// isCmdWord mirrors cmdlang.IsWord: ASCII letters, digits, and
// underscore, not starting with a digit.
func isCmdWord(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
