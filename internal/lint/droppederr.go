package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags error returns from the ACE transport and
// persistence APIs (module-local wire, pstore, and daemon packages)
// that are discarded in non-test code: a bare call statement, a call
// under go/defer, or an error result assigned to the blank
// identifier. A dropped transport error is how partitions and dead
// peers turn into silent data loss.
//
// One deliberate carve-out: `_ = c.Close()` is accepted as an
// explicit acknowledgment on teardown paths, but a bare `c.Close()`
// or `defer c.Close()` on a wire connection is still flagged.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "discarded error return from a wire/pstore/daemon API",
	Run:  runDroppedErr,
}

// errPkgs are the module-local package basenames whose error returns
// must not be discarded.
var errPkgs = map[string]bool{"wire": true, "pstore": true, "daemon": true}

func runDroppedErr(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportDropped(pass, n.X, "discarded")
			case *ast.DeferStmt:
				reportDropped(pass, n.Call, "discarded by defer")
			case *ast.GoStmt:
				reportDropped(pass, n.Call, "discarded by go")
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			}
			return true
		})
	}
}

// watchedCall resolves a call into an ACE transport/store/daemon
// function or method whose results include an error, returning the
// callee and the index of the error result (-1 if none).
func watchedCall(pass *Pass, e ast.Expr) (*types.Func, int) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, -1
	}
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !pass.Prog.IsLocal(fn.Pkg().Path()) || !errPkgs[fn.Pkg().Name()] {
		return nil, -1
	}
	if !fn.Exported() {
		return nil, -1 // the API surface is the exported functions and methods
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return fn, i
		}
	}
	return nil, -1
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func describeCallee(pass *Pass, fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		return "(" + pass.typeStr(sig.Recv().Type()) + ")." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func reportDropped(pass *Pass, e ast.Expr, how string) {
	fn, errIdx := watchedCall(pass, e)
	if fn == nil || errIdx < 0 {
		return
	}
	pass.Reportf(e.Pos(), "error return of %s %s; handle it or assign it", describeCallee(pass, fn), how)
}

// checkBlankErr flags `_ = call()` and `x, _ := call()` where the
// blank sits in the error result position, except `_ = Close()`.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return // x, _ = a, b: the blank discards a value, not an error result
	}
	fn, errIdx := watchedCall(pass, as.Rhs[0])
	if fn == nil || errIdx < 0 {
		return
	}
	if fn.Name() == "Close" {
		return // explicit `_ = c.Close()` acknowledges the teardown error
	}
	if errIdx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "error return of %s assigned to _; handle it", describeCallee(pass, fn))
	}
}
