package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// GoroutineLeak verifies that every goroutine spawned outside a
// flow-bounded path has a reachable shutdown edge. A daemon that
// starts background loops with no stop signal cannot drain on Close/
// Stop: the goroutine pins its captured state forever and, under churn
// (reconnects, rebalances), the leak compounds into memory exhaustion.
//
// The analysis runs on the call graph: for each `go` statement it
// resolves the spawned function (literal, named function, or method),
// collects everything reachable from it along static and closure
// edges, and demands that every infinite loop in that set can exit:
//
//   - a `return` or `break` somewhere in the loop (the loop ends when
//     its blocking source fails — the accept/read-loop idiom);
//   - a receive, select case, or range over ctx.Done() or over a
//     channel that some function in the program closes (`close(ch)`
//     in a Stop/Close is the shutdown edge);
//   - a WaitGroup the spawned body Done()s and the program Wait()s —
//     the goroutine is joined, so its exit is someone's business.
//
// Spawns are exempt when the spawning function consults the flow
// admission package (those goroutines are bounded and request-scoped),
// when they sit in test files, or when the spawned body has no
// infinite loop at all (it terminates structurally). Spawns through
// function values are unresolvable and skipped — the conservative
// direction for a leak check is silence, not a guess.
var GoroutineLeak = &Analyzer{
	Name:       "goroutineleak",
	Doc:        "goroutine with an infinite loop and no reachable shutdown edge",
	RunProgram: runGoroutineLeak,
}

// closedChanFact marks a channel object (by canonical key) as closed
// somewhere in the program.
const closedChanFact = "chan.closed"

func runGoroutineLeak(pp *ProgPass) {
	closed, waited := collectChannelFacts(pp)

	for _, sp := range pp.Graph.Spawns {
		if sp.Test || sp.Root == nil {
			continue
		}
		if sp.Pkg != nil && isFlowPackage(sp.Pkg.Types) {
			continue // the limiter's own internals manage their workers
		}
		// Flow-gated spawn: the spawner (or the spawned body itself)
		// calls into the admission package.
		if bodyCallsFlow(pp, sp.From) || bodyCallsFlow(pp, sp.Root) {
			continue
		}
		reach := pp.Graph.ReachableSync(sp.Root, true)
		if spawnJoined(pp, reach, waited) {
			continue
		}
		var leaky *Node
		var nodes []*Node
		for n := range reach {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })
		for _, n := range nodes {
			if n.Body == nil || n.Pkg == nil {
				continue
			}
			if nodeHasLeakyLoop(pp, n, closed) {
				leaky = n
				break
			}
		}
		if leaky == nil {
			continue
		}
		what := sp.Root.Name
		if leaky != sp.Root {
			what = sp.Root.Name + " (via " + leaky.Name + ")"
		}
		pp.Reportf(sp.Site.Pos(),
			"goroutine %s loops forever with no reachable shutdown edge; add a ctx.Done()/closed-channel case, exit on error, or join it with a WaitGroup",
			what)
	}
}

// collectChannelFacts scans the whole program once for close(ch) sites
// and WaitGroup Wait() sites, keyed by the canonical object key of the
// channel / WaitGroup variable. Close sites are exported to the fact
// store so other analyzers (and the driver test) can consume them.
func collectChannelFacts(pp *ProgPass) (closed, waited map[string]bool) {
	closed = make(map[string]bool)
	waited = make(map[string]bool)
	for _, pkg := range pp.Prog.Packages {
		pass := pp.PackagePass(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := referencedObject(pass, call.Args[0]); obj != nil {
							closed[ObjectKey(pp.Fset, obj)] = true
							pp.Facts.Export(obj, closedChanFact, true)
						}
					}
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					if obj := referencedObject(pass, sel.X); obj != nil && isWaitGroup(obj.Type()) {
						waited[ObjectKey(pp.Fset, obj)] = true
					}
				}
				return true
			})
		}
	}
	return closed, waited
}

// referencedObject resolves a variable or field reference (x, s.f,
// (*p).f) to its declaring object so uses in different functions and
// type-check units compare equal through ObjectKey.
func referencedObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pass.Pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.Pkg.Info.Uses[e.Sel]
	case *ast.StarExpr:
		return referencedObject(pass, e.X)
	}
	return nil
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// bodyCallsFlow reports whether the node's body calls into a flow
// admission package.
func bodyCallsFlow(pp *ProgPass, n *Node) bool {
	if n == nil || n.Body == nil || n.Pkg == nil {
		return false
	}
	return callsFlowPackage(pp.PackagePass(n.Pkg), n.Body)
}

// spawnJoined reports whether any reachable body Done()s a WaitGroup
// that the program Wait()s on: the goroutine is joined, so a missing
// internal exit signal is the joiner's bug to see, not a silent leak.
func spawnJoined(pp *ProgPass, reach map[*Node]bool, waited map[string]bool) bool {
	for n := range reach {
		if n.Body == nil || n.Pkg == nil {
			continue
		}
		pass := pp.PackagePass(n.Pkg)
		joined := false
		skip := ownLiterals(n)
		ast.Inspect(n.Body, func(node ast.Node) bool {
			if joined {
				return false
			}
			if lit, ok := node.(*ast.FuncLit); ok && skip[lit] {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			obj := referencedObject(pass, sel.X)
			if obj != nil && isWaitGroup(obj.Type()) && waited[ObjectKey(pp.Fset, obj)] {
				joined = true
			}
			return !joined
		})
		if joined {
			return true
		}
	}
	return false
}

// nodeHasLeakyLoop reports whether the node's own body contains an
// infinite loop with no exit: no return/break, no receive on
// ctx.Done() or a program-closed channel, no process exit.
func nodeHasLeakyLoop(pp *ProgPass, n *Node, closed map[string]bool) bool {
	pass := pp.PackagePass(n.Pkg)
	leaky := false
	skip := ownLiterals(n)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if leaky {
			return false
		}
		if lit, ok := node.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		var body *ast.BlockStmt
		switch s := node.(type) {
		case *ast.ForStmt:
			if s.Cond != nil {
				return true // a condition is an exit by construction
			}
			body = s.Body
		case *ast.RangeStmt:
			// Ranging over a channel blocks until the channel closes;
			// unbounded unless some function closes it.
			t := pass.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			if obj := referencedObject(pass, s.X); obj != nil && closed[ObjectKey(pp.Fset, obj)] {
				return true
			}
			body = s.Body
		default:
			return true
		}
		if !loopHasExit(pass, body, closed, pp) {
			leaky = true
		}
		return !leaky
	})
	return leaky
}

// loopHasExit scans one infinite-loop body (excluding nested function
// literals) for any way out.
func loopHasExit(pass *Pass, body *ast.BlockStmt, closed map[string]bool, pp *ProgPass) bool {
	exits := false
	ast.Inspect(body, func(node ast.Node) bool {
		if exits {
			return false
		}
		switch s := node.(type) {
		case *ast.FuncLit:
			return false // separate node; its exits don't end this loop
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if s.Tok.String() == "break" || s.Tok.String() == "goto" {
				exits = true
			}
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" && recvIsShutdown(pass, s.X, closed, pp) {
				exits = true
			}
		case *ast.RangeStmt:
			if recvIsShutdown(pass, s.X, closed, pp) {
				exits = true
			}
		case *ast.CallExpr:
			if fn := pass.calleeFunc(s); fn != nil && fn.Pkg() != nil {
				full := fn.Pkg().Path() + "." + fn.Name()
				switch full {
				case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
					exits = true
				}
			}
		}
		return !exits
	})
	return exits
}

// recvIsShutdown reports whether receiving from e constitutes a
// shutdown edge: e is ctx.Done() for a context, or a channel some
// function in the program closes.
func recvIsShutdown(pass *Pass, e ast.Expr, closed map[string]bool, pp *ProgPass) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if t := pass.TypeOf(sel.X); t != nil && (isContextType(t) || isDaemonCtx(pass, t)) {
				return true
			}
		}
		return false
	}
	if obj := referencedObject(pass, e); obj != nil && closed[ObjectKey(pp.Fset, obj)] {
		return true
	}
	return false
}
