package lint

import (
	"fmt"
	"sort"
	"strings"
)

// This file generates the machine-checked protocol documentation:
// `acelint -verbs-doc` renders the verb registry extracted by the
// conformance engine into PROTOCOL.md's verb table, and
// `acelint -metrics-doc` renders the telemetry registry into
// docs/METRICS.md. CI regenerates both and fails on drift, so the
// documents cannot fall out of sync with the source.

// VerbDoc is one entry of the extracted verb registry.
type VerbDoc struct {
	Name     string
	Doc      string
	Args     []ArgDoc
	Packages []string // short package names declaring the spec
}

// ArgDoc is one declared argument.
type ArgDoc struct {
	Name     string
	Kind     string
	Required bool
	Doc      string
}

// MetricDoc is one entry of the extracted telemetry registry.
type MetricDoc struct {
	Name     string // family entries render as "prefix<suffix>"
	Kind     string
	Doc      string
	Packages []string
	Family   bool
}

// ExtractVerbs builds the verb registry from every non-test
// CommandSpec literal in the program (the same extraction
// verbconformance checks against).
func ExtractVerbs(prog *Program) []VerbDoc {
	g := prog.Graph()
	pp := &ProgPass{Prog: prog, Fset: prog.Fset, Graph: g, Facts: prog.Facts()}
	merged := make(map[string]*VerbDoc)
	for _, s := range g.Specs {
		if s.Test {
			continue
		}
		pass := pp.PackagePass(s.Pkg)
		d := parseSpecDetail(pass, s)
		vd, ok := merged[d.verb]
		if !ok {
			vd = &VerbDoc{Name: d.verb}
			merged[d.verb] = vd
		}
		if vd.Doc == "" {
			vd.Doc = d.doc
		}
		pkg := shortPkg(s.Pkg.Path)
		if !contains(vd.Packages, pkg) {
			vd.Packages = append(vd.Packages, pkg)
		}
		for _, name := range sortedArgNames(d.args) {
			a := d.args[name]
			found := false
			for _, existing := range vd.Args {
				if existing.Name == a.name {
					found = true
					break
				}
			}
			if !found {
				vd.Args = append(vd.Args, ArgDoc{Name: a.name, Kind: a.kind, Required: a.required, Doc: a.doc})
			}
		}
		if d.allowExtra {
			vd.Doc = strings.TrimSpace(vd.Doc)
		}
	}
	var out []VerbDoc
	for _, vd := range merged {
		sort.Slice(vd.Args, func(i, j int) bool {
			if vd.Args[i].Required != vd.Args[j].Required {
				return vd.Args[i].Required
			}
			return vd.Args[i].Name < vd.Args[j].Name
		})
		sort.Strings(vd.Packages)
		out = append(out, *vd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExtractMetrics builds the telemetry registry from every non-test
// Registry.Counter/Gauge/Histogram call in the program.
func ExtractMetrics(prog *Program) []MetricDoc {
	pp := &ProgPass{Prog: prog, Fset: prog.Fset, Graph: prog.Graph(), Facts: prog.Facts()}
	sites := extractMetricSites(pp, false)
	merged := make(map[string]*MetricDoc)
	for _, s := range sites {
		name := s.name
		family := false
		if name == "" {
			name = s.prefix + "<suffix>"
			family = true
		}
		md, ok := merged[name]
		if !ok {
			md = &MetricDoc{Name: name, Kind: s.kind, Doc: s.doc, Family: family}
			merged[name] = md
		}
		if md.Doc == "" {
			md.Doc = s.doc
		}
		pkg := shortPkg(s.pkgPath)
		if !contains(md.Packages, pkg) {
			md.Packages = append(md.Packages, pkg)
		}
	}
	var out []MetricDoc
	for _, md := range merged {
		sort.Strings(md.Packages)
		out = append(out, *md)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VerbTableMarkdown renders the verb registry as the markdown table
// embedded in docs/PROTOCOL.md between the generated-table markers.
func VerbTableMarkdown(verbs []VerbDoc) string {
	var b strings.Builder
	b.WriteString("| Verb | Arguments | Declared in | Semantics |\n")
	b.WriteString("|------|-----------|-------------|-----------|\n")
	for _, v := range verbs {
		var args []string
		for _, a := range v.Args {
			s := "`" + a.Name + "`"
			if a.Kind != "" {
				s += ":" + a.Kind
			}
			if a.Required {
				s += "!"
			}
			args = append(args, s)
		}
		argCell := strings.Join(args, ", ")
		if argCell == "" {
			argCell = "—"
		}
		doc := v.Doc
		if doc == "" {
			doc = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n",
			v.Name, argCell, strings.Join(v.Packages, ", "), escapeCell(doc))
	}
	return b.String()
}

// VerbTableMarkers delimit the generated region inside PROTOCOL.md.
const (
	VerbTableBegin = "<!-- BEGIN GENERATED VERB TABLE (acelint -verbs-doc; do not edit by hand) -->"
	VerbTableEnd   = "<!-- END GENERATED VERB TABLE -->"
)

// SpliceVerbTable replaces the region between the verb-table markers
// in doc with the freshly generated table. It errors when the markers
// are missing so a hand-edited document fails loudly instead of being
// silently rewritten.
func SpliceVerbTable(doc string, verbs []VerbDoc) (string, error) {
	begin := strings.Index(doc, VerbTableBegin)
	end := strings.Index(doc, VerbTableEnd)
	if begin < 0 || end < 0 || end < begin {
		return "", fmt.Errorf("verb-table markers not found (need %q … %q)", VerbTableBegin, VerbTableEnd)
	}
	var b strings.Builder
	b.WriteString(doc[:begin])
	b.WriteString(VerbTableBegin)
	b.WriteString("\n")
	b.WriteString(VerbTableMarkdown(verbs))
	b.WriteString(doc[end:])
	return b.String(), nil
}

// MetricsMarkdown renders docs/METRICS.md in full.
func MetricsMarkdown(metrics []MetricDoc) string {
	var b strings.Builder
	b.WriteString("# Telemetry metrics\n\n")
	b.WriteString("Generated by `acelint -metrics-doc` from every `telemetry.Registry`\n")
	b.WriteString("registration in the tree — do not edit by hand; run\n")
	b.WriteString("`make lint-docs` to regenerate. The `metricnames` analyzer\n")
	b.WriteString("(docs/LINT.md) enforces that every name here is a conforming\n")
	b.WriteString("constant registered from exactly one declaration, so this table\n")
	b.WriteString("is the complete metric surface. Entries ending in `<suffix>` are\n")
	b.WriteString("families: a constant prefix extended with a bounded dynamic\n")
	b.WriteString("suffix (for example one histogram per registered verb).\n\n")
	b.WriteString("| Metric | Kind | Registered in | Description |\n")
	b.WriteString("|--------|------|---------------|-------------|\n")
	for _, m := range metrics {
		doc := m.Doc
		if doc == "" {
			doc = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n",
			m.Name, strings.ToLower(m.Kind), strings.Join(m.Packages, ", "), escapeCell(doc))
	}
	return b.String()
}

func shortPkg(path string) string {
	path = strings.TrimSuffix(path, " [test]")
	if i := strings.LastIndex(path, "/internal/"); i >= 0 {
		return path[i+len("/internal/"):]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func escapeCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func sortedArgNames(args map[string]argDetail) []string {
	names := make([]string, 0, len(args))
	for n := range args {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
