package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockHold flags two mutex hazards that turn distributed stalls into
// whole-daemon stalls:
//
//  1. a sync.Mutex/RWMutex held across a blocking operation — an ACE
//     RPC (wire/pstore/pool call), a channel send or receive outside a
//     select with default, a select without default, time.Sleep, or a
//     Wait call — so one slow peer wedges every goroutine contending
//     for the lock;
//  2. a Lock() with no matching Unlock on some path: a return
//     statement between Lock and Unlock, or no Unlock anywhere in the
//     function (use defer).
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "mutex held across blocking I/O, or Unlock missing on a return path",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFunc(pass, fd.Body)
		}
	}
}

// checkLockFunc scans every statement list in the function (blocks,
// case bodies) for Lock calls and follows each to its release.
func checkLockFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		case *ast.FuncLit:
			checkLockFunc(pass, n.Body)
			return false
		default:
			return true
		}
		for i, stmt := range list {
			recv, kind, ok := lockCall(pass, stmt)
			if !ok {
				continue
			}
			followLock(pass, body, list[i+1:], stmt, recv, kind)
		}
		return true
	})
}

// lockCall matches `mu.Lock()` / `mu.RLock()` expression statements on
// a sync.Mutex or sync.RWMutex and returns the receiver's printed
// form ("d.mu") and the lock kind.
func lockCall(pass *Pass, stmt ast.Stmt) (recv, kind string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	return lockExpr(pass, es.X, "Lock", "RLock")
}

// unlockIn reports whether the statement is exactly the matching
// unlock for recv/kind.
func unlockStmt(pass *Pass, stmt ast.Stmt, recv, kind string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	r, k, ok := lockExpr(pass, es.X, "Unlock", "RUnlock")
	return ok && r == recv && k == unlockFor(kind)
}

func unlockFor(kind string) string {
	if kind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// lockExpr matches a call to one of the two method names on a
// sync.(RW)Mutex and returns the receiver expression's source form.
func lockExpr(pass *Pass, e ast.Expr, names ...string) (recv, name string, ok bool) {
	call, okc := ast.Unparen(e).(*ast.CallExpr)
	if !okc {
		return "", "", false
	}
	sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !oks {
		return "", "", false
	}
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	if rt := recvNamed(fn); rt == nil || (rt.Obj().Name() != "Mutex" && rt.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return types.ExprString(ast.Unparen(sel.X)), n, true
		}
	}
	return "", "", false
}

// recvNamed returns the named receiver type of a method, with any
// pointer stripped.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// followLock walks the statements after a Lock until its release and
// reports blocking operations and unlock-free return paths in the
// locked region.
func followLock(pass *Pass, body *ast.BlockStmt, rest []ast.Stmt, lockStmt ast.Stmt, recv, kind string) {
	deferred := false
	released := false
	for i, stmt := range rest {
		if unlockStmt(pass, stmt, recv, kind) {
			released = true
			break
		}
		if ds, ok := stmt.(*ast.DeferStmt); ok && i == 0 {
			if r, k, ok := lockExpr(pass, ds.Call, "Unlock", "RUnlock"); ok && r == recv && k == unlockFor(kind) {
				deferred = true
				continue
			}
		}
		// Nested release (e.g. inside a conditional): the region ends
		// on some path; stop scanning rather than guess.
		if !deferred && containsUnlock(pass, stmt, recv, kind) {
			released = true
			break
		}
		for _, b := range blockingOps(pass, stmt) {
			pass.Reportf(b.pos.Pos(), "%s while %s is held by %s.%s()", b.desc, recv, recv, kind)
		}
		if !deferred {
			reportLockedReturns(pass, stmt, recv, kind)
		}
	}
	if !deferred && !released && !containsUnlock(pass, body, recv, kind) {
		pass.Reportf(lockStmt.Pos(), "%s.%s() has no matching %s in this function (use defer)",
			recv, kind, unlockFor(kind))
	}
}

// containsUnlock reports whether the subtree contains an Unlock (plain
// or deferred) matching recv/kind. Function literals are excluded: an
// unlock in a spawned goroutine is not a release on this path.
func containsUnlock(pass *Pass, n ast.Node, recv, kind string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if r, k, ok := lockExpr(pass, m, "Unlock", "RUnlock"); ok && r == recv && k == unlockFor(kind) {
				found = true
			}
		}
		return true
	})
	return found
}

// reportLockedReturns flags return statements inside the subtree that
// are not preceded by a matching unlock within their own subtree.
func reportLockedReturns(pass *Pass, stmt ast.Stmt, recv, kind string) {
	if containsUnlock(pass, stmt, recv, kind) {
		return // a path in here releases; too ambiguous to flag
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(), "return while %s is held by %s.%s() with no %s on this path",
				recv, recv, kind, unlockFor(kind))
		}
		return true
	})
}

type blockingOp struct {
	pos  ast.Node
	desc string
}

// blockingOps collects operations in the statement subtree that can
// block indefinitely. Function literal bodies are skipped: goroutines
// spawned under the lock do not run under it.
func blockingOps(pass *Pass, stmt ast.Stmt) []blockingOp {
	var out []blockingOp
	add := func(n ast.Node, desc string) {
		out = append(out, blockingOp{n, desc})
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					add(m, "select without default")
				}
				// The comm clauses themselves are non-blocking when a
				// default exists; either way only descend into bodies.
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s)
						}
					}
				}
				return false
			case *ast.SendStmt:
				add(m, "channel send")
			case *ast.UnaryExpr:
				if m.Op.String() == "<-" {
					add(m, "channel receive")
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(m.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						add(m, "range over channel")
					}
				}
			case *ast.CallExpr:
				if desc := blockingCall(pass, m); desc != "" {
					add(m, desc)
				}
			}
			return true
		})
	}
	walk(stmt)
	return out
}

// blockingRPCNames are the ACE transport/store/pool entry points that
// perform network round trips.
var blockingRPCNames = map[string]bool{
	"Call": true, "CallContext": true, "CallRaw": true, "CallRawContext": true,
	"Send": true, "SendContext": true,
	"Get": true, "GetContext": true, "GetAny": true,
	"Put": true, "PutContext": true,
	"Delete": true, "DeleteContext": true,
	"List": true, "SendData": true,
}

// blockingPkgs are the module-local package basenames whose RPC-named
// methods block on the network.
var blockingPkgs = map[string]bool{"wire": true, "pstore": true, "daemon": true}

// blockingCall classifies a call as blocking: time.Sleep, any Wait
// method, or an RPC-named method on a wire/pstore/daemon type.
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	if fn.Name() == "Wait" {
		return fmt.Sprintf("(%s).Wait", pass.typeStr(sig.Recv().Type()))
	}
	if blockingRPCNames[fn.Name()] && pass.Prog.IsLocal(fn.Pkg().Path()) && blockingPkgs[fn.Pkg().Name()] {
		return fmt.Sprintf("blocking call to (%s).%s",
			pass.typeStr(sig.Recv().Type()), fn.Name())
	}
	return ""
}
