package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// DeadlineCheck walks the call graph to prove that every path from a
// daemon entry point to a blocking wire operation passes through a
// deadline. The ACE convention (PROTOCOL.md "Timeouts, retries, and
// failure semantics") is that transport APIs guard themselves:
//
//	if _, ok := ctx.Deadline(); !ok {
//	        ctx, cancel = context.WithTimeout(ctx, CallTimeout)
//	        defer cancel()
//	}
//
// A function that installs a deadline (context.WithTimeout /
// WithDeadline, or an explicit conn.Set*Deadline) caps the exposure of
// everything it calls. The check computes, over synchronous call
// edges only, which functions can reach a blocking sink — a frame
// read/write in the wire package, or a net / crypto/tls dial,
// handshake, read, write, or accept — without crossing a
// deadline-installing function, then reports every *entry point* that
// is exposed: main functions, registered verb handlers, and exported
// module API taking a context (callable with a deadline-less
// context.Background()). Goroutine bodies are not entries — a spawned
// read loop blocking forever is by design (its lifecycle belongs to
// goroutineleak) and a `go` edge never blocks the spawner.
var DeadlineCheck = &Analyzer{
	Name:       "deadlinecheck",
	Doc:        "an entry point can reach a blocking wire call with no deadline on any path",
	RunProgram: runDeadlineCheck,
}

// deadlineGuardedFact is exported per function node so the driver test
// can assert cross-package fact flow; the value is a bool.
const deadlineGuardedFact = "deadline.guarded"

func runDeadlineCheck(pp *ProgPass) {
	g := pp.Graph

	guarded := make(map[*Node]bool)
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		if installsDeadline(pp, n) {
			guarded[n] = true
			if n.Func != nil {
				pp.Facts.Export(n.Func, deadlineGuardedFact, true)
			}
		}
	}

	// Exposure = reverse reachability from sinks along synchronous
	// edges, stopping at deadline-installing functions.
	exposed := make(map[*Node]bool)
	var queue []*Node
	for _, n := range g.SortedNodes() {
		if isDeadlineSink(n) && !guarded[n] {
			exposed[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			if !e.Kind.Sync() || exposed[e.From] || guarded[e.From] {
				continue
			}
			if isDeadlineSink(e.From) {
				continue // already seeded (or guarded) on its own terms
			}
			exposed[e.From] = true
			queue = append(queue, e.From)
		}
	}

	handlerNodes := make(map[*Node]string)
	for _, h := range g.Handlers {
		if !h.Test && h.Handler != nil {
			handlerNodes[h.Handler] = h.Verb
		}
	}

	for _, n := range g.SortedNodes() {
		if !exposed[n] || n.Body == nil || n.Pkg == nil {
			continue
		}
		if n.Pkg.IsTestFile(pp.Fset, n.Body.Pos()) {
			continue
		}
		entry := deadlineEntryKind(pp, n, handlerNodes)
		if entry == "" {
			continue
		}
		path := witnessPath(n, exposed, guarded)
		pp.Reportf(n.Body.Pos(), "%s %s can reach a blocking call with no deadline on the path: %s; install one (context.WithTimeout or the ctx.Deadline() guard)",
			entry, n.Name, path)
	}
}

// deadlineEntryKind classifies a node as a deadline entry point, or
// returns "" when paths into it are some caller's responsibility.
func deadlineEntryKind(pp *ProgPass, n *Node, handlers map[*Node]string) string {
	if verb, ok := handlers[n]; ok {
		return "handler for verb " + `"` + verb + `" in`
	}
	fn := n.Func
	if fn == nil {
		return ""
	}
	if fn.Name() == "main" && fn.Pkg() != nil && fn.Pkg().Name() == "main" {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil {
			return "entry point"
		}
	}
	// Exported module API taking a context: callable from outside with
	// context.Background(), so the deadline must be installed at or
	// below this frame.
	if fn.Exported() && fn.Pkg() != nil && pp.Prog.IsLocal(fn.Pkg().Path()) && hasContextParam(fn) {
		return "exported"
	}
	return ""
}

func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// installsDeadline reports whether the node's own body (excluding
// nested literals, which are their own nodes) installs a deadline:
// context.WithTimeout / WithDeadline, or conn.SetDeadline /
// SetReadDeadline / SetWriteDeadline.
func installsDeadline(pp *ProgPass, n *Node) bool {
	pass := pp.PackagePass(n.Pkg)
	found := false
	skip := ownLiterals(n)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := node.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.calleeFunc(call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "WithTimeout" || fn.Name() == "WithDeadline"):
			found = true
		case strings.HasPrefix(fn.Name(), "Set") && strings.HasSuffix(fn.Name(), "Deadline"):
			found = true
		}
		return !found
	})
	return found
}

// ownLiterals returns the literals that belong to other nodes (every
// FuncLit inside n.Body): their statements must not be charged to n.
func ownLiterals(n *Node) map[*ast.FuncLit]bool {
	skip := make(map[*ast.FuncLit]bool)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			skip[lit] = true
			return false
		}
		return true
	})
	// For a literal node, n.Body *is* the literal's body; the map just
	// collected nested literals correctly since Inspect starts inside.
	return skip
}

// isDeadlineSink reports whether the node is an intrinsic blocking
// operation: frame I/O in a wire package, or the blocking entry
// points of net and crypto/tls.
func isDeadlineSink(n *Node) bool {
	fn := n.Func
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "net":
		switch name {
		case "Dial", "DialContext", "Read", "Write", "Accept", "AcceptTCP":
			return true
		}
	case "crypto/tls":
		switch name {
		case "Read", "Write", "Handshake", "HandshakeContext":
			return true
		}
	}
	// The module's own framing layer: ReadFrame/WriteFrame block until
	// the peer produces or drains bytes; their internals go through
	// io.ReadFull, which hides the net.Conn from the graph, so they
	// are sinks by name.
	if fn.Pkg().Name() == "wire" && (name == "ReadFrame" || name == "WriteFrame") {
		return true
	}
	return false
}

// witnessPath renders one concrete exposed path from n to a sink for
// the finding message, walking deterministically (sorted edges).
func witnessPath(n *Node, exposed, guarded map[*Node]bool) string {
	var steps []string
	seen := make(map[*Node]bool)
	cur := n
	for {
		seen[cur] = true
		steps = append(steps, cur.Name)
		if isDeadlineSink(cur) {
			break
		}
		next := (*Node)(nil)
		var candidates []Edge
		for _, e := range cur.Out {
			if e.Kind.Sync() && !seen[e.To] && !guarded[e.To] && (exposed[e.To] || isDeadlineSink(e.To)) {
				candidates = append(candidates, e)
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			// Prefer reaching a sink directly; then deterministic order.
			si, sj := isDeadlineSink(candidates[i].To), isDeadlineSink(candidates[j].To)
			if si != sj {
				return si
			}
			return candidates[i].To.Key < candidates[j].To.Key
		})
		if len(candidates) > 0 {
			next = candidates[0].To
		}
		if next == nil {
			break
		}
		cur = next
	}
	return strings.Join(steps, " → ")
}
