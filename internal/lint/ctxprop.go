package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagation flags calls that drop an in-scope context: inside a
// function that receives a context.Context or a *daemon.Ctx, calling
// the plain variant of an ACE API that also has a *Context variant
// (wire.Client.Call vs CallContext, pstore.Client.Get vs GetContext,
// daemon.Pool.Send vs SendContext, ...) silently discards the trace
// span and the caller's deadline. The check is structural: any method
// M on a module-local type is flagged when an MContext method taking
// a leading context.Context exists on the same receiver.
var CtxPropagation = &Analyzer{
	Name: "ctxpropagation",
	Doc:  "plain RPC call drops an in-scope context; use the *Context variant",
	Run:  runCtxPropagation,
}

// ctxAllowed exempts (receiver).method pairs where the plain method
// is not the context-dropping twin of its *Context sibling but a
// deliberately different operation. placement.Cache.Get is the
// non-blocking cached-map read: it never touches the network, so
// there is no deadline or trace span to propagate, and the routing
// fast path calls it first precisely to stay off the wire —
// GetContext is the slow path that fetches from the ASD, and every
// Get miss already falls through to GetContext(ctx). Keys use the
// same "(*pkg.Type).Method" rendering the finding message uses.
var ctxAllowed = map[string]string{
	"(*placement.Cache).Get": "cached read, no I/O; GetContext is the fetch slow path taken on miss",
}

func runCtxPropagation(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxBody(pass, fd.Body, ctxInScope(pass, fd.Type))
		}
	}
}

// ctxInScope returns the expression a handler should pass downstream
// ("ctx" for a context.Context parameter, "ctx.TraceContext()" for a
// *daemon.Ctx), or "" when the function receives no context.
func ctxInScope(pass *Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if isContextType(t) {
				return name.Name
			}
			if isDaemonCtx(pass, t) {
				return name.Name + ".TraceContext()"
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDaemonCtx reports whether t is *daemon.Ctx (recognized by name
// plus a TraceContext() context.Context method, so the golden-test
// stand-in packages qualify too).
func isDaemonCtx(pass *Pass, t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || n.Obj().Name() != "Ctx" || n.Obj().Pkg() == nil || !pass.Prog.IsLocal(n.Obj().Pkg().Path()) {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(t, true, n.Obj().Pkg(), "TraceContext")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Results().Len() == 1 && isContextType(sig.Results().At(0).Type())
}

// checkCtxBody walks a function body. Function literals carry their
// own parameter list but still close over the enclosing context, so
// the in-scope expression is inherited unless the literal introduces
// its own context parameter.
func checkCtxBody(pass *Pass, body ast.Node, ctxExpr string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxInScope(pass, n.Type)
			if inner == "" {
				inner = ctxExpr
			}
			checkCtxBody(pass, n.Body, inner)
			return false
		case *ast.CallExpr:
			if ctxExpr != "" {
				checkCtxCall(pass, n, ctxExpr)
			}
		}
		return true
	})
}

func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxExpr string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !pass.Prog.IsLocal(fn.Pkg().Path()) {
		return
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok { // package-qualified function, not a method call
		return
	}
	variant := contextVariant(selection.Recv(), fn)
	if variant == "" {
		return
	}
	recv := pass.typeStr(selection.Recv())
	if _, ok := ctxAllowed["("+recv+")."+fn.Name()]; ok {
		return
	}
	pass.Reportf(call.Pos(), "(%s).%s drops the in-scope context; use %s(%s, ...)",
		recv, fn.Name(), variant, ctxExpr)
}

// contextVariant returns the name of the <method>Context sibling on
// recv when one exists with a leading context.Context parameter, or
// "" when the called method has no context-aware variant (or is one).
func contextVariant(recv types.Type, fn *types.Func) string {
	name := fn.Name()
	if len(name) > 7 && name[len(name)-7:] == "Context" {
		return ""
	}
	obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), name+"Context")
	vfn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := vfn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
		return ""
	}
	return vfn.Name()
}
