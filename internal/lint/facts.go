package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// FactStore is the interprocedural engine's cross-package fact table:
// analyzers attach facts to types.Object instances in one package and
// read them back while analyzing another. The driver type-checks each
// directory several times (the merged-test unit, the pure import
// variant, the external _test unit), so the "same" function exists as
// several distinct types.Object pointers; the store canonicalizes
// objects to stable keys so a fact exported against one incarnation is
// visible through every other.
type FactStore struct {
	fset *token.FileSet
	mu   sync.Mutex
	m    map[string]map[string]any
}

// NewFactStore returns an empty store keyed through fset's positions.
func NewFactStore(fset *token.FileSet) *FactStore {
	return &FactStore{fset: fset, m: make(map[string]map[string]any)}
}

// ObjectKey canonicalizes an object across type-check units. Functions
// and methods use their qualified name (identical in every unit);
// everything else — fields, package vars, constants — uses the
// declaration position, which both parses of a file share because the
// loader reuses one FileSet.
func ObjectKey(fset *token.FileSet, obj types.Object) string {
	if obj == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		return funcKey(fn)
	}
	if pos := fset.Position(obj.Pos()); pos.IsValid() && pos.Filename != "" {
		return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// funcKey is the canonical node key for a function or method: the
// types.Func full name ("(*ace/internal/wire.Client).Call"), taken on
// the generic origin so instantiations collapse onto one node.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// Export records fact name → v against obj, overwriting any earlier
// value (last write wins; analyzers export each fact once).
func (s *FactStore) Export(obj types.Object, name string, v any) {
	key := ObjectKey(s.fset, obj)
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	facts := s.m[key]
	if facts == nil {
		facts = make(map[string]any)
		s.m[key] = facts
	}
	facts[name] = v
}

// Import retrieves the fact exported against obj under name, matching
// across type-check units through the canonical key.
func (s *FactStore) Import(obj types.Object, name string) (any, bool) {
	key := ObjectKey(s.fset, obj)
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	facts, ok := s.m[key]
	if !ok {
		return nil, false
	}
	v, ok := facts[name]
	return v, ok
}

// Keys returns every canonical object key holding at least one fact,
// sorted — used by tests and debugging output.
func (s *FactStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
