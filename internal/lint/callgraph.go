package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of acelint: a package-set-wide
// call graph built over the typed ASTs after type checking. Nodes are
// functions, methods, and function literals; edges carry the calling
// mode (static, closure, conservative interface dispatch, or `go`
// spawn). The graph is deliberately conservative where Go's dynamism
// defeats static resolution: interface calls fan out to every
// same-name/same-arity concrete method in the module, and calls
// through function values mark the caller as dynamic rather than
// guessing a target.
//
// Because the driver type-checks each directory more than once (merged
// test unit + pure import variant), the same source function exists as
// several distinct *types.Func values. Nodes are therefore keyed by
// funcKey (the qualified name) so every incarnation lands on one node,
// and non-function objects are canonicalized by declaration position
// (see ObjectKey in facts.go).

// EdgeKind classifies one call edge.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a named function or method.
	EdgeStatic EdgeKind = iota
	// EdgeClosure links a function to a literal declared in its body:
	// the literal may run synchronously (immediate call, callback) so
	// synchronous analyses follow it conservatively.
	EdgeClosure
	// EdgeInterface is a conservative interface-dispatch edge to a
	// concrete method matched by name and arity.
	EdgeInterface
	// EdgeGo is a `go` statement: the callee runs asynchronously and
	// never blocks the caller.
	EdgeGo
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeClosure:
		return "closure"
	case EdgeInterface:
		return "interface"
	case EdgeGo:
		return "go"
	}
	return "?"
}

// Sync reports whether the edge transfers control synchronously — the
// caller waits for the callee (or may, for closures and interface
// dispatch). Go spawns are the only asynchronous kind.
func (k EdgeKind) Sync() bool { return k != EdgeGo }

// Edge is one call site in the graph.
type Edge struct {
	From *Node
	To   *Node
	Pos  token.Pos
	Kind EdgeKind
}

// Node is one function in the graph. Exactly one of Func/Lit
// identifies it: named functions and methods carry Func (and, when the
// body lives in the analyzed module, Decl/Body/Pkg); function literals
// carry Lit. External functions (standard library, interface methods)
// are nodes too — with Func set but no body — so analyzers can treat
// e.g. net.Conn.Read as an intrinsic sink.
type Node struct {
	Key  string
	Name string // human-readable ("(*wire.Client).Call", "func literal at …")

	Func *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package // unit providing the body; nil for externals

	Out []Edge
	In  []Edge

	// HasDynamicCall marks at least one call through a function value
	// whose target could not be resolved; path-sensitive analyses may
	// choose to distrust negative results for such nodes.
	HasDynamicCall bool
}

// External reports whether the node has no body in the analyzed
// module (standard library function, interface method, or a function
// whose body failed to type-check).
func (n *Node) External() bool { return n.Body == nil }

// HandlerReg is one daemon verb registration discovered during the
// graph walk: Handle(CommandSpec{...}, handler) or the daemon shell's
// internal bind(name, handler) form.
type HandlerReg struct {
	Verb    string
	Spec    *ast.CompositeLit // nil for bind-style registrations
	Handler *Node             // nil when the handler expression is dynamic
	Pos     token.Pos
	Pkg     *Package
	Test    bool // registration sits in a _test.go file
}

// SpecSite is one CommandSpec composite literal with a constant-folded
// name, whether or not it sits inside a Handle call (Declare/DeclareAll
// chains and spec tables count too).
type SpecSite struct {
	Verb string
	Lit  *ast.CompositeLit
	Pos  token.Pos
	Pkg  *Package
	Test bool
}

// Spawn is one `go` statement. Root is the spawned function's node
// when it could be resolved statically (named function, method, or
// literal), nil for spawns through function values.
type Spawn struct {
	Site *ast.GoStmt
	From *Node
	Root *Node
	Pkg  *Package
	Test bool
}

// Graph is the package-set-wide call graph plus the protocol-level
// registration index the ACE analyzers share.
type Graph struct {
	Nodes    map[string]*Node
	Spawns   []*Spawn
	Handlers []*HandlerReg
	Specs    []*SpecSite

	prog *Program
}

// NodeFor resolves a function object (from any type-check unit) to its
// graph node, or nil when the function never appears in the program.
func (g *Graph) NodeFor(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[funcKey(fn)]
}

// SortedNodes returns the nodes ordered by key for deterministic
// iteration.
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ifaceCall is a pending interface-dispatch site resolved after every
// concrete method has a node.
type ifaceCall struct {
	from    *Node
	pos     token.Pos
	name    string
	nargs   int
	methods []string // every method name of the interface, for containment
}

type graphBuilder struct {
	prog  *Program
	graph *Graph
	iface []ifaceCall

	// pendingHandlers defers handler-argument resolution until every
	// literal has a node (the registration call is visited before its
	// argument literal).
	pendingHandlers []pendingHandler
	litNodes        map[*ast.FuncLit]*Node
}

type pendingHandler struct {
	verb    string
	spec    *ast.CompositeLit
	handler ast.Expr
	pos     token.Pos
	pkg     *Package
	test    bool
}

// BuildGraph constructs the call graph for the loaded program. The
// result is cached on the Program; analyzers reach it through
// ProgPass.Graph.
func BuildGraph(prog *Program) *Graph {
	b := &graphBuilder{
		prog:     prog,
		graph:    &Graph{Nodes: make(map[string]*Node), prog: prog},
		litNodes: make(map[*ast.FuncLit]*Node),
	}
	for _, pkg := range prog.Packages {
		pass := &Pass{Prog: prog, Pkg: pkg, Fset: prog.Fset}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue // type error left the decl unresolved
				}
				node := b.ensureFunc(fn)
				if node.Body == nil {
					node.Decl, node.Body, node.Pkg = fd, fd.Body, pkg
				}
				b.walkBody(pass, node, fd.Body)
			}
		}
	}
	b.resolveInterfaces()
	b.resolveHandlers()
	sort.Slice(b.graph.Handlers, func(i, j int) bool { return b.graph.Handlers[i].Pos < b.graph.Handlers[j].Pos })
	sort.Slice(b.graph.Specs, func(i, j int) bool { return b.graph.Specs[i].Pos < b.graph.Specs[j].Pos })
	sort.Slice(b.graph.Spawns, func(i, j int) bool { return b.graph.Spawns[i].Site.Pos() < b.graph.Spawns[j].Site.Pos() })
	return b.graph
}

func (b *graphBuilder) ensureFunc(fn *types.Func) *Node {
	key := funcKey(fn)
	if n, ok := b.graph.Nodes[key]; ok {
		return n
	}
	n := &Node{Key: key, Func: fn.Origin(), Name: shortFuncName(fn)}
	b.graph.Nodes[key] = n
	return n
}

func (b *graphBuilder) ensureLit(lit *ast.FuncLit, pkg *Package, enclosing *Node) *Node {
	if n, ok := b.litNodes[lit]; ok {
		return n
	}
	pos := b.prog.Fset.Position(lit.Pos())
	key := fmt.Sprintf("lit:%s:%d:%d", pos.Filename, pos.Line, pos.Column)
	n, ok := b.graph.Nodes[key]
	if !ok {
		n = &Node{
			Key:  key,
			Name: fmt.Sprintf("func literal in %s", enclosing.Name),
			Lit:  lit, Body: lit.Body, Pkg: pkg,
		}
		b.graph.Nodes[key] = n
	}
	b.litNodes[lit] = n
	return n
}

func (b *graphBuilder) addEdge(from, to *Node, pos token.Pos, kind EdgeKind) {
	e := Edge{From: from, To: to, Pos: pos, Kind: kind}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
}

// shortFuncName renders a function with bare package names for
// readable findings: "(*wire.Client).Call", "daemon.New".
func shortFuncName(fn *types.Func) string {
	full := fn.Origin().FullName()
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			full = strings.ReplaceAll(full, path, path[i+1:])
		}
	}
	return full
}

// walkBody records edges, spawns, and protocol registrations for one
// function body. Function literals become their own nodes, linked to
// the enclosing function by a closure edge (or a go edge when the
// literal is spawned directly).
func (b *graphBuilder) walkBody(pass *Pass, node *Node, body *ast.BlockStmt) {
	goCalls := make(map[*ast.CallExpr]bool)
	spawnedLits := make(map[*ast.FuncLit]*ast.GoStmt)
	litOwner := make(map[*ast.FuncLit]*Node)

	// current tracks the innermost function node while descending into
	// literals; ast.Inspect is pre-order so a stack works.
	var walk func(n ast.Node, current *Node)
	walk = func(root ast.Node, current *Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lit := b.ensureLit(n, pass.Pkg, current)
				litOwner[n] = current
				if g, spawned := spawnedLits[n]; spawned {
					b.addEdge(current, lit, g.Pos(), EdgeGo)
					b.graph.Spawns = append(b.graph.Spawns, &Spawn{
						Site: g, From: current, Root: lit, Pkg: pass.Pkg,
						Test: pass.Pkg.IsTestFile(pass.Fset, g.Pos()),
					})
				} else {
					b.addEdge(current, lit, n.Pos(), EdgeClosure)
				}
				walk(n.Body, lit)
				return false
			case *ast.GoStmt:
				call := n.Call
				goCalls[call] = true
				if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
					spawnedLits[lit] = n
					return true // literal case above records the spawn
				}
				if fn := pass.calleeFunc(call); fn != nil {
					target := b.ensureFunc(fn)
					b.addEdge(current, target, n.Pos(), EdgeGo)
					b.graph.Spawns = append(b.graph.Spawns, &Spawn{
						Site: n, From: current, Root: target, Pkg: pass.Pkg,
						Test: pass.Pkg.IsTestFile(pass.Fset, n.Pos()),
					})
				} else {
					current.HasDynamicCall = true
					b.graph.Spawns = append(b.graph.Spawns, &Spawn{
						Site: n, From: current, Pkg: pass.Pkg,
						Test: pass.Pkg.IsTestFile(pass.Fset, n.Pos()),
					})
				}
				return true
			case *ast.CallExpr:
				if !goCalls[n] {
					b.recordCall(pass, current, n)
				}
				b.recordRegistration(pass, n)
				return true
			case *ast.CompositeLit:
				b.recordSpec(pass, n)
				return true
			}
			return true
		})
	}
	walk(body, node)
}

// recordCall adds the edge for one ordinary (non-go) call expression.
func (b *graphBuilder) recordCall(pass *Pass, current *Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.FuncLit:
		return // immediate invocation; the closure edge covers it
	default:
		current.HasDynamicCall = true
		return
	}
	obj := pass.Pkg.Info.Uses[id]
	switch obj := obj.(type) {
	case *types.Func:
		target := b.ensureFunc(obj)
		b.addEdge(current, target, call.Pos(), EdgeStatic)
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			ic := ifaceCall{from: current, pos: call.Pos(), name: obj.Name(), nargs: sig.Params().Len()}
			// Constrain candidates by the receiver expression's static
			// type, not the method's declared receiver: a call through
			// hash.Hash64 declares Write on the embedded io.Writer, and
			// the full interface is what narrows the implementor set.
			recvT := sig.Recv().Type()
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if t := pass.TypeOf(sel.X); t != nil && types.IsInterface(t) {
					recvT = t
				}
			}
			if iface, ok := recvT.Underlying().(*types.Interface); ok {
				for i := 0; i < iface.NumMethods(); i++ {
					ic.methods = append(ic.methods, iface.Method(i).Name())
				}
			}
			b.iface = append(b.iface, ic)
		}
	case *types.Builtin, *types.TypeName, nil:
		// close/len/append, conversions, or unresolved — no edge.
	default:
		// Variable or parameter of function type: dynamic call.
		current.HasDynamicCall = true
	}
}

// recordRegistration captures Handle(CommandSpec{...}, h) and
// bind(name, h) verb registrations for later resolution.
func (b *graphBuilder) recordRegistration(pass *Pass, call *ast.CallExpr) {
	if recvStr, ok := handleCall(pass, call); ok {
		_ = recvStr
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return // spec built elsewhere; the spec-literal index covers it
		}
		verb, state := specName(pass, lit)
		if state != nameKnown || verb == "" {
			return
		}
		b.pendingHandlers = append(b.pendingHandlers, pendingHandler{
			verb: verb, spec: lit, handler: call.Args[1], pos: call.Pos(), pkg: pass.Pkg,
			test: pass.Pkg.IsTestFile(pass.Fset, call.Pos()),
		})
		return
	}
	// bind(name, handler): the daemon shell's internal registration for
	// built-ins, matched by callee name and a constant first argument.
	if fn := pass.calleeFunc(call); fn != nil && fn.Name() == "bind" && len(call.Args) == 2 &&
		fn.Pkg() != nil && pass.Prog.IsLocal(fn.Pkg().Path()) {
		if tv, ok := pass.Pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			b.pendingHandlers = append(b.pendingHandlers, pendingHandler{
				verb: constant.StringVal(tv.Value), handler: call.Args[1], pos: call.Pos(), pkg: pass.Pkg,
				test: pass.Pkg.IsTestFile(pass.Fset, call.Pos()),
			})
		}
	}
}

// recordSpec indexes every CommandSpec literal with a constant name.
func (b *graphBuilder) recordSpec(pass *Pass, lit *ast.CompositeLit) {
	if !isCommandSpec(pass, pass.TypeOf(lit)) {
		return
	}
	verb, state := specName(pass, lit)
	if state != nameKnown || verb == "" {
		return
	}
	b.graph.Specs = append(b.graph.Specs, &SpecSite{
		Verb: verb, Lit: lit, Pos: lit.Pos(), Pkg: pass.Pkg,
		Test: pass.Pkg.IsTestFile(pass.Fset, lit.Pos()),
	})
}

// resolveInterfaces adds the conservative dispatch edges: each
// interface call site fans out to every module method with the same
// name and parameter count whose receiver type carries every method
// the interface declares. Matching by type identity is impossible
// across type-check units (the same named type exists once per unit),
// so the engine compares method-name sets instead — still an
// over-approximation (analyzers must tolerate extra edges, not missing
// ones), but tight enough that hash.Hash.Write does not dispatch to a
// net.Conn wrapper.
func (b *graphBuilder) resolveInterfaces() {
	byName := make(map[string][]*Node)
	for _, n := range b.graph.Nodes {
		if n.Func == nil || n.Body == nil {
			continue
		}
		sig, ok := n.Func.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		byName[n.Func.Name()] = append(byName[n.Func.Name()], n)
	}
	for _, list := range byName {
		sort.Slice(list, func(i, j int) bool { return list[i].Key < list[j].Key })
	}
	recvMethods := make(map[*Node]map[string]bool)
	type edgeSeen struct {
		from *Node
		to   *Node
	}
	seen := make(map[edgeSeen]bool)
	for _, ic := range b.iface {
		for _, impl := range byName[ic.name] {
			sig := impl.Func.Type().(*types.Signature)
			if sig.Params().Len() != ic.nargs {
				continue
			}
			if !implementsByName(recvMethods, impl, ic.methods) {
				continue
			}
			if seen[edgeSeen{ic.from, impl}] {
				continue
			}
			seen[edgeSeen{ic.from, impl}] = true
			b.addEdge(ic.from, impl, ic.pos, EdgeInterface)
		}
	}
}

// implementsByName reports whether the candidate method's receiver type
// has every method name the interface requires (pointer method set,
// since a concrete value stored in an interface may be addressable).
func implementsByName(cache map[*Node]map[string]bool, impl *Node, required []string) bool {
	if len(required) == 0 {
		return true // interface type unresolved; fall back to name+arity
	}
	set, ok := cache[impl]
	if !ok {
		set = make(map[string]bool)
		t := impl.Func.Type().(*types.Signature).Recv().Type()
		if _, isPtr := t.(*types.Pointer); !isPtr {
			t = types.NewPointer(t)
		}
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			set[ms.At(i).Obj().Name()] = true
		}
		cache[impl] = set
	}
	for _, name := range required {
		if !set[name] {
			return false
		}
	}
	return true
}

// resolveHandlers maps each pending registration's handler expression
// to a node now that literals are all known.
func (b *graphBuilder) resolveHandlers() {
	for _, ph := range b.pendingHandlers {
		reg := &HandlerReg{Verb: ph.verb, Spec: ph.spec, Pos: ph.pos, Pkg: ph.pkg, Test: ph.test}
		switch h := ast.Unparen(ph.handler).(type) {
		case *ast.FuncLit:
			reg.Handler = b.litNodes[h]
		case *ast.Ident:
			if fn, ok := ph.pkg.Info.Uses[h].(*types.Func); ok {
				reg.Handler = b.graph.NodeFor(fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := ph.pkg.Info.Uses[h.Sel].(*types.Func); ok {
				reg.Handler = b.graph.NodeFor(fn)
			}
		}
		b.graph.Handlers = append(b.graph.Handlers, reg)
	}
}

// ReachableSync returns the set of nodes reachable from start along
// synchronous edges (static, closure, interface — not go spawns),
// including start itself. When moduleOnly is set the walk stays on
// nodes with bodies.
func (g *Graph) ReachableSync(start *Node, moduleOnly bool) map[*Node]bool {
	seen := map[*Node]bool{start: true}
	stack := []*Node{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !e.Kind.Sync() || seen[e.To] {
				continue
			}
			if moduleOnly && e.To.External() {
				continue
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return seen
}
