package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer diagnostic, printed as
// "file:line: [check] message".
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Prog *Program
	Pkg  *Package
	Fset *token.FileSet

	check  string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: p.Fset.Position(pos), Check: p.check, Msg: fmt.Sprintf(format, args...)})
}

// typeStr prints a type with bare package names ("*wire.Client"
// rather than "*ace/internal/wire.Client") for readable findings.
func (p *Pass) typeStr(t types.Type) string {
	return types.TypeString(t, func(other *types.Package) string {
		if other == p.Pkg.Types {
			return ""
		}
		return other.Name()
	})
}

// TypeOf returns the type of an expression, or nil when type checking
// did not resolve it (broken packages are still analyzed).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// calleeFunc resolves the called function or method, unwrapping
// parenthesized expressions. Returns nil for indirect calls, builtin
// calls, and type conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// ProgPass carries a program-level analyzer's view of the whole
// loaded package set: the call graph, the cross-package fact store,
// and every package at once. Interprocedural checks (deadlinecheck,
// goroutineleak, verbconformance) run here instead of per package.
type ProgPass struct {
	Prog  *Program
	Fset  *token.FileSet
	Graph *Graph
	Facts *FactStore

	check  string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *ProgPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{Pos: p.Fset.Position(pos), Check: p.check, Msg: fmt.Sprintf(format, args...)})
}

// PackagePass builds a per-package Pass for reuse of the intra-
// procedural helpers (TypeOf, calleeFunc, …) inside a program pass.
func (p *ProgPass) PackagePass(pkg *Package) *Pass {
	return &Pass{Prog: p.Prog, Pkg: pkg, Fset: p.Fset, check: p.check, report: p.report}
}

// Analyzer is one acelint check. Run executes once per package;
// RunProgram executes once over the whole loaded set with the call
// graph and fact store available. An analyzer defines one or the
// other (defining both runs both).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgPass)
}

// All lists every analyzer in the order they run.
var All = []*Analyzer{
	CtxPropagation,
	LockHold,
	DroppedErr,
	VerbReg,
	DetRand,
	BoundedSpawn,
	VerbConformance,
	DeadlineCheck,
	GoroutineLeak,
	MetricNames,
}

// ByName resolves a comma-separated check list ("ctxpropagation,detrand")
// against All.
func ByName(list string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("acelint: unknown check %q", name)
		}
	}
	return out, nil
}

// IgnoreDirective is the comment prefix that suppresses findings:
//
//	//acelint:ignore <check>[,<check>...] <reason>
//
// placed on the flagged line or on its own line directly above. The
// check field is a comma-separated list so one directive can silence
// several analyzers on the same line. The reason is mandatory, and a
// suppression that matches nothing is itself reported (check name
// "ignore") so stale pragmas cannot accumulate — with a multi-check
// directive, each listed check must match a finding.
const IgnoreDirective = "acelint:ignore"

type suppression struct {
	pos   token.Position // position of the directive comment
	check string
	line  int // the single line the suppression covers
	used  bool
}

// covers reports whether the suppression applies to a finding at the
// given position: exactly one line — the directive's own line for a
// trailing comment, or the line directly below for a directive alone
// on its line.
func (s *suppression) covers(file string, line int) bool {
	return s.pos.Filename == file && line == s.line
}

// standaloneComment reports whether only whitespace precedes the
// comment on its source line (consulting the file text, since the AST
// does not record this).
func standaloneComment(lineCache map[string][]string, pos token.Position) bool {
	lines, ok := lineCache[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err == nil {
			lines = strings.Split(string(data), "\n")
		}
		lineCache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// collectSuppressions parses acelint:ignore directives in a file.
// Malformed directives are reported immediately via report.
func collectSuppressions(fset *token.FileSet, f *ast.File, known map[string]bool, lineCache map[string][]string, report func(Finding)) []*suppression {
	var sups []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments do not carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, IgnoreDirective)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(Finding{Pos: pos, Check: "ignore", Msg: "acelint:ignore needs a check name and a reason"})
				continue
			}
			var checks []string
			badName := false
			for _, check := range strings.Split(fields[0], ",") {
				check = strings.TrimSpace(check)
				if check == "" || !known[check] {
					report(Finding{Pos: pos, Check: "ignore", Msg: fmt.Sprintf("acelint:ignore names unknown check %q", check)})
					badName = true
					continue
				}
				checks = append(checks, check)
			}
			if badName && len(checks) == 0 {
				continue
			}
			if len(fields) < 2 {
				report(Finding{Pos: pos, Check: "ignore", Msg: fmt.Sprintf("acelint:ignore %s needs a reason", fields[0])})
				continue
			}
			line := pos.Line
			if standaloneComment(lineCache, pos) {
				line++
			}
			// One suppression entry per listed check: each must match a
			// finding or be reported as unused on its own.
			for _, check := range checks {
				sups = append(sups, &suppression{pos: pos, check: check, line: line})
			}
		}
	}
	return sups
}

// AnalyzerTiming records how long one analyzer spent across the whole
// program, for `acelint -json` / `-timing` CI annotations. The
// pseudo-entry "callgraph" reports the one-time graph construction
// cost shared by the program-level analyzers.
type AnalyzerTiming struct {
	Check   string
	Elapsed time.Duration
}

// Run executes the analyzers over every package in prog, applies
// suppression directives, and returns the surviving findings sorted
// by position. Unused or malformed suppressions are returned as
// findings of the pseudo-check "ignore".
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	findings, _ := RunTimed(prog, analyzers)
	return findings
}

// RunTimed is Run plus per-analyzer wall-clock timings.
func RunTimed(prog *Program, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming) {
	known := make(map[string]bool)
	for _, a := range All {
		known[a.Name] = true
	}

	var raw []Finding
	collect := func(f Finding) { raw = append(raw, f) }

	elapsed := make(map[string]time.Duration)
	var order []string
	timed := func(name string, fn func()) {
		start := time.Now()
		fn()
		if _, ok := elapsed[name]; !ok {
			order = append(order, name)
		}
		elapsed[name] += time.Since(start)
	}

	var sups []*suppression
	var supFindings []Finding
	seenFile := make(map[string]bool)
	lineCache := make(map[string][]string)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue // base files appear once even if shared across units
			}
			seenFile[name] = true
			sups = append(sups, collectSuppressions(prog.Fset, f, known, lineCache, func(f Finding) {
				supFindings = append(supFindings, f)
			})...)
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Prog: prog, Pkg: pkg, Fset: prog.Fset, check: a.Name, report: collect}
			timed(a.Name, func() { a.Run(pass) })
		}
	}

	// Program-level passes: build the call graph once, lazily, only
	// when an enabled analyzer actually needs it.
	needGraph := false
	for _, a := range analyzers {
		if a.RunProgram != nil {
			needGraph = true
		}
	}
	if needGraph {
		timed("callgraph", func() { prog.Graph() })
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			pp := &ProgPass{Prog: prog, Fset: prog.Fset, Graph: prog.Graph(), Facts: prog.Facts(),
				check: a.Name, report: collect}
			timed(a.Name, func() { a.RunProgram(pp) })
		}
	}

	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, s := range sups {
			if s.check == f.Check && s.covers(f.Pos.Filename, f.Pos.Line) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		if !s.used {
			out = append(out, Finding{Pos: s.pos, Check: "ignore",
				Msg: fmt.Sprintf("unused acelint:ignore for %q: no such finding here", s.check)})
		}
	}
	out = append(out, supFindings...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
	// Findings can be duplicated when a file is analyzed in both the
	// merged-test unit and as a dependency elsewhere; dedup exactly.
	dedup := out[:0]
	var last Finding
	for i, f := range out {
		if i == 0 || f != last {
			dedup = append(dedup, f)
		}
		last = f
	}

	timings := make([]AnalyzerTiming, 0, len(order))
	for _, name := range order {
		timings = append(timings, AnalyzerTiming{Check: name, Elapsed: elapsed[name]})
	}
	return dedup, timings
}
