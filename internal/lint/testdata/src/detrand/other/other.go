// Package other is outside the chaos harness: wall-clock and global
// rand are out of detrand's scope here.
package other

import (
	"math/rand"
	"time"
)

func Unscoped() int64 {
	time.Sleep(time.Millisecond)
	return time.Now().UnixNano() + int64(rand.Intn(3))
}
