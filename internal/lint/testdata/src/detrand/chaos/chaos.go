// Package chaos mirrors ace/internal/chaos: everything here must
// replay deterministically from a seed.
package chaos

import (
	"math/rand"
	"time"
)

// Schedule builds a fault schedule; all entropy must come from seed.
func Schedule(seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed)) // seeded stream: fine
	start := time.Now()                   // want `time\.Now\(\) in the chaos harness`
	_ = start
	jitter := rand.Intn(10) // want `global math/rand\.Intn is seeded from process entropy`
	_ = jitter
	time.Sleep(50 * time.Millisecond) // want `constant time\.Sleep used as synchronization`
	d := time.Duration(rng.Intn(10)) * time.Millisecond
	time.Sleep(d) // schedule-derived duration: fine
	return []time.Duration{d}
}
