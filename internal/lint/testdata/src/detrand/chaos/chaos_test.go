package chaos

import (
	"math/rand"
	"testing"
	"time"
)

// Tests may poll wall-clock deadlines while real goroutines converge,
// but still may not use the global rand or bare synchronization
// sleeps.
func TestPolling(t *testing.T) {
	deadline := time.Now().Add(time.Second) // wall-clock polling in tests: fine
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond) // poll interval inside a loop: fine
		break
	}
	time.Sleep(20 * time.Millisecond) // want `constant time\.Sleep used as synchronization`
	if rand.Intn(3) == 0 {            // want `global math/rand\.Intn is seeded from process entropy`
		t.Log("unlucky")
	}
}
