module detrandtest

go 1.22
