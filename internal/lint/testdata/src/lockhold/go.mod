module lockholdtest

go 1.22
