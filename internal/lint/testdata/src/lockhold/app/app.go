package app

import (
	"sync"
	"time"

	"lockholdtest/wire"
)

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// acrossRPC holds the mutex over a wire round trip.
func acrossRPC(s *state, c *wire.Client) {
	s.mu.Lock()
	_, _ = c.Call("x") // want `blocking call to \(\*wire\.Client\)\.Call while s\.mu is held by s\.mu\.Lock\(\)`
	s.mu.Unlock()
}

// acrossRPCDeferred: a deferred unlock holds the lock across the call
// just the same.
func acrossRPCDeferred(s *state, c *wire.Client) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = c.Call("x") // want `blocking call to \(\*wire\.Client\)\.Call while s\.rw is held by s\.rw\.RLock\(\)`
}

// acrossChan: channel operations block indefinitely with no reader.
func acrossChan(s *state, ch chan int) {
	s.mu.Lock()
	ch <- 1    // want `channel send while s\.mu is held`
	s.n = <-ch // want `channel receive while s\.mu is held`
	s.mu.Unlock()
}

// acrossSleep under a deferred unlock.
func acrossSleep(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
}

// waitUnder: Wait parks the goroutine while everyone else contends.
func waitUnder(s *state, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `\(\*sync\.WaitGroup\)\.Wait while s\.mu is held`
}

// blockingSelect: no default clause means this can park forever.
func blockingSelect(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while s\.mu is held`
	case v := <-ch:
		s.n = v
	}
}

// earlyReturn leaves the function with the mutex still held.
func earlyReturn(s *state, bad bool) {
	s.mu.Lock()
	if bad {
		return // want `return while s\.mu is held by s\.mu\.Lock\(\) with no Unlock on this path`
	}
	s.mu.Unlock()
}

// neverUnlocked: no release anywhere in the function.
func neverUnlocked(s *state) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) has no matching Unlock in this function \(use defer\)`
	return s.n  // want `return while s\.mu is held`
}

// releasedFirst is fine: the lock is dropped before the round trip.
func releasedFirst(s *state, c *wire.Client) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	if n > 0 {
		_, _ = c.Call("x")
	}
}

// nonBlockingSelect is fine: the default clause makes it a poll.
func nonBlockingSelect(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// branchRelease is fine: every path unlocks before returning.
func branchRelease(s *state, bad bool) {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// goroutineUnderLock is fine: the spawned goroutine's channel send
// does not run while the caller holds the lock.
func goroutineUnderLock(s *state, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { ch <- s.n }()
}

// nonRPCCall is fine: Describe is not a wire round trip.
func nonRPCCall(s *state, c *wire.Client) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Describe()
}
