// Package wire is a stand-in for ace/internal/wire.
package wire

type Client struct{}

func (c *Client) Call(cmd string) (string, error) { return cmd, nil }

// Describe is not an RPC name, so it does not count as blocking.
func (c *Client) Describe() string { return "client" }
