// Package wire is a stand-in for ace/internal/wire.
package wire

import "suppresstest/cmdlang"

type Client struct{}

func (c *Client) Call(cmd string) (string, error) { return cmd, nil }

func (c *Client) Close() error { return nil }

func (c *Client) Send(cmd *cmdlang.CmdLine) error { return nil }

type Conn struct{}

func ReadFrame(c *Conn) ([]byte, error) { return nil, nil }
