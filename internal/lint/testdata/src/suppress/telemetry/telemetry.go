// Package telemetry is a stand-in for ace/internal/telemetry.
package telemetry

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

type Counter struct{}

func (c *Counter) Add(n int64) {}
