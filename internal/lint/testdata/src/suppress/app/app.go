package app

import "suppresstest/wire"

// trailingSuppression silences the finding on its own line.
func trailingSuppression(c *wire.Client) {
	c.Close() //acelint:ignore droppederr best-effort teardown probe, the error is uninteresting
}

// standaloneSuppression silences the finding on the next line.
func standaloneSuppression(c *wire.Client) {
	//acelint:ignore droppederr fire-and-forget wakeup, failure is retried by the scheduler
	c.Call("wake")
}

// notSuppressed still reports: the suppression in the functions above
// covers exactly one line each.
func notSuppressed(c *wire.Client) {
	c.Close() // want `error return of \(\*wire\.Client\)\.Close discarded`
}

// unusedSuppression names a check that finds nothing here, which is
// itself an error so stale pragmas cannot accumulate.
func unusedSuppression(c *wire.Client) error {
	//acelint:ignore lockhold no lock is held anywhere near this call
	// want-1 `unused acelint:ignore for "lockhold": no such finding here`
	return c.Close()
}

// dispatchBounded spawns in a dispatch path bounded by a semaphore
// instead of the flow limiter; the boundedspawn suppression records
// why the spawn is safe.
func dispatchBounded(c *wire.Client, sem chan struct{}) {
	for i := 0; i < 4; i++ {
		select {
		case sem <- struct{}{}:
		default:
			continue
		}
		//acelint:ignore boundedspawn fan-out is bounded by the sem channel above
		go func() {
			defer func() { <-sem }()
			//acelint:ignore droppederr best-effort fan-out, failures counted elsewhere
			c.Call("notify")
		}()
	}
}

// malformed directives: a missing reason and an unknown check name.
func malformed(c *wire.Client) error {
	//acelint:ignore droppederr
	// want-1 `acelint:ignore droppederr needs a reason`
	//acelint:ignore nosuchcheck because I said so
	// want-1 `acelint:ignore names unknown check "nosuchcheck"`
	return c.Close()
}
