package app

import (
	"context"

	"suppresstest/cmdlang"
	"suppresstest/telemetry"
	"suppresstest/wire"
)

// trailingSuppression silences the finding on its own line.
func trailingSuppression(c *wire.Client) {
	c.Close() //acelint:ignore droppederr best-effort teardown probe, the error is uninteresting
}

// standaloneSuppression silences the finding on the next line.
func standaloneSuppression(c *wire.Client) {
	//acelint:ignore droppederr fire-and-forget wakeup, failure is retried by the scheduler
	c.Call("wake")
}

// notSuppressed still reports: the suppression in the functions above
// covers exactly one line each.
func notSuppressed(c *wire.Client) {
	c.Close() // want `error return of \(\*wire\.Client\)\.Close discarded`
}

// unusedSuppression names a check that finds nothing here, which is
// itself an error so stale pragmas cannot accumulate.
func unusedSuppression(c *wire.Client) error {
	//acelint:ignore lockhold no lock is held anywhere near this call
	// want-1 `unused acelint:ignore for "lockhold": no such finding here`
	return c.Close()
}

// dispatchBounded spawns in a dispatch path bounded by a semaphore
// instead of the flow limiter; the boundedspawn suppression records
// why the spawn is safe.
func dispatchBounded(c *wire.Client, sem chan struct{}) {
	for i := 0; i < 4; i++ {
		select {
		case sem <- struct{}{}:
		default:
			continue
		}
		//acelint:ignore boundedspawn fan-out is bounded by the sem channel above
		go func() {
			defer func() { <-sem }()
			//acelint:ignore droppederr best-effort fan-out, failures counted elsewhere
			c.Call("notify")
		}()
	}
}

// phantomPing exercises a comma-separated check list: the single line
// below trips both droppederr (bare discard of Send's error) and
// verbconformance ("phantom" is registered nowhere), and one directive
// silences both.
func phantomPing(c *wire.Client) {
	//acelint:ignore droppederr,verbconformance diagnostic ping for a verb served by an out-of-tree daemon
	c.Send(cmdlang.New("phantom"))
}

// Probe reaches a wire read with no deadline; the caller bounds the
// probe with a process watchdog instead, which the suppression records.
//
//acelint:ignore deadlinecheck probe is bounded by the caller's process watchdog, not a conn deadline
func Probe(ctx context.Context, conn *wire.Conn) error {
	_, err := wire.ReadFrame(conn)
	return err
}

// legacyNotifier fans events out for the process lifetime; the loop is
// intentionally unkillable and torn down only at exit.
func legacyNotifier(events chan int) {
	//acelint:ignore goroutineleak process-lifetime fan-out, torn down only at process exit
	go func() {
		for {
			<-events
		}
	}()
}

// legacyMetric keeps a dashboard's historical name until the next
// breaking release.
func legacyMetric(tel *telemetry.Registry) {
	//acelint:ignore metricnames legacy dashboard series name, renamed at the next breaking release
	tel.Counter("Legacy.Requests").Add(1)
}

// malformed directives: a missing reason and an unknown check name.
func malformed(c *wire.Client) error {
	//acelint:ignore droppederr
	// want-1 `acelint:ignore droppederr needs a reason`
	//acelint:ignore nosuchcheck because I said so
	// want-1 `acelint:ignore names unknown check "nosuchcheck"`
	return c.Close()
}
