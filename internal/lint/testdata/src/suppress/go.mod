module suppresstest

go 1.22
