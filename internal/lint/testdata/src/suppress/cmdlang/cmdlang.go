// Package cmdlang is a stand-in for ace/internal/cmdlang.
package cmdlang

type CmdLine struct{}

func New(verb string) *CmdLine { return &CmdLine{} }
