// Package telemetry is a stand-in for ace/internal/telemetry.
package telemetry

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

type Counter struct{}

func (c *Counter) Add(n int64) {}

type Gauge struct{}

func (g *Gauge) Set(n int64) {}

type Histogram struct{}

func (h *Histogram) Observe(n int64) {}

// Snapshot reads share the method names but not the Registry receiver;
// they are not registrations.
type Snapshot struct{}

func (s *Snapshot) Counter(name string) int64 { return 0 }
