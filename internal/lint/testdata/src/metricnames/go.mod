module metricnamestest

go 1.22
