// Package app exercises the telemetry naming contract.
package app

import "metricnamestest/telemetry"

// MetricRequests counts dispatched requests.
const MetricRequests = "app.requests"

// MetricDispatchPrefix is the per-verb histogram family prefix.
const MetricDispatchPrefix = "app.dispatch."

func conforming(tel *telemetry.Registry, verb string) {
	tel.Counter(MetricRequests).Add(1)
	tel.Histogram(MetricDispatchPrefix + verb).Observe(1)
}

// sharedConst registers the same constant from a second call site:
// one declaration, many sites — fine.
func sharedConst(tel *telemetry.Registry) {
	tel.Counter(MetricRequests).Add(1)
}

func violations(tel *telemetry.Registry, name string) {
	tel.Counter("app.queue_depth.").Add(1)      // want `metric name "app.queue_depth." does not match`
	tel.Gauge("UpperCase.Name").Set(1)          // want `metric name "UpperCase.Name" does not match`
	tel.Counter(name).Add(1)                    // want `metric name must be a string constant`
	tel.Histogram("dispatch" + name).Observe(1) // want `metric family prefix "dispatch" must be lowercase dotted segments ending in`
}

// duplicated spells app.requests from an independent literal: two
// declarations silently merge into one series.
func duplicated(tel *telemetry.Registry) {
	tel.Counter("app.requests").Add(1) // want `metric "app.requests" is registered from a second independent declaration`
}

// kindClash registers a gauge under a name already serving a counter.
const metricDepth = "app.depth"

func kindClash(tel *telemetry.Registry) {
	tel.Counter(metricDepth).Add(1)
	tel.Gauge(metricDepth).Set(1) // want `metric "app.depth" is registered as both Counter and Gauge`
}

// snapshotRead shares the method name but not the Registry receiver.
func snapshotRead(s *telemetry.Snapshot, name string) int64 {
	return s.Counter(name)
}
