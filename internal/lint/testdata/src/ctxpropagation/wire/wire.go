// Package wire is a stand-in for ace/internal/wire: a client whose
// Call has a context-aware sibling.
package wire

import "context"

type Client struct{}

func (c *Client) Call(cmd string) (string, error) { return cmd, nil }

func (c *Client) CallContext(ctx context.Context, cmd string) (string, error) { return cmd, nil }

// Ping has no *Context sibling, so calling it with a context in scope
// is fine.
func (c *Client) Ping() error { return nil }
