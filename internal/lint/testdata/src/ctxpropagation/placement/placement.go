// Package placement is a stand-in for ace/internal/pstore/placement:
// Cache.Get is the allowlisted cached read whose GetContext sibling
// is a genuinely different (fetching) operation, not a context-aware
// twin.
package placement

import "context"

type Map struct{ Epoch uint64 }

type Cache struct{ m *Map }

// Get returns the cached map without touching the network.
func (c *Cache) Get() (*Map, bool) { return c.m, c.m != nil }

// GetContext returns the cached map or fetches it.
func (c *Cache) GetContext(ctx context.Context) (*Map, error) {
	if c.m == nil {
		c.m = &Map{Epoch: 1}
	}
	return c.m, ctx.Err()
}
