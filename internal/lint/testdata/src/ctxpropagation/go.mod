module ctxproptest

go 1.22
