// Package daemon is a stand-in for ace/internal/daemon: the handler
// Ctx with TraceContext and a pool with context-aware variants.
package daemon

import "context"

type Ctx struct{}

func (c *Ctx) TraceContext() context.Context { return context.Background() }

type Pool struct{}

func (p *Pool) Send(addr, cmd string) error { return nil }

func (p *Pool) SendContext(ctx context.Context, addr, cmd string) error { return nil }

func (p *Pool) Call(addr, cmd string) (string, error) { return cmd, nil }

func (p *Pool) CallContext(ctx context.Context, addr, cmd string) (string, error) { return cmd, nil }
