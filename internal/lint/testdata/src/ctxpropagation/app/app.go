package app

import (
	"context"

	"ctxproptest/daemon"
	"ctxproptest/placement"
	"ctxproptest/wire"
)

// withStdContext receives a context.Context: plain variants drop it.
func withStdContext(ctx context.Context, c *wire.Client) {
	_, _ = c.Call("ping") // want `\(\*wire\.Client\)\.Call drops the in-scope context; use CallContext\(ctx, \.\.\.\)`
	_, _ = c.CallContext(ctx, "ping")
	_ = c.Ping() // no *Context sibling: nothing to propagate
}

// handler receives a *daemon.Ctx: the suggestion routes through
// TraceContext().
func handler(ctx *daemon.Ctx, p *daemon.Pool) error {
	if err := p.Send("asd", "register"); err != nil { // want `\(\*daemon\.Pool\)\.Send drops the in-scope context; use SendContext\(ctx\.TraceContext\(\), \.\.\.\)`
		return err
	}
	return p.SendContext(ctx.TraceContext(), "asd", "register")
}

// closure: a literal with no context parameter of its own still
// closes over the enclosing one.
func closure(ctx context.Context, p *daemon.Pool) func() error {
	return func() error {
		return p.Send("a", "b") // want `use SendContext\(ctx, \.\.\.\)`
	}
}

// ownScope: the literal's own context parameter is the one to pass.
func ownScope(outer context.Context, p *daemon.Pool) func(context.Context) error {
	return func(inner context.Context) error {
		return p.Send("a", "b") // want `use SendContext\(inner, \.\.\.\)`
	}
}

// noContext has nothing in scope; the plain variant is correct.
func noContext(c *wire.Client) {
	_, _ = c.Call("ping")
}

// blankCtx cannot reference its context parameter, so there is
// nothing to pass.
func blankCtx(_ *daemon.Ctx, c *wire.Client) {
	_, _ = c.Call("ping")
}

// allowlisted: placement.Cache.Get is the non-blocking cached read,
// not a context-dropping twin of GetContext — the analyzer's
// allowlist exempts it even with a context in scope. The miss branch
// still propagates ctx into the fetching slow path.
func allowlisted(ctx context.Context, c *placement.Cache) error {
	if _, ok := c.Get(); ok { // no finding: allowlisted fast path
		return nil
	}
	_, err := c.GetContext(ctx)
	return err
}
