module verbconftest

go 1.22
