// Package storage holds the failure path of the renew handler: the
// not_found emission is only visible to verbconformance through the
// cross-package call graph.
package storage

import "verbconftest/cmdlang"

func Lookup(c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	if c == nil {
		return cmdlang.Fail(cmdlang.CodeNotFound, "no such lease"), nil
	}
	return cmdlang.OK(), nil
}
