// Package cmdlang is a stand-in for ace/internal/cmdlang.
package cmdlang

type Kind int

const (
	KindWord Kind = iota
	KindString
	KindInt
)

type ArgSpec struct {
	Name     string
	Kind     Kind
	Required bool
	Doc      string
}

type CommandSpec struct {
	Name       string
	Doc        string
	Args       []ArgSpec
	AllowExtra bool
}

type CmdLine struct{}

func New(verb string) *CmdLine { return &CmdLine{} }
func OK() *CmdLine             { return &CmdLine{} }

func (c *CmdLine) SetWord(key, v string) *CmdLine      { return c }
func (c *CmdLine) SetString(key, v string) *CmdLine    { return c }
func (c *CmdLine) SetInt(key string, v int64) *CmdLine { return c }
func (c *CmdLine) Str(key, def string) string          { return def }

const (
	CodeNotFound = "not_found"
	CodeConflict = "conflict"
)

func Fail(code, msg string) *CmdLine { return &CmdLine{} }
func FailErr(err error) *CmdLine     { return &CmdLine{} }
func Busy(msg string) *CmdLine       { return &CmdLine{} }

type RemoteError struct {
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

func IsRemoteCode(err error, code string) bool {
	re, ok := err.(*RemoteError)
	return ok && re.Code == code
}
