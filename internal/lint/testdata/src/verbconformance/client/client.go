// Package client invokes the server's verbs; the drift cases below are
// only detectable by joining this package's uses with the registry
// extracted from the server package.
package client

import (
	"verbconftest/cmdlang"
	"verbconftest/daemon"
)

// Renew checks one reply code the handler really emits (via the
// storage package) and one it never does.
func Renew(p *daemon.Pool, addr string) error {
	_, err := p.Call(addr, cmdlang.New("renew").SetInt("lease", 10))
	if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		return nil // emitted by storage.Lookup, two packages away
	}
	if cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) { // want `caller checks reply code "conflict" on verb "renew", but no handler of "renew" ever emits it`
		return err
	}
	return err
}

// Ghost is the injected protocol drift: nothing registers this verb.
func Ghost(p *daemon.Pool, addr string) {
	_, _ = p.Call(addr, cmdlang.New("ghost")) // want `verb "ghost" is called here but no CommandSpec anywhere registers it`
}

// Status exercises declared and undeclared argument keys, through a
// chain and through a command-typed variable.
func Status(p *daemon.Pool, addr string) {
	_, _ = p.Call(addr, cmdlang.New("status").SetWord("level", "verbose"))
	cmd := cmdlang.New("status")
	cmd.SetWord("verbose", "on") // want `verb "status" has no declared argument "verbose"`
	_, _ = p.Call(addr, cmd)
}

// Annotate may set anything: its spec opts into AllowExtra.
func Annotate(p *daemon.Pool, addr string) {
	_, _ = p.Call(addr, cmdlang.New("annotate").SetString("note", "free-form"))
}

// Watch subscribes with the callback verb in the method argument: the
// dispatcher invokes onRenewed dynamically, so its registration is not
// dead surface.
func Watch(p *daemon.Pool, addr string) error {
	return daemon.Subscribe(p, addr, "renew", "watcher", "host:1", "onRenewed")
}
