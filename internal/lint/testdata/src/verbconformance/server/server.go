// Package server registers the verb surface the client package calls.
package server

import (
	"verbconftest/cmdlang"
	"verbconftest/daemon"
	"verbconftest/storage"
)

func Install(d *daemon.Daemon) {
	d.Handle(cmdlang.CommandSpec{
		Name: "renew",
		Args: []cmdlang.ArgSpec{{Name: "lease", Kind: cmdlang.KindInt, Required: true}},
	}, HandleRenew)

	d.Handle(cmdlang.CommandSpec{
		Name: "status",
		Args: []cmdlang.ArgSpec{{Name: "level", Kind: cmdlang.KindWord}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK(), nil
	})

	d.Handle(cmdlang.CommandSpec{Name: "annotate", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK(), nil
		})

	d.Handle(cmdlang.CommandSpec{Name: "onRenewed", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return nil, nil
		})

	d.Handle(cmdlang.CommandSpec{Name: "orphan"}, // want `verb "orphan" is registered here but never invoked by any in-tree caller`
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK(), nil
		})
}

// HandleRenew is a named handler so the driver test can look up its
// object and assert the verb.emits fact crossed the package boundary.
func HandleRenew(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	return storage.Lookup(c)
}
