// Package daemon is a stand-in for ace/internal/daemon.
package daemon

import "verbconftest/cmdlang"

type Ctx struct{}

type Handler func(ctx *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error)

type Daemon struct{}

func (d *Daemon) Handle(spec cmdlang.CommandSpec, h Handler) {}

type Pool struct{}

func (p *Pool) Call(addr string, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	return nil, nil
}

// Subscribe mirrors the real notification helper: the method argument
// names the callback verb the dispatcher invokes dynamically.
func Subscribe(p *Pool, addr, cmd, subscriber, subscriberAddr, method string) error {
	return nil
}
