module boundedspawntest

go 1.22
