// Package flow is a stand-in for ace/internal/flow.
package flow

// Controller is the admission gate stand-in.
type Controller struct{}

// AdmitConn gates the accept loop.
func (c *Controller) AdmitConn() bool { return true }

// Admit gates the dispatch path.
func (c *Controller) Admit(principal string) (func(), error) { return func() {}, nil }
