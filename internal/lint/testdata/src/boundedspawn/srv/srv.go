// Package srv exercises the boundedspawn analyzer: goroutines spawned
// in accept/dispatch paths must be gated by the flow limiter.
package srv

import "boundedspawntest/flow"

type conn struct{}

type server struct {
	fl  *flow.Controller
	sem chan struct{}
}

func (s *server) accept() conn { return conn{} }

func (s *server) handle(c conn) {}

// acceptLoop spawns per-connection work with no admission gate.
func (s *server) acceptLoop() {
	for {
		c := s.accept()
		go s.handle(c) // want `acceptLoop spawns a goroutine without consulting the flow limiter`
	}
}

// acceptLoopGated consults the flow controller, so its spawn is fine.
func (s *server) acceptLoopGated() {
	for {
		c := s.accept()
		if !s.fl.AdmitConn() {
			continue
		}
		go s.handle(c)
	}
}

// dispatchAll fans out without a gate: flagged once per go statement.
func (s *server) dispatchAll(cs []conn) {
	for _, c := range cs {
		c := c
		go func() { // want `dispatchAll spawns a goroutine without consulting the flow limiter`
			s.handle(c)
		}()
	}
}

// dispatchAdmitted is gated through flow.Controller.Admit.
func (s *server) dispatchAdmitted(cs []conn) {
	for _, c := range cs {
		done, err := s.fl.Admit("peer")
		if err != nil {
			continue
		}
		c := c
		go func() {
			defer done()
			s.handle(c)
		}()
	}
}

// workerPool is neither an accept nor a dispatch path, so its spawns
// are out of scope.
func (s *server) workerPool(cs []conn) {
	for _, c := range cs {
		c := c
		go s.handle(c)
	}
}
