// Package wire is a stand-in for ace/internal/wire.
package wire

type Client struct{}

func (c *Client) Call(cmd string) (string, error) { return cmd, nil }

func (c *Client) Send(cmd string) error { return nil }

func (c *Client) Close() error { return nil }

// Closed returns no error; discarding its result is not an error drop.
func (c *Client) Closed() bool { return false }
