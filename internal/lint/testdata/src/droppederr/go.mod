module droppederrtest

go 1.22
