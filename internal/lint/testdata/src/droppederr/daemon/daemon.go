// Package daemon is a stand-in for ace/internal/daemon.
package daemon

type Pool struct{}

func (p *Pool) Call(addr, cmd string) (string, error) { return cmd, nil }

// launder is unexported: not part of the API surface the check guards.
func launder(err error) error { return err }

// Helper calls launder so it is not unused.
func Helper() error { return launder(nil) }
