// Package pstore is a stand-in for ace/internal/pstore.
package pstore

type Client struct{}

func (c *Client) Get(path string) (value string, ok bool, err error) { return "", false, nil }

func (c *Client) Put(path, value string) (uint64, error) { return 0, nil }
