package app

import "droppederrtest/wire"

// Test code is exempt: discarding errors in tests is the test
// author's call.
func helperForTests(c *wire.Client) {
	c.Call("x")
	defer c.Close()
}
