package app

import (
	"droppederrtest/daemon"
	"droppederrtest/pstore"
	"droppederrtest/wire"
)

// bareCalls discard the only failure signal the transport has.
func bareCalls(c *wire.Client, p *daemon.Pool) {
	c.Call("x")               // want `error return of \(\*wire\.Client\)\.Call discarded`
	p.Call("asd", "register") // want `error return of \(\*daemon\.Pool\)\.Call discarded`
	c.Closed()                // no error in the results: nothing to drop
}

// deferAndGo drop errors through defer and go statements.
func deferAndGo(c *wire.Client, p *daemon.Pool) {
	defer c.Close()            // want `error return of \(\*wire\.Client\)\.Close discarded by defer`
	go p.Call("asd", "lookup") // want `error return of \(\*daemon\.Pool\)\.Call discarded by go`
}

// blanks assign the error result to _.
func blanks(c *wire.Client, p *pstore.Client) {
	_ = c.Send("x")           // want `error return of \(\*wire\.Client\)\.Send assigned to _`
	v, _, _ := p.Get("k")     // want `error return of \(\*pstore\.Client\)\.Get assigned to _`
	reply, _ := p.Put("k", v) // want `error return of \(\*pstore\.Client\)\.Put assigned to _`
	_ = reply
}

// closeAcknowledged: `_ = Close()` is the explicit teardown form.
func closeAcknowledged(c *wire.Client) {
	_ = c.Close()
}

// handled is the correct shape everywhere else.
func handled(c *wire.Client, p *pstore.Client) error {
	if err := c.Send("x"); err != nil {
		return err
	}
	v, ok, err := p.Get("k")
	if err != nil || !ok {
		return err
	}
	_, err = p.Put("k", v)
	return err
}
