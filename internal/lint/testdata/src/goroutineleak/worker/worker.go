// Package worker hides its infinite loop one call away from the spawn
// site: only the call graph sees the leak.
package worker

type State struct{}

func Run(s *State) {
	spin(s)
}

func spin(s *State) {
	for {
		step(s)
	}
}

func step(s *State) {}
