// Package flow is a stand-in for ace/internal/flow: spawns on paths
// that consult the admission limiter are bounded by construction.
package flow

type Slot struct{}

func Acquire() (*Slot, error) { return &Slot{}, nil }

func (s *Slot) Release() {}
