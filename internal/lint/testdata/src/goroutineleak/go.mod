module goroutineleaktest

go 1.22
