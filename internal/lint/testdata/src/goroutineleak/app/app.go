// Package app exercises the goroutine shutdown-edge analysis.
package app

import (
	"context"
	"sync"

	"goroutineleaktest/flow"
	"goroutineleaktest/worker"
)

type Server struct {
	wg     sync.WaitGroup
	stop   chan struct{}
	events chan int
	orphan chan int
}

func tick() {}

// StartLeaky spawns a loop with no return, no shutdown receive, and no
// join: the canonical leak.
func (s *Server) StartLeaky() {
	go func() { // want `goroutine func literal in \(\*app\.Server\)\.StartLeaky loops forever with no reachable shutdown edge`
		for {
			tick()
		}
	}()
}

// StartWorker spawns a named function whose infinite loop sits one
// call deeper, in another package.
func (s *Server) StartWorker(w *worker.State) {
	go worker.Run(w) // want `goroutine worker.Run \(via worker.spin\) loops forever with no reachable shutdown edge`
}

// StartOrphanRange ranges over a channel nothing ever closes.
func (s *Server) StartOrphanRange() {
	go func() { // want `goroutine func literal in \(\*app\.Server\)\.StartOrphanRange loops forever with no reachable shutdown edge`
		for range s.orphan {
		}
	}()
}

// StartCtx exits when the context is cancelled: not a leak.
func (s *Server) StartCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ev := <-s.events:
				_ = ev
			}
		}
	}()
}

// StartStopChan ranges over a channel Close closes: the close is the
// shutdown edge.
func (s *Server) StartStopChan() {
	go func() {
		for range s.events {
			tick()
		}
	}()
}

// StartJoined never exits on its own, but the goroutine is joined by
// the WaitGroup Close waits on: its lifecycle is the joiner's problem.
func (s *Server) StartJoined() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			tick()
		}
	}()
}

// StartBounded consults the flow limiter before spawning: bounded and
// request-scoped by construction.
func (s *Server) StartBounded() {
	slot, err := flow.Acquire()
	if err != nil {
		return
	}
	go func() {
		defer slot.Release()
		for {
			tick()
		}
	}()
}

// Close is the shutdown edge for StartStopChan and the join for
// StartJoined.
func (s *Server) Close() {
	close(s.events)
	close(s.stop)
	s.wg.Wait()
}
