// Package chaos is healthy: its findings must still surface even
// though a sibling package fails to type-check.
package chaos

import "time"

func Tick() time.Time {
	return time.Now() // the detrand violation the driver test expects
}
