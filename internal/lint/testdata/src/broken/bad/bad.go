// Package bad fails to type-check: the driver must record the error
// and keep analyzing the rest of the tree.
package bad

func Broken() int {
	return undefinedIdentifier + 1
}
