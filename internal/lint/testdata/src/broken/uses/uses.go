// Package uses imports the broken package, so its own type checking
// is degraded too; the driver must survive both.
package uses

import "brokentest/bad"

func Depends() int { return bad.Broken() }
