module brokentest

go 1.22
