module verbregtest

go 1.22
