// Package daemon is a stand-in for ace/internal/daemon.
package daemon

import "verbregtest/cmdlang"

type CmdLine struct{}

type Handler func(cmd *CmdLine) (*CmdLine, error)

type Daemon struct{}

func (d *Daemon) Handle(spec cmdlang.CommandSpec, h Handler) {}
