// Package cmdlang is a stand-in for ace/internal/cmdlang.
package cmdlang

type ArgSpec struct {
	Name     string
	Required bool
}

type CommandSpec struct {
	Name string
	Args []ArgSpec
	Doc  string
}
