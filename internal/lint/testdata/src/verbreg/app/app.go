package app

import (
	"verbregtest/cmdlang"
	"verbregtest/daemon"
)

const verbStatus = "status"

func register(d *daemon.Daemon, h daemon.Handler) {
	d.Handle(cmdlang.CommandSpec{Name: "play"}, h)
	d.Handle(cmdlang.CommandSpec{Name: verbStatus}, h) // constant names resolve through folding
	d.Handle(cmdlang.CommandSpec{Doc: "nameless"}, h)  // want `d\.Handle registers a handler with no command name`
	d.Handle(cmdlang.CommandSpec{Name: ""}, h)         // want `CommandSpec with empty Name declares no semantics entry`
	d.Handle(cmdlang.CommandSpec{Name: "bad verb"}, h) // want `command name "bad verb" is not a legal cmdlang word`
	d.Handle(cmdlang.CommandSpec{Name: "ok"}, h)       // want `command name "ok" collides with the reply encoders`
	d.Handle(cmdlang.CommandSpec{Name: "play"}, h)     // want `duplicate registration of verb "play" on d`
}

// registerOther is a different daemon in a different function:
// reusing the verb here is not a duplicate.
func registerOther(d *daemon.Daemon, h daemon.Handler) {
	d.Handle(cmdlang.CommandSpec{Name: "play"}, h)
}

// declaredSpecs: spec literals outside Handle calls get the same
// well-formedness checks.
var declaredSpecs = []cmdlang.CommandSpec{
	{Name: "stop"},
	{Name: "fail"},   // want `command name "fail" collides with the reply encoders`
	{Name: "9lives"}, // want `command name "9lives" is not a legal cmdlang word`
}
