module deadlinetest

go 1.22
