// Command demo is a main-package entry point reaching a blocking
// frame write with no deadline.
package main

import "deadlinetest/wire"

func main() { // want `entry point demo.main can reach a blocking call with no deadline on the path: demo.main → wire.WriteFrame`
	c := &wire.Conn{}
	if err := wire.WriteFrame(c, nil); err != nil {
		panic(err)
	}
}
