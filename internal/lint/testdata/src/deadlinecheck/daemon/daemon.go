// Package daemon is a stand-in for ace/internal/daemon.
package daemon

import "deadlinetest/cmdlang"

type Ctx struct{}

type Handler func(ctx *Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error)

type Daemon struct{}

func (d *Daemon) Handle(spec cmdlang.CommandSpec, h Handler) {}
