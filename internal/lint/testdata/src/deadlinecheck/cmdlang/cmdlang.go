// Package cmdlang is a stand-in for ace/internal/cmdlang.
package cmdlang

type CommandSpec struct {
	Name string
	Doc  string
}

type CmdLine struct{}
