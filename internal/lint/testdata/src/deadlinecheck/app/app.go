// Package app exercises the deadline-propagation entry kinds: exported
// context-taking API, verb handlers, and (in ../demo) a main function.
package app

import (
	"context"
	"time"

	"deadlinetest/cmdlang"
	"deadlinetest/daemon"
	"deadlinetest/wire"
)

// Exposed reaches the frame write through a helper with no deadline
// anywhere on the path; the finding lands on the body's opening brace.
func Exposed(ctx context.Context, c *wire.Conn) error { // want `exported app.Exposed can reach a blocking call with no deadline on the path: app.Exposed → app.helper → wire.WriteFrame`
	return helper(c)
}

func helper(c *wire.Conn) error {
	return wire.WriteFrame(c, nil)
}

// Guarded installs a deadline before descending: its exposure is
// capped, so nothing is reported.
func Guarded(ctx context.Context, c *wire.Conn) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = ctx
	return helper(c)
}

// unexportedReach is exposed but not an entry point: installing the
// deadline is its callers' responsibility (Guarded does).
func unexportedReach(c *wire.Conn) error {
	return helper(c)
}

// Install registers a verb whose handler blocks on a frame read with
// no deadline: handlers are entry points.
func Install(d *daemon.Daemon, c *wire.Conn) {
	d.Handle(cmdlang.CommandSpec{Name: "pull"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { // want `handler for verb "pull" in func literal in app.Install can reach a blocking call`
			_, err := wire.ReadFrame(c)
			return nil, err
		})

	d.Handle(cmdlang.CommandSpec{Name: "poke"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			_, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_, err := wire.ReadFrame(c)
			return nil, err
		})
}

// StartReader spawns the blocking read loop: a go edge never blocks
// the spawner, so the exported entry is not exposed.
func StartReader(ctx context.Context, c *wire.Conn) {
	go func() {
		for {
			if _, err := wire.ReadFrame(c); err != nil {
				return
			}
		}
	}()
}
