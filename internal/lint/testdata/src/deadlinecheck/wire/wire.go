// Package wire is a stand-in for ace/internal/wire: ReadFrame and
// WriteFrame are deadline sinks by name.
package wire

type Frame struct{}

type Conn struct{}

func ReadFrame(c *Conn) (*Frame, error) { return &Frame{}, nil }

func WriteFrame(c *Conn, f *Frame) error { return nil }
