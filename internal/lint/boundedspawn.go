package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BoundedSpawn flags `go` statements in accept/dispatch paths that
// bypass the flow admission controller. The daemon shell's overload
// story depends on every per-request goroutine being admitted: a
// spawn in an accept loop or dispatch path that neither consults
// ace/internal/flow nor is otherwise bounded recreates exactly the
// goroutine-per-request amplifier the flow subsystem removed.
//
// The heuristic: any function whose name contains "accept" or
// "dispatch" (case-insensitive) is an admission boundary. A `go`
// statement inside one is flagged unless the function also calls into
// a flow package (flow.Controller.Admit, AdmitConn, …), which marks
// the spawn as limiter-gated. Spawns bounded some other way (a
// semaphore channel, a fixed worker pool) are suppressed explicitly:
//
//	//acelint:ignore boundedspawn fan-out is bounded by notifySem
var BoundedSpawn = &Analyzer{
	Name: "boundedspawn",
	Doc:  "goroutine spawned in an accept/dispatch path without consulting the flow limiter",
	Run:  runBoundedSpawn,
}

func runBoundedSpawn(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := strings.ToLower(fd.Name.Name)
			if !strings.Contains(name, "accept") && !strings.Contains(name, "dispatch") {
				continue
			}
			if callsFlowPackage(pass, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pass.Reportf(g.Pos(),
					"%s spawns a goroutine without consulting the flow limiter; admit the work (flow.Controller) or bound the spawn and suppress",
					fd.Name.Name)
				return true
			})
		}
	}
}

// callsFlowPackage reports whether any call in body resolves into a
// flow package — the marker that the function's spawns are
// limiter-gated.
func callsFlowPackage(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pass.calleeFunc(call); fn != nil && isFlowPackage(fn.Pkg()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isFlowPackage matches the real ace/internal/flow package and the
// golden tests' stand-in "flow" modules.
func isFlowPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "ace/internal/flow" || strings.HasSuffix(path, "/flow") || path == "flow"
}
