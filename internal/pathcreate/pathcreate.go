// Package pathcreate implements Automatic Path Creation — the Ninja
// concept the ACE report singles out as worth adopting (§8.1, §9:
// "Current developments in ACE call upon programmers to hard code
// what services to look for … it may be advantageous to further
// investigate and integrate … Ninja's Automatic Path Creation").
//
// Given a source and a destination data format, the planner discovers
// the converter services currently alive (ASD class lookup), collects
// their advertised capabilities, finds the shortest chain of
// conversions connecting the formats, and can execute a payload
// through that chain — composing simple services into a complex
// capability without any hard-coded wiring, exactly the "path"
// abstraction of Fig 15 built automatically.
package pathcreate

import (
	"encoding/hex"
	"fmt"
	"strings"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/media"
)

// Hop is one conversion step through a specific converter service.
type Hop struct {
	Service string
	Addr    string
	From    string
	To      string
}

// Path is an executable chain of hops.
type Path []Hop

// String renders the path ("mulaw -[conv_a]-> raw -[conv_b]-> mpegsim").
func (p Path) String() string {
	if len(p) == 0 {
		return "(identity)"
	}
	var b strings.Builder
	b.WriteString(p[0].From)
	for _, h := range p {
		fmt.Fprintf(&b, " -[%s]-> %s", h.Service, h.To)
	}
	return b.String()
}

// Planner discovers converters and plans conversion paths.
type Planner struct {
	pool    *daemon.Pool
	asdAddr string
}

// NewPlanner builds a planner over the environment's directory.
func NewPlanner(pool *daemon.Pool, asdAddr string) *Planner {
	return &Planner{pool: pool, asdAddr: asdAddr}
}

// edge is one advertised conversion at one service.
type edge struct {
	service, addr string
	from, to      string
}

// discover queries the ASD for live converter services and collects
// their capability advertisements.
func (p *Planner) discover() ([]edge, error) {
	reply, err := p.pool.Call(p.asdAddr, cmdlang.New(daemon.CmdLookup).
		SetString("class", media.ClassConverter))
	if err != nil {
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			return nil, fmt.Errorf("pathcreate: no converter services alive")
		}
		return nil, err
	}
	names := reply.Strings("names")
	addrs := reply.Strings("addrs")
	var edges []edge
	for i, name := range names {
		if i >= len(addrs) {
			break
		}
		caps, err := p.pool.Call(addrs[i], cmdlang.New("capabilities"))
		if err != nil {
			continue // converter died between lookup and query
		}
		froms := caps.Strings("from")
		tos := caps.Strings("to")
		for j := range froms {
			if j >= len(tos) {
				break
			}
			edges = append(edges, edge{service: name, addr: addrs[i], from: froms[j], to: tos[j]})
		}
	}
	return edges, nil
}

// Plan finds the shortest conversion chain from one format to
// another across the currently alive converters (BFS over formats).
func (p *Planner) Plan(from, to string) (Path, error) {
	if from == to {
		return Path{}, nil
	}
	edges, err := p.discover()
	if err != nil {
		return nil, err
	}
	type state struct {
		format string
		path   Path
	}
	visited := map[string]bool{from: true}
	frontier := []state{{format: from}}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range edges {
			if e.from != cur.format || visited[e.to] {
				continue
			}
			next := append(append(Path{}, cur.path...), Hop{
				Service: e.service, Addr: e.addr, From: e.from, To: e.to,
			})
			if e.to == to {
				return next, nil
			}
			visited[e.to] = true
			frontier = append(frontier, state{format: e.to, path: next})
		}
	}
	return nil, fmt.Errorf("pathcreate: no conversion path %s→%s through live converters", from, to)
}

// Execute pushes a payload through the path, one converter at a time.
func (p *Planner) Execute(path Path, payload []byte) ([]byte, error) {
	cur := payload
	for _, hop := range path {
		reply, err := p.pool.Call(hop.Addr, cmdlang.New("convert").
			SetString("data", hex.EncodeToString(cur)).
			SetWord("from", hop.From).
			SetWord("to", hop.To))
		if err != nil {
			return nil, fmt.Errorf("pathcreate: hop %s (%s→%s): %w", hop.Service, hop.From, hop.To, err)
		}
		cur, err = hex.DecodeString(reply.Str("data", ""))
		if err != nil {
			return nil, fmt.Errorf("pathcreate: hop %s returned bad hex: %w", hop.Service, err)
		}
	}
	return cur, nil
}

// Convert plans and executes in one step.
func (p *Planner) Convert(payload []byte, from, to string) ([]byte, Path, error) {
	path, err := p.Plan(from, to)
	if err != nil {
		return nil, nil, err
	}
	out, err := p.Execute(path, payload)
	return out, path, err
}
