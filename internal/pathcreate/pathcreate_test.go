package pathcreate

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/daemon"
	"ace/internal/media"
)

// rig starts an ASD and specialized converters: one that only speaks
// RLE, one that only speaks mpegsim, one µ-law decoder — so most
// format pairs need multi-hop paths across services.
type rig struct {
	dir     *asd.Service
	pool    *daemon.Pool
	planner *Planner
	convs   map[string]*media.Converter
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{convs: map[string]*media.Converter{}}
	r.dir = asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	if err := r.dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.dir.Stop)
	r.pool = daemon.NewPool(nil)
	t.Cleanup(r.pool.Close)
	r.planner = NewPlanner(r.pool, r.dir.Addr())

	specs := map[string][]media.Pair{
		"conv_rle": {
			{From: media.FormatRaw, To: media.FormatRLE},
			{From: media.FormatRLE, To: media.FormatRaw},
		},
		"conv_mpeg": {
			{From: media.FormatRaw, To: media.FormatMPEG},
			{From: media.FormatMPEG, To: media.FormatRaw},
		},
		"conv_mulaw_dec": {
			{From: media.FormatMulaw, To: media.FormatRaw},
		},
	}
	for name, pairs := range specs {
		c := media.NewConverter(daemon.Config{
			Name:     name,
			ASDAddr:  r.dir.Addr(),
			LeaseTTL: 100 * time.Millisecond,
		}, pairs...)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Stop)
		r.convs[name] = c
	}
	return r
}

func TestPlanSingleHop(t *testing.T) {
	r := buildRig(t)
	path, err := r.planner.Plan(media.FormatRaw, media.FormatRLE)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Service != "conv_rle" {
		t.Fatalf("path=%v", path)
	}
}

func TestPlanIdentity(t *testing.T) {
	r := buildRig(t)
	path, err := r.planner.Plan(media.FormatRaw, media.FormatRaw)
	if err != nil || len(path) != 0 {
		t.Fatalf("path=%v err=%v", path, err)
	}
	out, err := r.planner.Execute(path, []byte("unchanged"))
	if err != nil || string(out) != "unchanged" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestPlanMultiHopAcrossServices(t *testing.T) {
	// rle→mpegsim has no single converter: the planner must chain
	// conv_rle (rle→raw) and conv_mpeg (raw→mpegsim).
	r := buildRig(t)
	path, err := r.planner.Plan(media.FormatRLE, media.FormatMPEG)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0].Service != "conv_rle" || path[1].Service != "conv_mpeg" {
		t.Fatalf("path=%v", path)
	}
	if !strings.Contains(path.String(), "-[conv_rle]-> raw") {
		t.Fatalf("render=%q", path.String())
	}

	// Execute it end to end, losslessly.
	original := bytes.Repeat([]byte{7, 7, 7, 9, 9, 1}, 500)
	rleForm, err := media.Convert(original, media.FormatRaw, media.FormatRLE)
	if err != nil {
		t.Fatal(err)
	}
	mpegForm, gotPath, err := r.planner.Convert(rleForm, media.FormatRLE, media.FormatMPEG)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPath) != 2 {
		t.Fatalf("gotPath=%v", gotPath)
	}
	back, err := media.Convert(mpegForm, media.FormatMPEG, media.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, original) {
		t.Fatal("multi-hop path corrupted the payload")
	}
}

func TestPlanUsesDirectionality(t *testing.T) {
	// conv_mulaw_dec only decodes: mulaw→raw exists, raw→mulaw does
	// not.
	r := buildRig(t)
	if _, err := r.planner.Plan(media.FormatMulaw, media.FormatRaw); err != nil {
		t.Fatalf("decode path missing: %v", err)
	}
	if _, err := r.planner.Plan(media.FormatRaw, media.FormatMulaw); err == nil {
		t.Fatal("encode path invented out of thin air")
	}
}

func TestPlanReactsToServiceDeath(t *testing.T) {
	r := buildRig(t)
	if _, err := r.planner.Plan(media.FormatRLE, media.FormatMPEG); err != nil {
		t.Fatal(err)
	}
	// Kill the RLE converter; once the lease is reaped, the path is
	// gone.
	r.convs["conv_rle"].Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := r.planner.Plan(media.FormatRLE, media.FormatMPEG); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("planner keeps routing through a dead converter")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Other paths still work.
	if _, err := r.planner.Plan(media.FormatRaw, media.FormatMPEG); err != nil {
		t.Fatal(err)
	}
}

func TestNoConvertersAtAll(t *testing.T) {
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dir.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	planner := NewPlanner(pool, dir.Addr())
	if _, err := planner.Plan(media.FormatRaw, media.FormatMPEG); err == nil {
		t.Fatal("planned through an empty environment")
	}
}

func TestMulawCodecQuality(t *testing.T) {
	// µ-law is lossy; verify the SNR is speech-grade rather than
	// byte equality.
	tone := media.ToneFrame(0, 440, 8000)
	raw := make([]byte, 2*len(tone.Samples))
	for i, s := range tone.Samples {
		raw[2*i] = byte(uint16(s) >> 8)
		raw[2*i+1] = byte(uint16(s))
	}
	coded, err := media.Convert(raw, media.FormatRaw, media.FormatMulaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(coded) != len(raw)/2 {
		t.Fatalf("companding ratio wrong: %d -> %d", len(raw), len(coded))
	}
	back, err := media.Convert(coded, media.FormatMulaw, media.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	var signal, noise float64
	for i := 0; i < len(raw); i += 2 {
		orig := float64(int16(uint16(raw[i])<<8 | uint16(raw[i+1])))
		dec := float64(int16(uint16(back[i])<<8 | uint16(back[i+1])))
		signal += orig * orig
		noise += (orig - dec) * (orig - dec)
	}
	if noise == 0 {
		t.Fatal("µ-law was lossless?!")
	}
	snr := 10 * math.Log10(signal/noise)
	if snr < 30 {
		t.Fatalf("µ-law SNR %.1f dB, want ≥30 dB", snr)
	}
}
