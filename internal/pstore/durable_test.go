package pstore

import (
	"errors"
	"testing"

	"ace/internal/chaos"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore/storage"
)

func startDurableNode(t *testing.T, name string, fs *chaos.DiskFS) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Daemon:  daemon.Config{Name: name},
		Dir:     "/data",
		Storage: storage.Options{FS: fs},
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := n.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return n
}

func putCmd(path, value string, version int64) *cmdlang.CmdLine {
	return cmdlang.New("psput").
		SetString("path", path).
		SetString("value", encodeValue([]byte(value))).
		SetInt("version", version)
}

// A node whose disk refuses durability must stop acknowledging writes
// — answering a retryable busy, never a fake OK — while still serving
// reads from memory. This is the write path's end of the durability
// contract: an ack means fsynced, so a node that cannot fsync cannot
// count toward write quorums.
func TestDegradedDiskRefusesAcksServesReads(t *testing.T) {
	fs := chaos.NewDiskFS()
	n := startDurableNode(t, "pstore-dd", fs)
	defer n.Stop()
	// No busy retries: the push-back itself is under test.
	pool := daemon.NewPoolConfig(daemon.PoolConfig{MaxRetries: -1})
	defer pool.Close()

	if _, err := pool.Call(n.Addr(), putCmd("/dd/a", "v1", 1)); err != nil {
		t.Fatalf("healthy put: %v", err)
	}

	fs.FailSync(errors.New("simulated EIO"))
	_, err := pool.Call(n.Addr(), putCmd("/dd/b", "v1", 1))
	var re *cmdlang.RemoteError
	if !errors.As(err, &re) || re.Code != cmdlang.CodeBusy {
		t.Fatalf("put on dead disk = %v, want a busy reply", err)
	}
	if !n.Degraded() {
		t.Fatal("node not degraded after a failed append")
	}
	if got := n.Telemetry().Counter(MetricWALAppendErrors).Value(); got == 0 {
		t.Fatal("pstore.wal.append_errors did not count the failed append")
	}

	// Healing the disk does not un-latch the node: the log sealed
	// itself, and only recovery (restart) re-earns the right to ack.
	fs.FailSync(nil)
	if _, err := pool.Call(n.Addr(), putCmd("/dd/c", "v1", 1)); err == nil {
		t.Fatal("degraded node acked a write after the disk healed")
	}

	// Reads still serve: degradation is a write-availability loss only.
	reply, err := pool.Call(n.Addr(), cmdlang.New("psget").SetString("path", "/dd/a"))
	if err != nil {
		t.Fatalf("read on degraded node: %v", err)
	}
	if val, _ := decodeValue(reply.Str("value", "")); string(val) != "v1" {
		t.Fatalf("read on degraded node = %q, want v1", val)
	}
}

// One dead disk must cost the cluster one replica, not its write
// availability: the degraded node answers busy, the other two form
// the majority, and client writes keep succeeding.
func TestQuorumSurvivesDeadDiskReplica(t *testing.T) {
	disks := []*chaos.DiskFS{chaos.NewDiskFS(), chaos.NewDiskFS(), chaos.NewDiskFS()}
	var nodes []*Node
	for i, fs := range disks {
		n := startDurableNode(t, "pstore-q"+string(rune('0'+i)), fs)
		defer n.Stop()
		nodes = append(nodes, n)
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()
	addrs := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}
	client := NewClient(pool, addrs)
	defer client.Close()

	if _, err := client.Put("/q/before", []byte("b")); err != nil {
		t.Fatalf("healthy quorum put: %v", err)
	}

	disks[0].FailSync(errors.New("simulated EIO"))
	if _, err := client.Put("/q/after", []byte("a")); err != nil {
		t.Fatalf("quorum put with one dead disk: %v", err)
	}
	if val, _, ok, err := client.Get("/q/after"); err != nil || !ok || string(val) != "a" {
		t.Fatalf("quorum read back = %q ok=%v err=%v", val, ok, err)
	}
	if !nodes[0].Degraded() {
		t.Fatal("dead-disk node did not latch degraded")
	}
	// The durable copies live on the two healthy replicas.
	for _, n := range nodes[1:] {
		if it, ok := n.get("/q/after"); !ok || string(it.Value) != "a" {
			t.Fatalf("healthy replica %s missing the write", n.Addr())
		}
	}
}
