package pstore

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hlc"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

func encodeValue(b []byte) string { return hex.EncodeToString(b) }

// decodeValue decodes a replica's hex-encoded value. Corruption must
// surface as an error: silently returning nil would let a bad replica
// masquerade as holding a missing/empty value and win (or skew) a
// quorum read.
func decodeValue(s string) ([]byte, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("pstore: corrupt replica value %q: %w", truncateForErr(s), err)
	}
	return b, nil
}

func truncateForErr(s string) string {
	if len(s) > 32 {
		return s[:32] + "…"
	}
	return s
}

// replyVersion extracts a reply's version argument. A negative
// version is a corrupt-replica error, same treatment as bad hex: the
// naive uint64 conversion would turn version=-1 into ~1.8e19, which
// permanently wins every quorum read and poisons the next write's
// version probe.
func replyVersion(reply *cmdlang.CmdLine, addr string) (uint64, error) {
	v := reply.Int("version", 0)
	if v < 0 {
		return 0, fmt.Errorf("pstore: replica %s: corrupt negative version %d", addr, v)
	}
	return uint64(v), nil
}

// WrongGroupError reports that an operation could not reach quorum
// because replicas answered wrong_group redirects: the placement map
// the request was routed (and epoch-stamped) with is stale. The fix
// is at the routing layer — refresh the map and re-route — which the
// sharded client does transparently.
type WrongGroupError struct {
	Op string
}

func (e *WrongGroupError) Error() string {
	return "pstore: " + e.Op + " redirected: placement map is stale"
}

// IsWrongGroup reports whether err is (or wraps) a placement redirect.
func IsWrongGroup(err error) bool {
	var wg *WrongGroupError
	return errors.As(err, &wg)
}

// Client reads and writes the replicated store through majority
// quorums. It is safe for concurrent use.
type Client struct {
	pool     *daemon.Pool
	replicas []string
	// epoch, when non-zero, is stamped onto every data-plane command
	// so nodes can reject requests routed with a placement map older
	// than the addressed partition's last routing change.
	epoch uint64

	// repairSem bounds concurrent background read repairs; bg tracks
	// straggler drains and repairs so Close can wait for them.
	repairSem chan struct{}
	bg        sync.WaitGroup

	// clock, lag, ctl, and leases are the bounded-staleness read
	// machinery: the client's hybrid logical clock (stamps writes,
	// merges reply watermarks), the per-replica advisory lag
	// estimator, the AIMD valve deciding how much traffic may leave
	// the quorum path, and the per-path freshness-lease table holding
	// the proof bounded reads rely on. A sharded deployment shares one
	// set across its group clients.
	clock  *hlc.Clock
	lag    *staleness.Tracker
	ctl    *staleness.Controller
	leases *staleness.Leases

	mReadLatency      *telemetry.Histogram
	mReadFullLatency  *telemetry.Histogram
	mWriteLatency     *telemetry.Histogram
	mWriteFullLatency *telemetry.Histogram
	mReadStragglers   *telemetry.Counter
	mWriteStragglers  *telemetry.Counter
	mReadRepairs      *telemetry.Counter
	mRepairErrs       *telemetry.Counter
	mRepairsDropped   *telemetry.Counter
	mBoundedHits      *telemetry.Counter
	mBoundedFallbacks *telemetry.Counter
	mBoundedLatency   *telemetry.Histogram
	mStaleSamples     *telemetry.Counter
	mStaleViolations  *telemetry.Counter
	mStaleShare       *telemetry.Gauge
}

// NewClient builds a client over the given replica addresses,
// dialing through pool. Quorum latency histograms, straggler
// counters, and the read-repair instruments land in the pool's
// telemetry registry.
func NewClient(pool *daemon.Pool, replicas []string) *Client {
	tel := pool.Telemetry()
	bound := 2 * len(replicas)
	if bound < 4 {
		bound = 4
	}
	return &Client{
		pool:              pool,
		replicas:          append([]string(nil), replicas...),
		repairSem:         make(chan struct{}, bound),
		clock:             hlc.New(nil, 0, tel),
		lag:               staleness.NewTracker(0, nil),
		ctl:               staleness.NewController(staleness.ControllerConfig{}),
		leases:            staleness.NewLeases(0, nil),
		mBoundedHits:      tel.Counter(MetricBoundedHits),
		mBoundedFallbacks: tel.Counter(MetricBoundedFallbacks),
		mBoundedLatency:   tel.Histogram(MetricBoundedLatency),
		mStaleSamples:     tel.Counter(staleness.MetricSamples),
		mStaleViolations:  tel.Counter(staleness.MetricViolations),
		mStaleShare:       tel.Gauge(staleness.MetricShare),
		mReadLatency:      tel.Histogram(MetricReadLatency),
		mReadFullLatency:  tel.Histogram(MetricReadLatencyFull),
		mWriteLatency:     tel.Histogram(MetricWriteLatency),
		mWriteFullLatency: tel.Histogram(MetricWriteLatencyFull),
		mReadStragglers:   tel.Counter(MetricReadStragglers),
		mWriteStragglers:  tel.Counter(MetricWriteStragglers),
		mReadRepairs:      tel.Counter(MetricReadRepairs),
		mRepairErrs:       tel.Counter(MetricRepairErrors),
		mRepairsDropped:   tel.Counter(MetricRepairsDropped),
	}
}

// NewGroupClient is NewClient for one replica group of a sharded
// deployment: every command it issues is stamped with the placement
// epoch of the map it was routed by.
func NewGroupClient(pool *daemon.Pool, replicas []string, epoch uint64) *Client {
	c := NewClient(pool, replicas)
	c.epoch = epoch
	return c
}

// stamp adds the client's placement epoch to a data-plane command;
// an unsharded client (epoch 0) leaves commands untouched, which
// nodes admit regardless of placement.
func (c *Client) stamp(cmd *cmdlang.CmdLine) *cmdlang.CmdLine {
	if c.epoch > 0 {
		cmd.SetInt("epoch", int64(c.epoch))
	}
	return cmd
}

// observe folds a reply's HLC watermark (the "hlc" argument every
// stamped node attaches) into the client's clock and the per-replica
// staleness estimate. Replies from pre-HLC nodes carry no watermark
// and are skipped, which leaves those replicas permanently ineligible
// for bounded reads — the safe direction.
func (c *Client) observe(addr string, reply *cmdlang.CmdLine) {
	if v := reply.Int(watermarkArg, 0); v > 0 {
		ts := hlc.Timestamp(v)
		c.clock.Update(ts)
		c.lag.ObserveApplied(addr, ts)
		c.mStaleSamples.Inc()
	}
}

// anyRedirect reports whether any consumed reply was a wrong_group
// placement redirect.
func anyRedirect(prefix []replicaReply) bool {
	for _, r := range prefix {
		if r.err != nil && cmdlang.IsRemoteCode(r.err, cmdlang.CodeWrongGroup) {
			return true
		}
	}
	return false
}

// Close waits for the client's background work — straggler drains and
// read repairs — to finish. Close the client before closing the pool
// it dials through, so in-flight repairs don't race the pool's
// teardown. Close does not invalidate the client; it only drains.
func (c *Client) Close() { c.bg.Wait() }

// Quorum returns the majority size for the configured replica set.
func (c *Client) Quorum() int { return len(c.replicas)/2 + 1 }

// Replicas returns the configured replica addresses.
func (c *Client) Replicas() []string { return append([]string(nil), c.replicas...) }

// replicaReply is one replica's contribution to a streaming fan-out.
type replicaReply struct {
	idx   int
	item  Item
	paths []string // pslist fan-outs only
	ok    bool     // well-formed response carrying data (vs not-found)
	err   error
}

// fanout is one in-flight streaming fan-out: replica results arrive
// on the buffered channel in completion order, and every replica call
// runs under its own child context so stragglers can be cancelled the
// moment the quorum outcome is decided.
type fanout struct {
	n       int
	start   time.Time
	results chan replicaReply
	cancels []context.CancelFunc
}

// streamFanout launches fn against every replica. The results channel
// is buffered for the full replica set, so replica goroutines never
// block and never leak, whether or not anyone consumes the tail.
func (c *Client) streamFanout(ctx context.Context, fn func(ctx context.Context, addr string) replicaReply) *fanout {
	f := &fanout{
		n:       len(c.replicas),
		start:   time.Now(),
		results: make(chan replicaReply, len(c.replicas)),
		cancels: make([]context.CancelFunc, len(c.replicas)),
	}
	for i, addr := range c.replicas {
		cctx, cancel := context.WithCancel(ctx)
		f.cancels[i] = cancel
		go func(i int, addr string, cctx context.Context) {
			r := fn(cctx, addr)
			r.idx = i
			f.results <- r
		}(i, addr, cctx)
	}
	return f
}

func (f *fanout) cancelAll() {
	for _, cancel := range f.cancels {
		cancel()
	}
}

// awaitQuorum consumes fan-out results until the outcome is decided:
// `need` well-formed responses make a success, and failure is
// declared as soon as so many replicas have failed that `need`
// responses can no longer arrive — not after the last straggler rides
// out its timeout. It returns every result consumed up to the
// decision; the caller owns finishing the fan-out either way.
func (f *fanout) awaitQuorum(need int, op string) ([]replicaReply, error) {
	prefix := make([]replicaReply, 0, f.n)
	responded, failed := 0, 0
	for r := range f.results {
		prefix = append(prefix, r)
		if r.err != nil {
			failed++
			if failed > f.n-need {
				return prefix, fmt.Errorf("pstore: %s failed: %d/%d replicas reachable", op, responded, f.n)
			}
			continue
		}
		responded++
		if responded >= need {
			return prefix, nil
		}
	}
	return prefix, fmt.Errorf("pstore: %s failed: %d/%d replicas reachable", op, responded, f.n)
}

// finish cancels the fan-out's stragglers and detaches a drain
// goroutine that consumes their late results, so they still feed
// telemetry, the pool's per-address bookkeeping, and read repair.
// winner, when non-nil, is the decided read's winning item: late
// responders observed behind it are repaired exactly like the ones
// that made the quorum prefix. The drain is tracked by the client's
// background WaitGroup, so Close can wait for it.
func (c *Client) finish(f *fanout, consumed int, stragglers *telemetry.Counter, full *telemetry.Histogram, winner *Item, repairCtx context.Context) {
	remaining := f.n - consumed
	f.cancelAll() // idempotent; also releases the child contexts of completed calls
	if remaining == 0 {
		full.Observe(time.Since(f.start))
		return
	}
	stragglers.Add(int64(remaining))
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		for i := 0; i < remaining; i++ {
			r := <-f.results
			if winner != nil && r.err == nil && (!r.ok || r.item.Version < winner.Version) {
				c.repairAsync(repairCtx, c.replicas[r.idx], *winner)
			}
		}
		full.Observe(time.Since(f.start))
	}()
}

// repairAsync pushes the winning item to a lagging replica in the
// background. Concurrent repairs are bounded by the repair semaphore:
// over the bound the repair is dropped and counted rather than piling
// goroutines up behind a sick replica — anti-entropy remains the
// backstop. Repairs are tracked by the client's background WaitGroup
// so Close doesn't race the pool teardown.
func (c *Client) repairAsync(ctx context.Context, addr string, winner Item) {
	select {
	case c.repairSem <- struct{}{}:
	default:
		c.mRepairsDropped.Inc()
		return
	}
	c.mReadRepairs.Inc()
	repair := cmdlang.New("psput").
		SetString("path", winner.Path).
		SetString("value", encodeValue(winner.Value)).
		SetInt("version", int64(winner.Version))
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		defer func() { <-c.repairSem }()
		// Best effort: failed repairs are counted so a persistently
		// sick replica shows up in the metrics.
		if _, err := c.pool.CallContext(ctx, addr, repair); err != nil {
			c.mRepairErrs.Inc()
		}
	}()
}

// Get performs a quorum read: it queries all replicas, requires a
// majority of responses, and returns the highest-versioned live
// value. It returns ok=false (with nil error) when a majority agrees
// the path holds nothing. Replicas observed to lag behind the winning
// version are read-repaired in the background, tightening the window
// anti-entropy would otherwise close later.
func (c *Client) Get(path string) (value []byte, version uint64, ok bool, err error) {
	return c.GetContext(context.Background(), path)
}

// GetContext is Get bounded by ctx; a span context carried by ctx is
// propagated to every replica call, so the whole quorum read appears
// under one trace.
//
// The read is decided as soon as a majority has answered: because a
// write commits only with majority acks, any majority of read
// responses intersects the write majority of every committed write,
// so the highest version among the first quorum of responses includes
// the latest committed value. Stragglers are cancelled and drained in
// the background — one blackholed replica no longer sets the latency
// of every read.
func (c *Client) GetContext(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error) {
	start := time.Now()
	defer func() { c.mReadLatency.Observe(time.Since(start)) }()
	f := c.streamFanout(ctx, func(cctx context.Context, addr string) replicaReply {
		reply, callErr := c.pool.CallContext(cctx, addr, c.stamp(cmdlang.New("psget").SetString("path", path)))
		if callErr != nil {
			if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
				return replicaReply{}
			}
			return replicaReply{err: callErr}
		}
		c.observe(addr, reply)
		val, decErr := decodeValue(reply.Str("value", ""))
		if decErr != nil {
			// A corrupt replica is a failed replica: it must not count
			// toward the quorum, and its version must not win.
			return replicaReply{err: fmt.Errorf("pstore: replica %s: %w", addr, decErr)}
		}
		ver, verErr := replyVersion(reply, addr)
		if verErr != nil {
			return replicaReply{err: verErr}
		}
		return replicaReply{ok: true, item: Item{Path: path, Value: val, Version: ver}}
	})
	// Repairs keep the caller's span context but not its cancellation —
	// they should finish (and be traced) even when the caller returns
	// immediately.
	repairCtx := telemetry.WithSpanContext(context.Background(), telemetry.FromContext(ctx))
	prefix, qErr := f.awaitQuorum(c.Quorum(), "quorum read")
	if qErr != nil {
		c.finish(f, len(prefix), c.mReadStragglers, c.mReadFullLatency, nil, repairCtx)
		if anyRedirect(prefix) {
			return nil, 0, false, &WrongGroupError{Op: "quorum read"}
		}
		return nil, 0, false, qErr
	}
	var best Item
	found := false
	for _, r := range prefix {
		if r.err == nil && r.ok && (!found || newer(r.item, best)) {
			best = r.item
			found = true
		}
	}
	if !found {
		c.finish(f, len(prefix), c.mReadStragglers, c.mReadFullLatency, nil, repairCtx)
		return nil, 0, false, nil
	}
	// Read repair: push the winning item to replicas that answered
	// with an older (or no) version — here for quorum members, in the
	// detached drain for stragglers that answer late.
	c.finish(f, len(prefix), c.mReadStragglers, c.mReadFullLatency, &best, repairCtx)
	holders := make([]string, 0, len(prefix))
	for _, r := range prefix {
		if r.err == nil && (!r.ok || r.item.Version < best.Version) {
			c.repairAsync(repairCtx, c.replicas[r.idx], best)
		} else if r.err == nil && r.ok && r.item.Version == best.Version {
			holders = append(holders, c.replicas[r.idx])
		}
	}
	// Grant a freshness lease: any write the winning-version responders
	// could be missing was committed after this read's fan-out launch
	// (quorum intersection — see staleness.Leases), so bounded reads
	// may serve them for the next Δ.
	c.leases.Grant(path, best.Version, holders, start)
	return best.Value, best.Version, true, nil
}

// GetAny reads from the first reachable replica without waiting for a
// quorum — the paper's bottleneck-removal read path, which may return
// slightly stale data during synchronization windows.
func (c *Client) GetAny(path string) (value []byte, version uint64, ok bool, err error) {
	return c.anyGet(context.Background(), path)
}

// currentVersion determines the highest version any replica holds at
// path, including tombstones (a quorum read hides deletions, but a
// new write must still supersede the tombstone's version). Like
// GetContext it decides at a majority of responses: the probe cannot
// miss a committed version, because commitment itself requires a
// majority.
func (c *Client) currentVersion(ctx context.Context, path string) (uint64, error) {
	f := c.streamFanout(ctx, func(cctx context.Context, addr string) replicaReply {
		reply, callErr := c.pool.CallContext(cctx, addr, c.stamp(cmdlang.New("psfetch").SetString("path", path)))
		if callErr != nil {
			if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
				return replicaReply{}
			}
			return replicaReply{err: callErr}
		}
		c.observe(addr, reply)
		ver, verErr := replyVersion(reply, addr)
		if verErr != nil {
			return replicaReply{err: verErr}
		}
		return replicaReply{ok: true, item: Item{Version: ver}}
	})
	prefix, qErr := f.awaitQuorum(c.Quorum(), "quorum version probe")
	c.finish(f, len(prefix), c.mWriteStragglers, c.mWriteFullLatency, nil, ctx)
	if qErr != nil {
		if anyRedirect(prefix) {
			return 0, &WrongGroupError{Op: "version probe"}
		}
		return 0, qErr
	}
	var max uint64
	for _, r := range prefix {
		if r.err == nil && r.ok && r.item.Version > max {
			max = r.item.Version
		}
	}
	return max, nil
}

// Put writes value at path: it determines the next version from a
// quorum probe, then writes to all replicas, succeeding once a
// majority has accepted. Anti-entropy carries the write to replicas
// that missed it.
func (c *Client) Put(path string, value []byte) (uint64, error) {
	return c.PutContext(context.Background(), path, value)
}

// PutContext is Put bounded by ctx, with span propagation to every
// replica (the version probe and the write fan-out alike). It returns
// as soon as a majority has acked; replicas still in flight are
// cancelled and left to read repair and anti-entropy.
func (c *Client) PutContext(ctx context.Context, path string, value []byte) (uint64, error) {
	if err := ValidatePath(path); err != nil {
		return 0, err
	}
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	cur, err := c.currentVersion(ctx, path)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	acked, redirected := c.writeAll(ctx, c.stamp(cmdlang.New("psput").
		SetString("path", path).
		SetString("value", encodeValue(value)).
		SetInt("version", int64(next))))
	if len(acked) < c.Quorum() {
		if redirected {
			return 0, &WrongGroupError{Op: "quorum write"}
		}
		return 0, fmt.Errorf("pstore: quorum write failed: %d/%d acks", len(acked), len(c.replicas))
	}
	// Grant a freshness lease to the ackers, dated at the version
	// probe's launch: the probe's quorum proves every write committed
	// before `start` has version ≤ cur, so the acked `next` supersedes
	// them all and a rival committing between probe and ack is younger
	// than `start` — the conservative grant time bounded reads need.
	c.leases.Grant(path, next, acked, start)
	return next, nil
}

// PutVersionContext writes value at an explicit version through the
// write quorum, skipping the version probe. It is the dual-apply arm
// of a sharded put: the router probes the source group once, then
// applies the same version to source and destination so the moving
// partition converges on one winner.
func (c *Client) PutVersionContext(ctx context.Context, path string, value []byte, version uint64) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	acked, redirected := c.writeAll(ctx, c.stamp(cmdlang.New("psput").
		SetString("path", path).
		SetString("value", encodeValue(value)).
		SetInt("version", int64(version))))
	if len(acked) < c.Quorum() {
		if redirected {
			return &WrongGroupError{Op: "quorum write"}
		}
		return fmt.Errorf("pstore: quorum write failed: %d/%d acks", len(acked), len(c.replicas))
	}
	// No lease: the version was probed by the router against another
	// group at a time this client cannot see, so there is no sound
	// grant instant. Dual-apply traffic just leaves bounded reads to
	// re-validate through a quorum.
	return nil
}

// DeleteVersionContext writes a tombstone at an explicit version, the
// dual-apply arm of a sharded delete (see PutVersionContext).
func (c *Client) DeleteVersionContext(ctx context.Context, path string, version uint64) error {
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	c.leases.Drop(path)
	acked, redirected := c.writeAll(ctx, c.stamp(cmdlang.New("psdel").
		SetString("path", path).
		SetInt("version", int64(version))))
	if len(acked) < c.Quorum() {
		if redirected {
			return &WrongGroupError{Op: "quorum delete"}
		}
		return fmt.Errorf("pstore: quorum delete failed: %d/%d acks", len(acked), len(c.replicas))
	}
	return nil
}

// Delete writes a tombstone at path through a quorum.
func (c *Client) Delete(path string) error {
	return c.DeleteContext(context.Background(), path)
}

// DeleteContext is Delete bounded by ctx with span propagation.
func (c *Client) DeleteContext(ctx context.Context, path string) error {
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	cur, err := c.currentVersion(ctx, path)
	if err != nil {
		return err
	}
	// A tombstone invalidates any lease immediately — even a write that
	// ends up under quorum may have landed on a holder.
	c.leases.Drop(path)
	acked, redirected := c.writeAll(ctx, c.stamp(cmdlang.New("psdel").
		SetString("path", path).
		SetInt("version", int64(cur+1))))
	if len(acked) < c.Quorum() {
		if redirected {
			return &WrongGroupError{Op: "quorum delete"}
		}
		return fmt.Errorf("pstore: quorum delete failed: %d/%d acks", len(acked), len(c.replicas))
	}
	return nil
}

// writeAll streams cmd to every replica and returns the addresses
// that acked as soon as the write quorum is reached — or provably
// unreachable — cancelling and draining the stragglers in the
// background. A cancelled straggler that already received the frame
// still applies the write; one that didn't is healed by repair or
// anti-entropy. redirected reports whether any consumed failure was a
// wrong_group placement redirect, so an under-quorum outcome can be
// classified as a stale routing decision rather than unavailability.
func (c *Client) writeAll(ctx context.Context, cmd *cmdlang.CmdLine) (ackedAddrs []string, redirected bool) {
	// Stamp the write: the timestamp rides the wire frame header to
	// every replica, so all of them store the same client-assigned
	// stamp. It also advances the client's write frontier — the
	// reference point bounded reads measure staleness against.
	ts := c.clock.Now()
	ctx = hlc.WithTimestamp(ctx, ts)
	c.lag.ObserveWrite(ts)
	f := c.streamFanout(ctx, func(cctx context.Context, addr string) replicaReply {
		reply, err := c.pool.CallContext(cctx, addr, cmd.Clone())
		if err != nil {
			return replicaReply{err: err}
		}
		c.observe(addr, reply)
		return replicaReply{ok: true}
	})
	prefix, _ := f.awaitQuorum(c.Quorum(), "quorum write")
	c.finish(f, len(prefix), c.mWriteStragglers, c.mWriteFullLatency, nil, ctx)
	for _, r := range prefix {
		if r.err == nil {
			ackedAddrs = append(ackedAddrs, c.replicas[r.idx])
		}
	}
	return ackedAddrs, anyRedirect(prefix)
}

// List unions the live paths under prefix across all reachable
// replicas (a recovering replica may not hold everything yet).
func (c *Client) List(prefix string) ([]string, error) {
	return c.ListContext(context.Background(), prefix)
}

// ListContext is List bounded by ctx. Replicas are probed through the
// streaming fan-out — concurrently, not one by one — and only
// well-formed replies count as reachable: a replica answering
// garbage is a failed replica, not an empty union member.
func (c *Client) ListContext(ctx context.Context, prefix string) ([]string, error) {
	f := c.streamFanout(ctx, func(cctx context.Context, addr string) replicaReply {
		reply, err := c.pool.CallContext(cctx, addr, cmdlang.New("pslist").SetString("prefix", prefix))
		if err != nil {
			return replicaReply{err: err}
		}
		paths := reply.Strings("paths")
		if count := reply.Int("count", -1); count < 0 || count != int64(len(paths)) {
			return replicaReply{err: fmt.Errorf("pstore: replica %s: malformed list reply (count=%d, %d paths)", addr, count, len(paths))}
		}
		return replicaReply{ok: true, paths: paths}
	})
	// A union wants every answer, so there is no early decision here —
	// but the probes run concurrently, so the slowest replica bounds
	// the latency once, not N times.
	defer f.cancelAll()
	set := map[string]bool{}
	reachable := 0
	for i := 0; i < f.n; i++ {
		r := <-f.results
		if r.err != nil {
			continue
		}
		reachable++
		for _, p := range r.paths {
			set[p] = true
		}
	}
	if reachable == 0 {
		return nil, fmt.Errorf("pstore: no replica reachable for list")
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Cluster is a convenience for building and running an N-node store
// in one process (tests, examples, benches).
type Cluster struct {
	Nodes []*Node
}

// StartCluster starts n nodes (n=3 reproduces Fig 17), wires them as
// peers, and returns the cluster. dir enables per-node WALs when
// non-empty; syncInterval drives anti-entropy.
func StartCluster(n int, dir string, syncInterval int64) (*Cluster, error) {
	return StartClusterT(n, dir, syncInterval, nil)
}

// StartClusterT is StartCluster with a transport factory so the store
// can run inside a TLS environment; transportFor may be nil for
// plaintext.
func StartClusterT(n int, dir string, syncInterval int64, transportFor func(name string) (*wire.Transport, error)) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		cfg := Config{
			Daemon: daemon.Config{Name: fmt.Sprintf("pstore%d", i+1)},
		}
		if transportFor != nil {
			t, err := transportFor(cfg.Daemon.Name)
			if err != nil {
				c.StopAll()
				return nil, err
			}
			cfg.Daemon.Transport = t
		}
		if dir != "" {
			cfg.Dir = dir
		}
		node, err := NewNode(cfg)
		if err != nil {
			c.StopAll()
			return nil, err
		}
		if err := node.Start(); err != nil {
			c.StopAll()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	addrs := c.Addrs()
	for i, node := range c.Nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node.SetPeers(peers)
	}
	return c, nil
}

// Addrs returns every node's command address.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr()
	}
	return out
}

// StopAll stops every node.
func (c *Cluster) StopAll() {
	for _, n := range c.Nodes {
		if n != nil {
			n.Stop()
		}
	}
}

// SyncRound runs one full anti-entropy round on every node.
func (c *Cluster) SyncRound() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.SyncAll()
	}
	return total
}
