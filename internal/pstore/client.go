package pstore

import (
	"context"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

func encodeValue(b []byte) string { return hex.EncodeToString(b) }

// decodeValue decodes a replica's hex-encoded value. Corruption must
// surface as an error: silently returning nil would let a bad replica
// masquerade as holding a missing/empty value and win (or skew) a
// quorum read.
func decodeValue(s string) ([]byte, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("pstore: corrupt replica value %q: %w", truncateForErr(s), err)
	}
	return b, nil
}

func truncateForErr(s string) string {
	if len(s) > 32 {
		return s[:32] + "…"
	}
	return s
}

// Client reads and writes the replicated store through majority
// quorums. It is safe for concurrent use.
type Client struct {
	pool     *daemon.Pool
	replicas []string

	mReadLatency  *telemetry.Histogram
	mWriteLatency *telemetry.Histogram
	mReadRepairs  *telemetry.Counter
	mRepairErrs   *telemetry.Counter
}

// NewClient builds a client over the given replica addresses,
// dialing through pool. Quorum latency histograms and the
// read-repair counter land in the pool's telemetry registry.
func NewClient(pool *daemon.Pool, replicas []string) *Client {
	tel := pool.Telemetry()
	return &Client{
		pool:          pool,
		replicas:      append([]string(nil), replicas...),
		mReadLatency:  tel.Histogram(MetricReadLatency),
		mWriteLatency: tel.Histogram(MetricWriteLatency),
		mReadRepairs:  tel.Counter(MetricReadRepairs),
		mRepairErrs:   tel.Counter(MetricRepairErrors),
	}
}

// Quorum returns the majority size for the configured replica set.
func (c *Client) Quorum() int { return len(c.replicas)/2 + 1 }

// Replicas returns the configured replica addresses.
func (c *Client) Replicas() []string { return append([]string(nil), c.replicas...) }

type versioned struct {
	item Item
	ok   bool
	err  error
}

// fanout runs fn against every replica concurrently.
func (c *Client) fanout(fn func(addr string) versioned) []versioned {
	out := make([]versioned, len(c.replicas))
	var wg sync.WaitGroup
	for i, addr := range c.replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = fn(addr)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// Get performs a quorum read: it queries all replicas, requires a
// majority of responses, and returns the highest-versioned live
// value. It returns ok=false (with nil error) when a majority agrees
// the path holds nothing. Replicas observed to lag behind the winning
// version are read-repaired in the background, tightening the window
// anti-entropy would otherwise close later.
func (c *Client) Get(path string) (value []byte, version uint64, ok bool, err error) {
	return c.GetContext(context.Background(), path)
}

// GetContext is Get bounded by ctx; a span context carried by ctx is
// propagated to every replica call, so the whole quorum read appears
// under one trace.
func (c *Client) GetContext(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error) {
	start := time.Now()
	defer func() { c.mReadLatency.Observe(time.Since(start)) }()
	results := c.fanout(func(addr string) versioned {
		reply, callErr := c.pool.CallContext(ctx, addr, cmdlang.New("psget").SetString("path", path))
		if callErr != nil {
			if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
				return versioned{ok: false}
			}
			return versioned{err: callErr}
		}
		val, decErr := decodeValue(reply.Str("value", ""))
		if decErr != nil {
			// A corrupt replica is a failed replica: it must not count
			// toward the quorum, and its version must not win.
			return versioned{err: fmt.Errorf("pstore: replica %s: %w", addr, decErr)}
		}
		return versioned{
			ok: true,
			item: Item{
				Path:    path,
				Value:   val,
				Version: uint64(reply.Int("version", 0)),
			},
		}
	})
	responded := 0
	var best Item
	found := false
	for _, r := range results {
		if r.err != nil {
			continue
		}
		responded++
		if r.ok && (!found || newer(r.item, best)) {
			best = r.item
			found = true
		}
	}
	if responded < c.Quorum() {
		return nil, 0, false, fmt.Errorf("pstore: quorum read failed: %d/%d replicas reachable", responded, len(c.replicas))
	}
	if !found {
		return nil, 0, false, nil
	}
	// Read repair: push the winning item to replicas that answered
	// with an older (or no) version. The repair keeps the caller's
	// span context but not its cancellation — it should finish (and be
	// traced) even when the caller returns immediately.
	repairCtx := telemetry.WithSpanContext(context.Background(), telemetry.FromContext(ctx))
	repair := cmdlang.New("psput").
		SetString("path", path).
		SetString("value", encodeValue(best.Value)).
		SetInt("version", int64(best.Version))
	for i, r := range results {
		if r.err == nil && (!r.ok || r.item.Version < best.Version) {
			addr := c.replicas[i]
			c.mReadRepairs.Inc()
			// Best effort: anti-entropy is the backstop, but failed
			// repairs are counted so a persistently sick replica shows
			// up in the metrics.
			go func() {
				if _, err := c.pool.CallContext(repairCtx, addr, repair.Clone()); err != nil {
					c.mRepairErrs.Inc()
				}
			}()
		}
	}
	return best.Value, best.Version, true, nil
}

// GetAny reads from the first reachable replica without waiting for a
// quorum — the paper's bottleneck-removal read path, which may return
// slightly stale data during synchronization windows.
func (c *Client) GetAny(path string) (value []byte, version uint64, ok bool, err error) {
	var lastErr error
	for _, addr := range c.replicas {
		reply, callErr := c.pool.Call(addr, cmdlang.New("psget").SetString("path", path))
		if callErr == nil {
			val, decErr := decodeValue(reply.Str("value", ""))
			if decErr != nil {
				// Corrupt replica: try the next one.
				lastErr = fmt.Errorf("pstore: replica %s: %w", addr, decErr)
				continue
			}
			return val, uint64(reply.Int("version", 0)), true, nil
		}
		if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
			return nil, 0, false, nil
		}
		lastErr = callErr
	}
	return nil, 0, false, fmt.Errorf("pstore: no replica reachable: %w", lastErr)
}

// currentVersion determines the highest version any replica holds at
// path, including tombstones (a quorum read hides deletions, but a
// new write must still supersede the tombstone's version).
func (c *Client) currentVersion(ctx context.Context, path string) (uint64, error) {
	results := c.fanout(func(addr string) versioned {
		reply, callErr := c.pool.CallContext(ctx, addr, cmdlang.New("psfetch").SetString("path", path))
		if callErr != nil {
			if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
				return versioned{ok: false}
			}
			return versioned{err: callErr}
		}
		return versioned{ok: true, item: Item{Version: uint64(reply.Int("version", 0))}}
	})
	responded := 0
	var max uint64
	for _, r := range results {
		if r.err != nil {
			continue
		}
		responded++
		if r.ok && r.item.Version > max {
			max = r.item.Version
		}
	}
	if responded < c.Quorum() {
		return 0, fmt.Errorf("pstore: quorum version probe failed: %d/%d replicas reachable", responded, len(c.replicas))
	}
	return max, nil
}

// Put writes value at path: it determines the next version from a
// quorum probe, then writes to all replicas, succeeding once a
// majority has accepted. Anti-entropy carries the write to replicas
// that missed it.
func (c *Client) Put(path string, value []byte) (uint64, error) {
	return c.PutContext(context.Background(), path, value)
}

// PutContext is Put bounded by ctx, with span propagation to every
// replica (the version probe and the write fan-out alike).
func (c *Client) PutContext(ctx context.Context, path string, value []byte) (uint64, error) {
	if err := ValidatePath(path); err != nil {
		return 0, err
	}
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	cur, err := c.currentVersion(ctx, path)
	if err != nil {
		return 0, err
	}
	next := cur + 1
	acked := c.writeAll(ctx, cmdlang.New("psput").
		SetString("path", path).
		SetString("value", encodeValue(value)).
		SetInt("version", int64(next)))
	if acked < c.Quorum() {
		return 0, fmt.Errorf("pstore: quorum write failed: %d/%d acks", acked, len(c.replicas))
	}
	return next, nil
}

// Delete writes a tombstone at path through a quorum.
func (c *Client) Delete(path string) error {
	return c.DeleteContext(context.Background(), path)
}

// DeleteContext is Delete bounded by ctx with span propagation.
func (c *Client) DeleteContext(ctx context.Context, path string) error {
	start := time.Now()
	defer func() { c.mWriteLatency.Observe(time.Since(start)) }()
	cur, err := c.currentVersion(ctx, path)
	if err != nil {
		return err
	}
	acked := c.writeAll(ctx, cmdlang.New("psdel").
		SetString("path", path).
		SetInt("version", int64(cur+1)))
	if acked < c.Quorum() {
		return fmt.Errorf("pstore: quorum delete failed: %d/%d acks", acked, len(c.replicas))
	}
	return nil
}

func (c *Client) writeAll(ctx context.Context, cmd *cmdlang.CmdLine) int {
	results := c.fanout(func(addr string) versioned {
		_, err := c.pool.CallContext(ctx, addr, cmd.Clone())
		return versioned{err: err}
	})
	acked := 0
	for _, r := range results {
		if r.err == nil {
			acked++
		}
	}
	return acked
}

// List unions the live paths under prefix across all reachable
// replicas (a recovering replica may not hold everything yet).
func (c *Client) List(prefix string) ([]string, error) {
	set := map[string]bool{}
	reachable := 0
	for _, addr := range c.replicas {
		reply, err := c.pool.Call(addr, cmdlang.New("pslist").SetString("prefix", prefix))
		if err != nil {
			continue
		}
		reachable++
		for _, p := range reply.Strings("paths") {
			set[p] = true
		}
	}
	if reachable == 0 {
		return nil, fmt.Errorf("pstore: no replica reachable for list")
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// Cluster is a convenience for building and running an N-node store
// in one process (tests, examples, benches).
type Cluster struct {
	Nodes []*Node
}

// StartCluster starts n nodes (n=3 reproduces Fig 17), wires them as
// peers, and returns the cluster. dir enables per-node WALs when
// non-empty; syncInterval drives anti-entropy.
func StartCluster(n int, dir string, syncInterval int64) (*Cluster, error) {
	return StartClusterT(n, dir, syncInterval, nil)
}

// StartClusterT is StartCluster with a transport factory so the store
// can run inside a TLS environment; transportFor may be nil for
// plaintext.
func StartClusterT(n int, dir string, syncInterval int64, transportFor func(name string) (*wire.Transport, error)) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		cfg := Config{
			Daemon: daemon.Config{Name: fmt.Sprintf("pstore%d", i+1)},
		}
		if transportFor != nil {
			t, err := transportFor(cfg.Daemon.Name)
			if err != nil {
				c.StopAll()
				return nil, err
			}
			cfg.Daemon.Transport = t
		}
		if dir != "" {
			cfg.Dir = dir
		}
		node, err := NewNode(cfg)
		if err != nil {
			c.StopAll()
			return nil, err
		}
		if err := node.Start(); err != nil {
			c.StopAll()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	addrs := c.Addrs()
	for i, node := range c.Nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node.SetPeers(peers)
	}
	return c, nil
}

// Addrs returns every node's command address.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr()
	}
	return out
}

// StopAll stops every node.
func (c *Cluster) StopAll() {
	for _, n := range c.Nodes {
		if n != nil {
			n.Stop()
		}
	}
}

// SyncRound runs one full anti-entropy round on every node.
func (c *Cluster) SyncRound() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.SyncAll()
	}
	return total
}
