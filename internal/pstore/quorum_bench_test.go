package pstore

// Quorum fast-path latency benchmarks. The point of the streaming
// fan-out is that the slowest replica no longer sets client-visible
// latency, so the gate measures Get and Put against a healthy 3-way
// cluster and against the same cluster with one replica blackholed
// (connection up, bytes vanish — the worst straggler) and with one
// replica dead (prompt connection refusal).
//
// `make bench-pstore` runs TestBenchPstoreQuorum with
// ACE_BENCH_PSTORE=1 and writes the comparison to BENCH_pstore.json
// at the repo root. The degraded scenarios must stay under half the
// call timeout — before the fast-path, a blackholed replica pinned
// every operation to the full timeout. The plain test suite skips
// this so tier-1 runs stay fast and deterministic.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/chaos"
	"ace/internal/daemon"
	"ace/internal/pstore/storage"
	"ace/internal/telemetry"
)

const benchCallTimeout = time.Second

// benchPool mirrors the chaos-test pool: timeouts tight enough that a
// pre-fast-path regression (straggler-bound latency) trips the gate
// in milliseconds rather than minutes.
func benchPool(b testing.TB) *daemon.Pool {
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		DialTimeout:     300 * time.Millisecond,
		CallTimeout:     benchCallTimeout,
		MaxRetries:      -1,
		BreakerCooldown: time.Hour, // a blackholed replica must not flap mid-measurement
		Seed:            1,
		Telemetry:       telemetry.NewRegistry(),
	})
	b.Cleanup(pool.Close)
	return pool
}

// benchClient builds a 3-replica cluster for one scenario. degrade
// rewires or kills the third replica after the cluster is up.
func benchClient(b testing.TB, degrade func(b testing.TB, cluster *Cluster, addrs []string) []string) *Client {
	cluster, err := StartCluster(3, "", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.StopAll)
	addrs := cluster.Addrs()
	if degrade != nil {
		addrs = degrade(b, cluster, addrs)
	}
	client := NewClient(benchPool(b), addrs)
	b.Cleanup(client.Close)
	return client
}

func runQuorumOps(t testing.TB, client *Client) (getNs, putNs float64) {
	if _, err := client.Put("/bench/q", []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	get := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok, err := client.Get("/bench/q"); err != nil || !ok {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
		}
	})
	put := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.Put("/bench/q", []byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatalf("put: %v", err)
			}
		}
	})
	getNs = float64(get.T.Nanoseconds()) / float64(get.N)
	putNs = float64(put.T.Nanoseconds()) / float64(put.N)
	return getNs, putNs
}

// runBoundedGets measures the bounded-staleness read path. The
// preceding quorum traffic granted a freshness lease (and warmed the
// advisory lag samples), so on a healthy cluster nearly every read
// takes the single-replica route, re-validating through a quorum
// only when the lease ages out.
func runBoundedGets(t testing.TB, client *Client) float64 {
	ctx := context.Background()
	mode := ReadBounded(2 * time.Second)
	if _, _, ok, err := client.GetModeContext(ctx, "/bench/q", mode); err != nil || !ok {
		t.Fatalf("bounded warmup: ok=%v err=%v", ok, err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok, err := client.GetModeContext(ctx, "/bench/q", mode); err != nil || !ok {
				b.Fatalf("bounded get: ok=%v err=%v", ok, err)
			}
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// runConcurrentPuts measures put latency under writer concurrency —
// the shape group commit is built for: many writers share each fsync,
// so per-op cost approaches the in-memory quorum write.
func runConcurrentPuts(t testing.TB, client *Client) float64 {
	if _, err := client.Put("/bench/qc/0", []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	var ctr atomic.Int64
	res := testing.Benchmark(func(b *testing.B) {
		// Parallelism multiplies GOMAXPROCS, which may be 1 in CI
		// containers: keep enough writers in flight that the engine
		// always has a batch to fsync.
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := ctr.Add(1)
				path := fmt.Sprintf("/bench/qc/%d", i%16)
				if _, err := client.Put(path, []byte(fmt.Sprintf("v%d", i))); err != nil {
					b.Fatalf("put: %v", err)
				}
			}
		})
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// quorumBenchReport is one measured scenario in BENCH_pstore.json.
type quorumBenchReport struct {
	Scenario        string  `json:"scenario"`
	NsPerOpGet      float64 `json:"ns_per_op_get"`
	NsPerOpPut      float64 `json:"ns_per_op_put"`
	NsPerOpPutConc  float64 `json:"ns_per_op_put_concurrent,omitempty"`
	NsPerOpGetBound float64 `json:"ns_per_op_get_bounded,omitempty"`
	StaleViolations int64   `json:"staleness_violations,omitempty"`
}

// TestBenchPstoreQuorum is the gate behind `make bench-pstore`. It is
// skipped unless ACE_BENCH_PSTORE=1 so the regular test suite never
// pays for benchmarking.
func TestBenchPstoreQuorum(t *testing.T) {
	if os.Getenv("ACE_BENCH_PSTORE") == "" {
		t.Skip("set ACE_BENCH_PSTORE=1 (or run `make bench-pstore`) to measure quorum latency")
	}

	scenarios := []struct {
		name    string
		degrade func(b testing.TB, cluster *Cluster, addrs []string) []string
		gated   bool // degraded scenarios must beat callTimeout/2
	}{
		{name: "healthy"},
		{
			name: "one-blackholed",
			degrade: func(b testing.TB, _ *Cluster, addrs []string) []string {
				proxy, err := chaos.NewProxy(addrs[2], 1)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(proxy.Close)
				proxy.SetFaults(chaos.Faults{Blackhole: true})
				return []string{addrs[0], addrs[1], proxy.Addr()}
			},
			gated: true,
		},
		{
			name: "one-dead",
			degrade: func(_ testing.TB, cluster *Cluster, addrs []string) []string {
				cluster.Nodes[2].Stop()
				return addrs
			},
			gated: true,
		},
	}

	budget := float64(benchCallTimeout.Nanoseconds()) / 2
	var reports []quorumBenchReport
	var memPutConc float64
	for _, sc := range scenarios {
		client := benchClient(t, sc.degrade)
		getNs, putNs := runQuorumOps(t, client)
		t.Logf("%-16s get %12.0f ns/op   put %12.0f ns/op", sc.name, getNs, putNs)
		rep := quorumBenchReport{Scenario: sc.name, NsPerOpGet: getNs, NsPerOpPut: putNs}
		if sc.name == "healthy" {
			// Bounded-staleness read spectrum: with a freshness lease
			// granted by the quorum traffic above, a bounded GET is one
			// replica RTT instead of a three-way fan-out. The gate
			// demands at least the 2x the tentpole claims, with the
			// zero-violation guarantee intact (every violation is a
			// bounded reply that was discarded — on a healthy cluster
			// there must be none).
			boundedNs := runBoundedGets(t, client)
			rep.NsPerOpGetBound = boundedNs
			violations, _ := func() (int64, int64) { _, ctl := client.Staleness(); return ctl.Counters() }()
			rep.StaleViolations = violations
			t.Logf("%-16s get-bounded %12.0f ns/op (%.2fx quorum)", sc.name, boundedNs, boundedNs/getNs)
			if boundedNs > 0.5*getNs {
				t.Errorf("healthy: bounded Get %.0f ns/op is not under 0.5x quorum Get (%.0f ns/op) — the single-replica path is not engaging", boundedNs, getNs)
			}
			if violations != 0 {
				t.Errorf("healthy: %d staleness-bound violations — a lease holder regressed on a healthy cluster", violations)
			}
			// Concurrent in-memory baseline for the durable gate below.
			memPutConc = runConcurrentPuts(t, client)
			rep.NsPerOpPutConc = memPutConc
			t.Logf("%-16s put-concurrent %12.0f ns/op", sc.name, memPutConc)
		}
		reports = append(reports, rep)
		if sc.gated {
			if getNs > budget {
				t.Errorf("%s: Get %.0f ns/op exceeds callTimeout/2 (%.0f ns) — straggler sets quorum latency", sc.name, getNs, budget)
			}
			if putNs > budget {
				t.Errorf("%s: Put %.0f ns/op exceeds callTimeout/2 (%.0f ns) — straggler sets quorum latency", sc.name, putNs, budget)
			}
		}
	}

	// Durable scenario: the same healthy 3-way cluster, but every ack
	// costs a real fsync through the storage engine. The serial put is
	// informational (it pays a full fsync per op); the gate is the
	// concurrent put, where group commit must amortize fsyncs well
	// enough to land within 2x of the in-memory baseline.
	dir := t.TempDir()
	durCluster, err := StartCluster(3, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	durClient := NewClient(benchPool(t), durCluster.Addrs())
	getNs, putNs := runQuorumOps(t, durClient)
	durPutConc := runConcurrentPuts(t, durClient)
	durClient.Close()
	durCluster.StopAll()
	t.Logf("%-16s get %12.0f ns/op   put %12.0f ns/op   put-concurrent %12.0f ns/op", "durable", getNs, putNs, durPutConc)
	reports = append(reports, quorumBenchReport{Scenario: "durable", NsPerOpGet: getNs, NsPerOpPut: putNs, NsPerOpPutConc: durPutConc})
	// Two gates. The absolute one: concurrent durable puts land around
	// 2x the in-memory baseline (2.5x allowed: on a single shared disk
	// the three replicas' fsyncs serialize in one journal, which adds
	// jitter a per-node-disk deployment doesn't have). The relative
	// one: group commit must at least halve the serial per-put fsync
	// cost, or batching isn't happening at all.
	if durPutConc > 2.5*memPutConc {
		t.Errorf("durable: concurrent Put %.0f ns/op exceeds 2.5x in-memory baseline (%.0f ns/op) — group commit is not amortizing fsyncs", durPutConc, memPutConc)
	}
	if durPutConc > 0.55*putNs {
		t.Errorf("durable: concurrent Put %.0f ns/op is not under 0.55x serial durable Put (%.0f ns/op) — writers are paying private fsyncs", durPutConc, putNs)
	}

	// Recovery time: reopen one populated node directory and measure
	// how long the engine takes to hand back a servable state.
	recStart := time.Now()
	eng, recs, recInfo, err := storage.Open(filepath.Join(dir, "pstore1"), storage.Options{})
	if err != nil {
		t.Fatalf("recovery bench: %v", err)
	}
	recoveryMs := float64(time.Since(recStart).Microseconds()) / 1000
	_ = eng.Close()
	t.Logf("%-16s %d records (snapshot %d + replayed %d) in %.2f ms", "recovery", len(recs), recInfo.SnapshotRecords, recInfo.Replayed, recoveryMs)

	out := os.Getenv("ACE_BENCH_PSTORE_OUT")
	if out == "" {
		out = "BENCH_pstore.json"
	}
	payload := map[string]any{
		"benchmark":       "pstore-quorum",
		"date":            time.Now().UTC().Format(time.RFC3339),
		"call_timeout_ms": benchCallTimeout.Milliseconds(),
		"results":         reports,
		"recovery": map[string]any{
			"ms":               recoveryMs,
			"records":          len(recs),
			"snapshot_records": recInfo.SnapshotRecords,
			"replayed":         recInfo.Replayed,
		},
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
