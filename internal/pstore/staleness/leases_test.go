package staleness

import (
	"fmt"
	"testing"
	"time"
)

// fakeNow returns a controllable time source starting at a fixed
// instant, so expiry is driven deterministically.
func fakeNow() (func() time.Time, func(d time.Duration)) {
	cur := time.Unix(1_700_000_000, 0)
	return func() time.Time { return cur }, func(d time.Duration) { cur = cur.Add(d) }
}

func TestLeasesGrantAndExpiry(t *testing.T) {
	now, advance := fakeNow()
	l := NewLeases(0, now)

	at := now()
	l.Grant("/a", 3, []string{"r1", "r2"}, at)

	ver, gotAt, holders, ok := l.Holders("/a", time.Second)
	if !ok || ver != 3 || !gotAt.Equal(at) || len(holders) != 2 {
		t.Fatalf("fresh lease not returned: ver=%d at=%v holders=%v ok=%v", ver, gotAt, holders, ok)
	}

	advance(1500 * time.Millisecond)
	if _, _, _, ok := l.Holders("/a", time.Second); ok {
		t.Fatal("expired lease still returned")
	}
	if l.Len() != 0 {
		t.Fatalf("expired lease not lazily deleted: len=%d", l.Len())
	}
}

func TestLeasesVersionPrecedence(t *testing.T) {
	now, _ := fakeNow()
	l := NewLeases(0, now)
	t0 := now()

	l.Grant("/a", 5, []string{"r1", "r2"}, t0)
	// An older-version grant (a late quorum round) must not clobber.
	l.Grant("/a", 4, []string{"r3"}, t0.Add(time.Millisecond))
	if ver, _, holders, _ := l.Holders("/a", time.Minute); ver != 5 || holders[0] != "r1" {
		t.Fatalf("older-version grant clobbered lease: ver=%d holders=%v", ver, holders)
	}
	// Same version, newer observation: keep the newer grant time.
	l.Grant("/a", 5, []string{"r3"}, t0.Add(time.Second))
	if ver, at, holders, _ := l.Holders("/a", time.Minute); ver != 5 || !at.Equal(t0.Add(time.Second)) || holders[0] != "r3" {
		t.Fatalf("same-version newer grant ignored: ver=%d at=%v holders=%v", ver, at, holders)
	}
	// Same version, older observation: ignored.
	l.Grant("/a", 5, []string{"r9"}, t0)
	if _, _, holders, _ := l.Holders("/a", time.Minute); holders[0] == "r9" {
		t.Fatalf("same-version older grant clobbered lease: holders=%v", holders)
	}
	// Newer version always wins.
	l.Grant("/a", 6, []string{"r4"}, t0)
	if ver, _, holders, _ := l.Holders("/a", time.Minute); ver != 6 || holders[0] != "r4" {
		t.Fatalf("newer-version grant ignored: ver=%d holders=%v", ver, holders)
	}
}

func TestLeasesEmptyHoldersIgnored(t *testing.T) {
	now, _ := fakeNow()
	l := NewLeases(0, now)
	l.Grant("/a", 1, nil, now())
	if l.Len() != 0 {
		t.Fatal("empty-holder grant created a lease")
	}
}

func TestLeasesDropAndReset(t *testing.T) {
	now, _ := fakeNow()
	l := NewLeases(0, now)
	l.Grant("/a", 1, []string{"r1"}, now())
	l.Grant("/b", 1, []string{"r1"}, now())

	l.Drop("/a")
	if _, _, _, ok := l.Holders("/a", time.Minute); ok {
		t.Fatal("dropped lease still returned")
	}
	if _, _, _, ok := l.Holders("/b", time.Minute); !ok {
		t.Fatal("drop removed an unrelated lease")
	}

	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("reset left %d leases", l.Len())
	}
}

func TestLeasesCapEviction(t *testing.T) {
	now, advance := fakeNow()
	l := NewLeases(8, now)
	for i := 0; i < 8; i++ {
		l.Grant(fmt.Sprintf("/k%d", i), 1, []string{"r1"}, now())
		advance(time.Millisecond)
	}
	if l.Len() != 8 {
		t.Fatalf("precondition: len=%d", l.Len())
	}
	// A grant for a new path at capacity evicts one sampled entry
	// rather than growing without bound.
	l.Grant("/overflow", 1, []string{"r1"}, now())
	if l.Len() != 8 {
		t.Fatalf("cap not enforced: len=%d", l.Len())
	}
	if _, _, _, ok := l.Holders("/overflow", time.Minute); !ok {
		t.Fatal("new grant lost at capacity")
	}
	// Re-granting an existing path at capacity must not evict.
	l.Grant("/overflow", 2, []string{"r2"}, now())
	if l.Len() != 8 {
		t.Fatalf("replacement grant changed len: %d", l.Len())
	}
}

func TestLeasesHoldersCopiedOnGrant(t *testing.T) {
	now, _ := fakeNow()
	l := NewLeases(0, now)
	hs := []string{"r1", "r2"}
	l.Grant("/a", 1, hs, now())
	hs[0] = "clobbered"
	if _, _, got, _ := l.Holders("/a", time.Minute); got[0] != "r1" {
		t.Fatalf("lease aliases caller slice: %v", got)
	}
}
