package staleness

import (
	"sync"
	"testing"
	"time"

	"ace/internal/hlc"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func ts(ms int64) hlc.Timestamp { return hlc.Make(ms, 0) }

func TestTrackerIdleClusterHasZeroLag(t *testing.T) {
	fc := &fakeClock{t: time.UnixMilli(0)}
	tr := NewTracker(time.Second, fc.now)
	// Nothing written anywhere: a replica advertising watermark zero
	// is perfectly fresh — lag is measured against the frontier, not
	// the wall clock.
	tr.ObserveApplied("a", 0)
	lag, ok := tr.Lag("a")
	if !ok || lag != 0 {
		t.Fatalf("idle lag = %v ok=%v, want 0 true", lag, ok)
	}
	if addr, ok := tr.Best([]string{"a"}, 0); !ok || addr != "a" {
		t.Fatalf("Best = %q %v", addr, ok)
	}
}

func TestTrackerLagAgainstFrontier(t *testing.T) {
	fc := &fakeClock{t: time.UnixMilli(0)}
	tr := NewTracker(time.Minute, fc.now)
	tr.ObserveWrite(ts(1000)) // our write is the frontier
	tr.ObserveApplied("fresh", ts(1000))
	tr.ObserveApplied("behind", ts(400))
	if lag, ok := tr.Lag("fresh"); !ok || lag != 0 {
		t.Fatalf("fresh lag = %v ok=%v", lag, ok)
	}
	if lag, ok := tr.Lag("behind"); !ok || lag != 600*time.Millisecond {
		t.Fatalf("behind lag = %v ok=%v, want 600ms", lag, ok)
	}
	// Best picks the freshest eligible replica under the bound.
	if addr, ok := tr.Best([]string{"behind", "fresh"}, 100*time.Millisecond); !ok || addr != "fresh" {
		t.Fatalf("Best = %q %v", addr, ok)
	}
	if _, ok := tr.Best([]string{"behind"}, 100*time.Millisecond); ok {
		t.Fatal("behind replica passed a 100ms bound")
	}
	if addr, ok := tr.Best([]string{"behind"}, time.Second); !ok || addr != "behind" {
		t.Fatalf("behind should pass a 1s bound: %q %v", addr, ok)
	}
}

func TestTrackerSampleAgePenaltyAndExpiry(t *testing.T) {
	fc := &fakeClock{t: time.UnixMilli(0)}
	tr := NewTracker(time.Second, fc.now)
	tr.ObserveWrite(ts(1000))
	tr.ObserveApplied("a", ts(1000))
	fc.advance(300 * time.Millisecond)
	// The sample is 300ms old: the replica may have fallen that far
	// behind since, so the estimate charges the age.
	if lag, ok := tr.Lag("a"); !ok || lag != 300*time.Millisecond {
		t.Fatalf("aged lag = %v ok=%v, want 300ms", lag, ok)
	}
	fc.advance(800 * time.Millisecond) // now past the 1s window
	if _, ok := tr.Lag("a"); ok {
		t.Fatal("expired sample still eligible")
	}
	if _, ok := tr.Best([]string{"a"}, time.Hour); ok {
		t.Fatal("Best served an expired sample")
	}
}

func TestTrackerWorstLagInWindowSticks(t *testing.T) {
	fc := &fakeClock{t: time.UnixMilli(0)}
	tr := NewTracker(10*time.Second, fc.now)
	tr.ObserveWrite(ts(2000))
	tr.ObserveApplied("a", ts(500)) // 1500ms behind
	fc.advance(100 * time.Millisecond)
	tr.ObserveApplied("a", ts(2000)) // caught up
	// The conservative estimate keeps the worst lag seen in the
	// window: a replica that oscillates is judged by its bad moments.
	if lag, ok := tr.Lag("a"); !ok || lag < 1500*time.Millisecond {
		t.Fatalf("worst-in-window lag = %v ok=%v, want >= 1.5s", lag, ok)
	}
}

func TestTrackerUnknownReplica(t *testing.T) {
	tr := NewTracker(0, nil)
	if _, ok := tr.Lag("never-seen"); ok {
		t.Fatal("unknown replica reported a lag")
	}
	if _, ok := tr.Best([]string{"never-seen"}, time.Hour); ok {
		t.Fatal("unknown replica eligible")
	}
}

func TestControllerAIMD(t *testing.T) {
	fc := &fakeClock{t: time.UnixMilli(0)}
	c := NewController(ControllerConfig{Cooldown: time.Millisecond, Now: fc.now})
	if c.Share() != 1 {
		t.Fatalf("initial share = %v", c.Share())
	}
	// Full share admits everything.
	for i := 0; i < 10; i++ {
		if !c.Allow() {
			t.Fatal("full share denied a read")
		}
	}
	// A violation cuts hard.
	c.Violation()
	if s := c.Share(); s != 0.25 {
		t.Fatalf("post-violation share = %v, want 0.25", s)
	}
	// Deterministic token accumulation: share 0.25 admits exactly one
	// in four.
	admitted := 0
	for i := 0; i < 40; i++ {
		if c.Allow() {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("share 0.25 admitted %d/40, want 10", admitted)
	}
	// Cooldown coalesces a burst of cuts into one.
	c2 := NewController(ControllerConfig{Cooldown: time.Hour, Now: fc.now})
	c2.Violation()
	c2.Violation()
	c2.Redirect()
	if s := c2.Share(); s != 0.25 {
		t.Fatalf("burst share = %v, want one cut (0.25)", s)
	}
	if v, cuts := c2.Counters(); v != 2 || cuts != 1 {
		t.Fatalf("counters = %d violations %d cuts", v, cuts)
	}
	// Successes widen additively back toward 1.
	for i := 0; i < 64; i++ {
		c.Success()
	}
	if s := c.Share(); s != 1 {
		t.Fatalf("recovered share = %v, want 1", s)
	}
	// The floor keeps probing alive.
	fl := NewController(ControllerConfig{Cooldown: time.Nanosecond, Now: fc.now})
	for i := 0; i < 100; i++ {
		fc.advance(time.Millisecond)
		fl.Violation()
	}
	if s := fl.Share(); s < 1.0/64-1e-9 || s > 1.0/16 {
		t.Fatalf("floored share = %v", s)
	}
	saw := false
	for i := 0; i < 200; i++ {
		if fl.Allow() {
			saw = true
		}
	}
	if !saw {
		t.Fatal("floored controller never probes")
	}
}

func TestTrackerConcurrency(t *testing.T) {
	tr := NewTracker(time.Second, nil)
	c := NewController(ControllerConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := []string{"a", "b", "c"}[g%3]
			for i := 0; i < 500; i++ {
				tr.ObserveWrite(ts(int64(i)))
				tr.ObserveApplied(addr, ts(int64(i)))
				tr.Lag(addr)
				tr.Best([]string{"a", "b", "c"}, time.Second)
				if c.Allow() {
					c.Success()
				} else {
					c.Redirect()
				}
			}
		}(g)
	}
	wg.Wait()
}
