package staleness

import (
	"sync"
	"time"
)

// Leases is the proof side of bounded-staleness reads: a per-path
// table of quorum-validated freshness observations. An entry records
// that at time `at`, a quorum round (a quorum read, or this client's
// own quorum write) established `version` as the newest committed
// version of `path`, and that every replica in `holders` answered
// that round holding it.
//
// The soundness argument is deliberately independent of clocks on
// other machines: a quorum intersects the write majority of every
// committed write, so a holder could only be missing writes committed
// AFTER the validating round began. A single-replica read served from
// a holder within Δ of `at` (both readings of this process's own
// clock) is therefore missing at most Δ of history — no matter how
// skewed the replicas' clocks are, and no matter which unrelated
// writes the replica has or has not applied. This is what the
// max-applied HLC watermark cannot provide: a watermark is a maximum,
// not a prefix guarantee, so it can run ahead of gaps; a lease names
// the exact path it vouches for.
//
// Leases are granted by quorum traffic, never by bounded reads
// themselves, so the bounded path re-validates through a real quorum
// at least once per Δ. All methods are safe for concurrent use.
type Leases struct {
	now func() time.Time
	cap int

	mu      sync.Mutex
	entries map[string]lease
}

type lease struct {
	version uint64
	at      time.Time
	holders []string
}

// DefaultLeaseCap bounds the lease table when NewLeases is given a
// non-positive capacity. Past the cap, grants evict the oldest of a
// small sample of entries — eviction only costs quorum fallbacks,
// never correctness.
const DefaultLeaseCap = 4096

// leaseEvictProbes is how many entries a full table samples when
// choosing an eviction victim (oldest of the sample goes).
const leaseEvictProbes = 8

// NewLeases builds a lease table. capacity bounds the entry count
// (non-positive = DefaultLeaseCap); now injects the time source used
// for expiry (nil = time.Now).
func NewLeases(capacity int, now func() time.Time) *Leases {
	if capacity <= 0 {
		capacity = DefaultLeaseCap
	}
	if now == nil {
		now = time.Now
	}
	return &Leases{now: now, cap: capacity, entries: make(map[string]lease)}
}

// Grant records a quorum-validated observation: every replica in
// holders held version at time at (the START of the validating round
// — a write's version probe, a read's fan-out launch — so that any
// write the holders could be missing is provably younger than at). A
// grant at an older version than the recorded one is ignored; equal
// versions keep the newer observation.
func (l *Leases) Grant(path string, version uint64, holders []string, at time.Time) {
	if len(holders) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, exists := l.entries[path]
	if exists && (version < cur.version || (version == cur.version && !at.After(cur.at))) {
		return
	}
	if !exists && len(l.entries) >= l.cap {
		l.evictLocked()
	}
	l.entries[path] = lease{version: version, at: at, holders: append([]string(nil), holders...)}
}

// evictLocked removes the oldest of a small sample of entries (map
// iteration order is an adequate random sample).
func (l *Leases) evictLocked() {
	var victim string
	var oldest time.Time
	probes := 0
	for p, e := range l.entries {
		if probes == 0 || e.at.Before(oldest) {
			victim, oldest = p, e.at
		}
		probes++
		if probes >= leaseEvictProbes {
			break
		}
	}
	if probes > 0 {
		delete(l.entries, victim)
	}
}

// Holders returns the lease for path when one exists and is younger
// than maxAge: the validated version, the grant time (callers re-check
// expiry against it after the wire round-trip), and the replicas
// proven to hold the version. Expired entries are dropped. The
// returned slice is owned by the table; callers must not mutate it.
func (l *Leases) Holders(path string, maxAge time.Duration) (version uint64, at time.Time, holders []string, ok bool) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	e, exists := l.entries[path]
	if !exists {
		return 0, time.Time{}, nil, false
	}
	if now.Sub(e.at) > maxAge {
		delete(l.entries, path)
		return 0, time.Time{}, nil, false
	}
	return e.version, e.at, e.holders, true
}

// Drop retires the lease for path: a deletion, a not-found answer, or
// a version regression from a holder all mean the observation no
// longer describes the cluster.
func (l *Leases) Drop(path string) {
	l.mu.Lock()
	delete(l.entries, path)
	l.mu.Unlock()
}

// Reset drops every lease. The sharded router calls it when a
// placement epoch changes: partitions may have moved, so holder sets
// recorded under the old map no longer name serving replicas.
func (l *Leases) Reset() {
	l.mu.Lock()
	l.entries = make(map[string]lease)
	l.mu.Unlock()
}

// Len returns the current entry count.
func (l *Leases) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
