// Package staleness is the client half of pstore's bounded-staleness
// read machinery, split into a proof and a screen:
//
//   - Leases (leases.go) carry the proof. A quorum round pins which
//     replicas held the newest committed version of a path as of the
//     round's start; a single-replica read served from a holder
//     within Δ of that instant is at most Δ stale, by quorum
//     intersection, on this process's own clock — sound under
//     arbitrary replica clock skew.
//   - The Tracker is an advisory per-replica lag estimator fed by
//     the max-applied HLC watermarks nodes attach to every data and
//     digest reply. It chooses among lease holders and fails reads
//     over to the quorum path when skew, partition, or silence makes
//     a replica look behind. It is deliberately NOT the proof: a
//     max-applied watermark is a maximum, not a prefix guarantee, so
//     it can run ahead of a gap (a missed write to the very key
//     being read) — which is why leases exist.
//   - An AIMD Controller decides how much read traffic may leave the
//     quorum path at all, narrowing sharply on any sign of trouble.
//
// The Tracker's frame of reference is the write frontier — the
// maximum HLC stamp this client has observed anywhere (its own
// writes, any replica's watermark) — NOT the local wall clock. An
// idle cluster therefore shows zero lag everywhere: nothing was
// written, so nothing can be stale. A replica's estimated lag is how
// far its last advertised watermark trails the frontier, plus the age
// of that sample (the replica may have fallen further behind since it
// last answered us). Samples decay: a replica we have not heard from
// within the window is not eligible for bounded reads at all, and
// the quorum fallback that causes is also what refreshes the sample.
package staleness

import (
	"sync"
	"time"

	"ace/internal/hlc"
)

// Metric names for the client-side staleness estimator, recorded in
// the registry of the pool the pstore client dials through.
const (
	// MetricSamples counts watermark observations folded into the
	// tracker (one per stamped reply).
	MetricSamples = "pstore.staleness.samples"
	// MetricViolations counts bounded replies that contradicted their
	// freshness lease: the replica answered with a version below the
	// one a quorum proved it held, meaning it lost state. Each one was
	// discarded and re-run as a quorum read (never served) — the
	// counter must stay zero for the zero-violation guarantee, and any
	// tick multiplicatively narrows the controller and drops the lease.
	MetricViolations = "pstore.staleness.violations"
	// MetricShare is the AIMD controller's current bounded-read share,
	// in thousandths (1000 = every eligible read may go bounded).
	MetricShare = "pstore.staleness.share"
)

// DefaultWindow is the sample-validity window when a Tracker is built
// with zero: replicas not heard from within it are ineligible.
const DefaultWindow = 5 * time.Second

// replicaState is the sliding-window estimate for one replica: the
// newest watermark sample and the worst lag observed inside the
// window (the conservative figure eligibility uses — a replica that
// oscillates between fresh and stale is judged by its stale moments).
type replicaState struct {
	applied  hlc.Timestamp // newest advertised watermark
	at       time.Time     // when it was observed
	worstLag time.Duration // max lag over samples in the window
	worstAt  time.Time     // when worstLag was observed
}

// Tracker maintains the write frontier and per-replica lag estimates.
// Estimates are advisory: they select replicas and force conservative
// fallbacks, while the staleness bound itself is proven by the Leases
// table. All methods are safe for concurrent use.
type Tracker struct {
	now    func() time.Time
	window time.Duration

	mu       sync.Mutex
	frontier hlc.Timestamp
	replicas map[string]*replicaState
}

// NewTracker builds a Tracker. window is the sample validity horizon
// (zero = DefaultWindow); now injects the time source (nil =
// time.Now) so chaos tests can drive decay deterministically.
func NewTracker(window time.Duration, now func() time.Time) *Tracker {
	if window <= 0 {
		window = DefaultWindow
	}
	if now == nil {
		now = time.Now
	}
	return &Tracker{now: now, window: window, replicas: make(map[string]*replicaState)}
}

// ObserveWrite folds one of this client's own write stamps into the
// frontier: anything we wrote is something replicas can lag behind.
func (t *Tracker) ObserveWrite(ts hlc.Timestamp) {
	if ts.IsZero() {
		return
	}
	t.mu.Lock()
	if ts > t.frontier {
		t.frontier = ts
	}
	t.mu.Unlock()
}

// ObserveApplied folds a replica's advertised watermark into its lag
// estimate (and into the frontier — a watermark is proof those writes
// exist). Zero watermarks from an empty replica still refresh the
// sample time: an empty replica of an empty store is perfectly fresh.
func (t *Tracker) ObserveApplied(addr string, applied hlc.Timestamp) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if applied > t.frontier {
		t.frontier = applied
	}
	st := t.replicas[addr]
	if st == nil {
		st = &replicaState{}
		t.replicas[addr] = st
	}
	if applied > st.applied {
		st.applied = applied
	}
	st.at = now
	lag := t.frontier.Sub(st.applied)
	if lag < 0 {
		lag = 0
	}
	if lag >= st.worstLag || now.Sub(st.worstAt) > t.window {
		st.worstLag, st.worstAt = lag, now
	}
}

// Frontier returns the maximum HLC stamp observed anywhere.
func (t *Tracker) Frontier() hlc.Timestamp {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frontier
}

// Lag returns the conservative lag estimate for addr and whether a
// sample inside the validity window exists at all. The estimate is
// the worst lag seen in the window plus the age of the newest sample:
// the replica may have fallen further behind since it last answered.
func (t *Tracker) Lag(addr string) (time.Duration, bool) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lagLocked(addr, now)
}

func (t *Tracker) lagLocked(addr string, now time.Time) (time.Duration, bool) {
	st := t.replicas[addr]
	if st == nil {
		return 0, false
	}
	age := now.Sub(st.at)
	if age > t.window {
		return 0, false
	}
	lag := t.frontier.Sub(st.applied)
	if lag < 0 {
		lag = 0
	}
	if now.Sub(st.worstAt) <= t.window && st.worstLag > lag {
		lag = st.worstLag
	}
	if age > 0 {
		lag += age
	}
	return lag, true
}

// Best returns the replica among addrs with the smallest estimated
// lag not exceeding bound. ok is false when no replica's bound can be
// proven — the caller must fall back to a quorum read.
func (t *Tracker) Best(addrs []string, bound time.Duration) (string, bool) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	best, bestLag, ok := "", time.Duration(0), false
	for _, a := range addrs {
		lag, fresh := t.lagLocked(a, now)
		if !fresh || lag > bound {
			continue
		}
		if !ok || lag < bestLag {
			best, bestLag, ok = a, lag, true
		}
	}
	return best, ok
}
