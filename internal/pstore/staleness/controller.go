package staleness

import (
	"sync"
	"time"
)

// ControllerConfig tunes a Controller. Zero fields take the defaults
// noted on each field.
type ControllerConfig struct {
	// Initial seeds the bounded-read share in (0,1] (default 1.0:
	// start trusting, narrow on evidence).
	Initial float64
	// Min floors the share (default 1/64): the controller never stops
	// probing entirely, or it could not discover recovery.
	Min float64
	// Increase is the additive step per successful bounded read
	// (default 1/32 — reusing the "about one step per round of
	// successes" shape of internal/flow's AIMD limiter).
	Increase float64
	// ViolationFactor is the multiplicative cut when a lease holder
	// answered below its quorum-proven version (default 0.25 —
	// violations mean a replica lost state, so back off hard).
	ViolationFactor float64
	// RedirectFactor is the multiplicative cut when a bounded read hit
	// a placement redirect or transport failure (default 0.5).
	RedirectFactor float64
	// Cooldown spaces multiplicative cuts: one bad burst costs one
	// backoff, not one per in-flight read (default 100ms).
	Cooldown time.Duration
	// Now injects the time source for cooldown spacing (nil =
	// time.Now).
	Now func() time.Time
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Initial <= 0 || c.Initial > 1 {
		c.Initial = 1
	}
	if c.Min <= 0 || c.Min > 1 {
		c.Min = 1.0 / 64
	}
	if c.Increase <= 0 {
		c.Increase = 1.0 / 32
	}
	if c.ViolationFactor <= 0 || c.ViolationFactor >= 1 {
		c.ViolationFactor = 0.25
	}
	if c.RedirectFactor <= 0 || c.RedirectFactor >= 1 {
		c.RedirectFactor = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Controller is the AIMD widen-back-to-quorum valve for bounded
// reads: it maintains a share in [Min,1] of eligible reads that may
// actually leave the quorum path. While bounded reads keep proving
// their bounds the share creeps up additively; a staleness violation
// or a spike of redirects cuts it multiplicatively, so a sick
// estimator (or a rebalancing cluster) sends traffic back to the
// quorum path long before it can do damage. Admission is a
// deterministic token accumulator — share 0.25 admits exactly every
// fourth eligible read — so chaos tests reproduce run-to-run.
type Controller struct {
	cfg ControllerConfig

	mu         sync.Mutex
	share      float64
	acc        float64
	lastCut    time.Time
	violations int64
	cuts       int64
}

// NewController builds a Controller from cfg.
func NewController(cfg ControllerConfig) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, share: cfg.Initial}
}

// Allow reports whether the next eligible read may go bounded.
func (c *Controller) Allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acc += c.share
	if c.acc >= 1 {
		c.acc--
		return true
	}
	return false
}

// Success records a bounded read whose bound held: additive increase.
func (c *Controller) Success() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.share += c.cfg.Increase
	if c.share > 1 {
		c.share = 1
	}
}

// Violation records a lease holder contradicting its quorum-proven
// version: hard multiplicative cut.
func (c *Controller) Violation() {
	c.cut(c.cfg.ViolationFactor, true)
}

// Redirect records a placement redirect or transport failure on the
// bounded path: multiplicative cut (softer than a violation).
func (c *Controller) Redirect() {
	c.cut(c.cfg.RedirectFactor, false)
}

func (c *Controller) cut(factor float64, violation bool) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if violation {
		c.violations++
	}
	if now.Sub(c.lastCut) < c.cfg.Cooldown {
		return
	}
	c.share *= factor
	if c.share < c.cfg.Min {
		c.share = c.cfg.Min
	}
	c.lastCut = now
	c.cuts++
}

// Share returns the current bounded-read share.
func (c *Controller) Share() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.share
}

// Counters returns lifetime violation and multiplicative-cut counts.
func (c *Controller) Counters() (violations, cuts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violations, c.cuts
}
