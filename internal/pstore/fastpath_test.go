package pstore

// Unit tests for the streaming quorum fast-path: the winner is fixed
// as soon as a majority has answered, stragglers are cancelled rather
// than ridden to their timeout, malformed replicas (negative
// versions, bogus list replies) are failures instead of quorum
// members, and background read repair is bounded.

import (
	"bytes"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/telemetry"
)

// startStallReplica runs a daemon speaking the replica protocol whose
// every request blocks until the returned release channel is closed —
// an in-process stand-in for a blackholed replica. The release is
// registered as a cleanup so a stuck handler can't wedge shutdown.
func startStallReplica(t *testing.T) *daemon.Daemon {
	t.Helper()
	release := make(chan struct{})
	d := daemon.New(daemon.Config{Name: "stall_replica"})
	block := func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		<-release
		return cmdlang.Fail(cmdlang.CodeUnavailable, "stalled"), nil
	}
	for _, verb := range []string{"psget", "psfetch", "psput", "psdel", "pslist"} {
		d.Handle(cmdlang.CommandSpec{Name: verb, AllowExtra: true}, block)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	t.Cleanup(func() { close(release) }) // LIFO: unblocks handlers before d.Stop
	return d
}

// telemetryPool builds a pool with a registry (so pstore.* instruments
// are observable) and a deliberately long call timeout: if the fast
// path ever waits for a straggler, the timing assertions blow up.
func telemetryPool(t *testing.T, callTimeout time.Duration) (*daemon.Pool, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{
		CallTimeout: callTimeout,
		MaxRetries:  -1,
		Seed:        1,
		Telemetry:   reg,
	})
	t.Cleanup(pool.Close)
	return pool, reg
}

// TestFastPathDecidesBeforeStraggler: with two healthy replicas and
// one that never answers, quorum Get and Put decide at the healthy
// majority in a fraction of the call timeout, the stalled replica is
// counted as a straggler, and its cancelled call does not keep Close
// waiting for the timeout either.
func TestFastPathDecidesBeforeStraggler(t *testing.T) {
	cluster, err := StartCluster(2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	const callTimeout = 5 * time.Second
	pool, reg := telemetryPool(t, callTimeout)

	// Seed through the healthy pair (its own majority).
	seed := NewClient(pool, cluster.Addrs())
	if _, err := seed.Put("/fp/x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	stall := startStallReplica(t)
	mixed := NewClient(pool, append(cluster.Addrs(), stall.Addr()))

	start := time.Now()
	got, ver, ok, err := mixed.Get("/fp/x")
	if err != nil || !ok || ver != 1 || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("fast-path read: got=%q ver=%d ok=%v err=%v", got, ver, ok, err)
	}
	if _, err := mixed.Put("/fp/x", []byte("v2")); err != nil {
		t.Fatalf("fast-path write: %v", err)
	}
	// The straggler's calls were cancelled, so draining them is quick:
	// read + write + drain all land far inside the call timeout.
	mixed.Close()
	if elapsed := time.Since(start); elapsed > callTimeout/2 {
		t.Fatalf("read+write+drain took %v with a stalled replica (timeout %v); stragglers not cancelled", elapsed, callTimeout)
	}

	snap := reg.Snapshot()
	if n := snap.Counter(MetricReadStragglers); n < 1 {
		t.Errorf("read stragglers = %d, want >= 1", n)
	}
	if n := snap.Counter(MetricWriteStragglers); n < 2 { // version probe + write fan-out
		t.Errorf("write stragglers = %d, want >= 2", n)
	}
	if hp, ok := snap.Histogram(MetricReadLatencyFull); !ok || hp.Count < 1 {
		t.Errorf("full-fanout read latency not observed: %+v ok=%v", hp, ok)
	}
	if hp, ok := snap.Histogram(MetricWriteLatencyFull); !ok || hp.Count < 1 {
		t.Errorf("full-fanout write latency not observed: %+v ok=%v", hp, ok)
	}
}

// startNegativeVersionReplica runs a rogue replica that answers every
// read with version=-1 — the corrupt reply that used to wrap to
// ~1.8e19 and win every quorum.
func startNegativeVersionReplica(t *testing.T) *daemon.Daemon {
	t.Helper()
	d := daemon.New(daemon.Config{Name: "negative_replica"})
	corrupt := func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().SetString("value", "aa").SetInt("version", -1), nil
	}
	d.Handle(cmdlang.CommandSpec{Name: "psget", AllowExtra: true}, corrupt)
	d.Handle(cmdlang.CommandSpec{Name: "psfetch", AllowExtra: true}, corrupt)
	d.Handle(cmdlang.CommandSpec{Name: "psput", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().SetBool("applied", true), nil
		})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestNegativeVersionIsCorruptReplica: a replica answering
// version=-1 must be treated exactly like one answering bad hex — a
// failed replica that neither wins the read nor poisons the write
// path's version probe.
func TestNegativeVersionIsCorruptReplica(t *testing.T) {
	cluster, err := StartCluster(2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool, _ := telemetryPool(t, time.Second)

	seed := NewClient(pool, cluster.Addrs())
	if _, err := seed.Put("/neg/x", []byte("truth")); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	rogue := startNegativeVersionReplica(t)
	mixed := NewClient(pool, append(cluster.Addrs(), rogue.Addr()))
	defer mixed.Close()

	got, ver, ok, err := mixed.Get("/neg/x")
	if err != nil || !ok || ver != 1 || !bytes.Equal(got, []byte("truth")) {
		t.Fatalf("negative-version replica skewed the read: got=%q ver=%d ok=%v err=%v", got, ver, ok, err)
	}
	// GetAny walks past the rogue instead of returning the wrapped
	// version (the rogue is listed first here).
	any := NewClient(pool, append([]string{rogue.Addr()}, cluster.Addrs()...))
	defer any.Close()
	got, ver, ok, err = any.GetAny("/neg/x")
	if err != nil || !ok || ver != 1 || !bytes.Equal(got, []byte("truth")) {
		t.Fatalf("GetAny trusted a negative version: got=%q ver=%d ok=%v err=%v", got, ver, ok, err)
	}
	// The version probe must not be poisoned: the next Put gets
	// version 2, not ~1.8e19+1.
	v2, err := mixed.Put("/neg/x", []byte("truth2"))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("next version = %d, want 2 (probe poisoned)", v2)
	}
}

// TestNodeRejectsNegativeVersions: the store node itself refuses
// negative versions on psput/psdel, and anti-entropy refuses to pull
// from a peer advertising them.
func TestNodeRejectsNegativeVersions(t *testing.T) {
	cluster, _ := startCluster(t, 1, "")
	addr := cluster.Nodes[0].Addr()
	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)

	put := cmdlang.New("psput").SetString("path", "/neg/n").SetString("value", "aa").SetInt("version", -5)
	if _, err := pool.Call(addr, put); !cmdlang.IsRemoteCode(err, cmdlang.CodeBadArgument) {
		t.Fatalf("psput version=-5: err=%v, want bad_argument", err)
	}
	del := cmdlang.New("psdel").SetString("path", "/neg/n").SetInt("version", -5)
	if _, err := pool.Call(addr, del); !cmdlang.IsRemoteCode(err, cmdlang.CodeBadArgument) {
		t.Fatalf("psdel version=-5: err=%v, want bad_argument", err)
	}

	// A peer whose digest advertises a negative version aborts the
	// sync pull instead of propagating the poison.
	rogue := daemon.New(daemon.Config{Name: "negative_peer"})
	rogue.Handle(cmdlang.CommandSpec{Name: "psdigest", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			return cmdlang.OK().
				Set("paths", cmdlang.StringVector("/neg/p")).
				Set("versions", cmdlang.IntVector(-3)), nil
		})
	if err := rogue.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rogue.Stop)
	if _, err := cluster.Nodes[0].SyncWith(rogue.Addr()); err == nil {
		t.Fatal("SyncWith accepted a negative digest version")
	}
}

// TestReadRepairBoundedAndDropped: when the repair concurrency bound
// is exhausted, further repairs are dropped and counted instead of
// piling up goroutines.
func TestReadRepairBoundedAndDropped(t *testing.T) {
	cluster, err := StartCluster(2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool, reg := telemetryPool(t, time.Second)
	client := NewClient(pool, cluster.Addrs())

	if _, err := client.Put("/rrb", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// Advance replica 1 only, leaving replica 2 stale at v1, and make
	// the third replica a stall: the read quorum is then guaranteed to
	// be {fresh, stale}, so the stale laggard is seen at decision time
	// (a cancelled straggler's reply might lose the race and never be
	// repair-eligible — this arrangement is deterministic).
	if !cluster.Nodes[0].apply(Item{Path: "/rrb", Value: []byte("v2"), Version: 2}) {
		t.Fatal("direct apply failed")
	}
	stall := startStallReplica(t)
	mixed := NewClient(pool, append(cluster.Addrs(), stall.Addr()))
	defer mixed.Close()

	// Saturate the repair semaphore: the read below must drop its
	// repair rather than block or exceed the bound.
	for i := 0; i < cap(mixed.repairSem); i++ {
		mixed.repairSem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(mixed.repairSem); i++ {
			<-mixed.repairSem
		}
	}()

	if _, ver, ok, err := mixed.Get("/rrb"); err != nil || !ok || ver != 2 {
		t.Fatalf("read: ver=%d ok=%v err=%v", ver, ok, err)
	}
	// The stale quorum member's repair was attempted (and dropped)
	// before Get returned.
	if got := reg.Snapshot().Counter(MetricRepairsDropped); got < 1 {
		t.Fatalf("repairs dropped = %d, want >= 1", got)
	}
	if got := reg.Snapshot().Counter(MetricReadRepairs); got != 0 {
		t.Fatalf("repairs started despite saturated bound: %d", got)
	}
}

// TestListCountsOnlyWellFormedReplies: a replica whose pslist reply is
// malformed is failed, not counted as an (empty) reachable member,
// and the probes run through the fan-out rather than sequentially.
func TestListCountsOnlyWellFormedReplies(t *testing.T) {
	pool, _ := telemetryPool(t, time.Second)

	rogue := daemon.New(daemon.Config{Name: "bogus_list_replica"})
	rogue.Handle(cmdlang.CommandSpec{Name: "pslist", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			// count disagrees with the paths vector: malformed.
			return cmdlang.OK().SetInt("count", 3).Set("paths", cmdlang.StringVector("/bogus")), nil
		})
	if err := rogue.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rogue.Stop)

	// Only the malformed replica: List must report nothing reachable.
	alone := NewClient(pool, []string{rogue.Addr()})
	defer alone.Close()
	if _, err := alone.List("/"); err == nil {
		t.Fatal("List counted a malformed reply as reachable")
	}

	// Malformed replica alongside healthy ones: the union is served by
	// the healthy set and the bogus path never appears.
	cluster, err := StartCluster(2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	seed := NewClient(pool, cluster.Addrs())
	defer seed.Close()
	if _, err := seed.Put("/l/a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	mixed := NewClient(pool, append(cluster.Addrs(), rogue.Addr()))
	defer mixed.Close()
	paths, err := mixed.List("/l/")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "/l/a" {
		t.Fatalf("paths = %v, want [/l/a]", paths)
	}
}

// TestFastPathFailsClosedPromptly: once enough replicas have failed
// that a quorum is impossible, the operation fails immediately — it
// does not wait for the remaining replicas to resolve.
func TestFastPathFailsClosedPromptly(t *testing.T) {
	cluster, err := StartCluster(1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	const callTimeout = 5 * time.Second
	pool, _ := telemetryPool(t, callTimeout)

	// One live node plus two dead addresses: once the second dead
	// replica fails, a quorum of 2/3 is arithmetically impossible and
	// the call must fail right then, not after the call timeout.
	dead1 := daemon.New(daemon.Config{Name: "dead1"})
	if err := dead1.Start(); err != nil {
		t.Fatal(err)
	}
	dead1Addr := dead1.Addr()
	dead1.Stop()
	dead2 := daemon.New(daemon.Config{Name: "dead2"})
	if err := dead2.Start(); err != nil {
		t.Fatal(err)
	}
	dead2Addr := dead2.Addr()
	dead2.Stop()

	client := NewClient(pool, []string{cluster.Nodes[0].Addr(), dead1Addr, dead2Addr})
	defer client.Close()
	start := time.Now()
	if _, _, _, err := client.Get("/ff/x"); err == nil {
		t.Fatal("minority read reported a quorum")
	}
	if _, err := client.Put("/ff/x", []byte("v")); err == nil {
		t.Fatal("minority write succeeded")
	}
	if elapsed := time.Since(start); elapsed > callTimeout/2 {
		t.Fatalf("fail-closed took %v; not prompt", elapsed)
	}
}
