package pstore

// Metric names recorded by the persistent store, in addition to the
// shell's own daemon.* and wire.* instruments. The pstore.sync.* and
// pstore.writes.* series live in each node's registry; the quorum
// latency histograms, straggler counters, and read-repair instruments
// live in the registry of the pool the Client dials through.
//
// The latency histograms come in fast-path/full-fanout pairs: the
// fast-path series (pstore.read.latency, pstore.write.latency)
// observes the time until the quorum outcome was decided — what the
// caller actually waits — while the _full series observes the time
// until the last replica of a fan-out resolved, straggler timeouts
// included. A widening gap between the two is a sick replica. The
// full series is observed once per fan-out, so a Put contributes two
// points (version probe + write) under pstore.write.latency_full.
//
// Straggler counters count replica calls that were still unresolved
// when the quorum outcome was decided (and were therefore cancelled);
// the probe and write halves of a Put/Delete both count under
// pstore.write.stragglers.
const (
	MetricSyncRounds       = "pstore.sync.rounds"
	MetricSyncPulled       = "pstore.sync.pulled"
	MetricWritesApplied    = "pstore.writes.applied"
	MetricReadLatency      = "pstore.read.latency"
	MetricReadLatencyFull  = "pstore.read.latency_full"
	MetricWriteLatency     = "pstore.write.latency"
	MetricWriteLatencyFull = "pstore.write.latency_full"
	MetricReadStragglers   = "pstore.read.stragglers"
	MetricWriteStragglers  = "pstore.write.stragglers"
	MetricReadRepairs      = "pstore.read.repairs"
	MetricRepairErrors     = "pstore.read.repair_errors"
	MetricRepairsDropped   = "pstore.read.repairs_dropped"
)

// Storage-engine metric names, recorded in each durable node's
// registry (see internal/pstore/storage). The appends/syncs ratio is
// the group-commit amortization factor; append_errors ticking means
// the node's disk refused durability and the node has stopped acking
// writes. The recovery.* series is written once, at startup:
// torn_tail counts expected crash artifacts (repaired silently),
// corrupt_records and bad_snapshots count real damage.
const (
	MetricWALAppends        = "pstore.wal.appends"
	MetricWALAppendErrors   = "pstore.wal.append_errors"
	MetricWALSyncs          = "pstore.wal.syncs"
	MetricWALBytes          = "pstore.wal.bytes"
	MetricWALSegments       = "pstore.wal.segments"
	MetricSnapshots         = "pstore.snapshot.count"
	MetricSnapshotErrors    = "pstore.snapshot.errors"
	MetricSegmentsTruncated = "pstore.snapshot.truncated_segments"
	MetricRecoveryReplayed  = "pstore.recovery.replayed"
	MetricRecoveryTornTail  = "pstore.recovery.torn_tail"
	MetricRecoveryCorrupt   = "pstore.recovery.corrupt_records"
	MetricRecoveryBadSnaps  = "pstore.recovery.bad_snapshots"
)

// Bounded-staleness read metric names, recorded in the registry of
// the pool the Client dials through. A bounded GET resolves exactly
// one of three ways: hit (served from one lease-holding replica with
// the bound proven), fallback (the bound could not be proven — no
// live freshness lease for the path, no holder passing the advisory
// lag screen, controller narrowed, transport error, miss, or lease
// expiry mid-flight — so the read re-ran as a quorum), or violation
// (a lease holder answered a version below the one a quorum proved
// it held; the reply was discarded and the read re-ran as a quorum,
// so a violation never reaches the caller). The node-side
// hybrid-logical-clock series (pstore.hlc.*) lives in internal/hlc;
// the client-side staleness series (pstore.staleness.*) in
// internal/pstore/staleness.
const (
	MetricBoundedHits      = "pstore.read.bounded_hits"
	MetricBoundedFallbacks = "pstore.read.bounded_fallbacks"
	MetricBoundedLatency   = "pstore.read.bounded_latency"
	// MetricHLCWatermark is each node's max-applied HLC stamp (packed
	// timestamp, node registry): the advisory freshness signal it
	// attaches to replies (a maximum, not a prefix bound).
	MetricHLCWatermark = "pstore.hlc.watermark"
)
