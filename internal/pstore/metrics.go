package pstore

// Metric names recorded by the persistent store, in addition to the
// shell's own daemon.* and wire.* instruments. The pstore.sync.* and
// pstore.writes.* series live in each node's registry; the quorum
// latency histograms and read-repair counter live in the registry of
// the pool the Client dials through.
const (
	MetricSyncRounds    = "pstore.sync.rounds"
	MetricSyncPulled    = "pstore.sync.pulled"
	MetricWritesApplied = "pstore.writes.applied"
	MetricReadLatency   = "pstore.read.latency"
	MetricWriteLatency  = "pstore.write.latency"
	MetricReadRepairs   = "pstore.read.repairs"
	MetricRepairErrors  = "pstore.read.repair_errors"
)
