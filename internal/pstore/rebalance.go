package pstore

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore/placement"
	"ace/internal/telemetry"
)

// Coordinator drives placement changes: bootstrapping the first map,
// publishing maps to nodes and the ASD, and live rebalancing. All of
// its state lives in the published map, so a crashed coordinator is
// resumed by simply calling Rebalance again — it picks up pending
// moves from wherever the last publish left them.
type Coordinator struct {
	pool *daemon.Pool
	asd  string

	mMoves *telemetry.Counter
}

// NewCoordinator builds a coordinator publishing through the ASD at
// asdAddr.
func NewCoordinator(pool *daemon.Pool, asdAddr string) *Coordinator {
	return &Coordinator{
		pool:   pool,
		asd:    asdAddr,
		mMoves: pool.Telemetry().Counter(placement.MetricMoves),
	}
}

// Current fetches the published placement map from the ASD; (nil,
// nil) when none has been published yet.
func (co *Coordinator) Current(ctx context.Context) (*placement.Map, error) {
	reply, err := co.pool.CallContext(ctx, co.asd, cmdlang.New(placement.CmdPlaceGet))
	if err != nil {
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			return nil, nil
		}
		return nil, err
	}
	return placement.DecodeString(reply.Str("map", ""))
}

// Bootstrap publishes the first placement map (epoch 1). It refuses
// to run when a map is already published — growing or shrinking a
// live deployment is Rebalance's job.
func (co *Coordinator) Bootstrap(ctx context.Context, seed int64, partitions, vnodes int, groups []placement.Group) (*placement.Map, error) {
	cur, err := co.Current(ctx)
	if err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("pstore: placement already bootstrapped at epoch %d", cur.Epoch)
	}
	m := placement.NewMap(seed, partitions, vnodes, groups)
	if err := co.Publish(ctx, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Publish installs m on every store node (psmap) and then publishes
// it to the ASD (placeset, which notifies subscribed caches). Nodes
// first: no client can fetch a map newer than what the serving nodes
// enforce. Every group must ack from a majority of its replicas —
// that is what makes the stale-epoch rejection effective, because a
// write routed with an older map can then never assemble a quorum of
// replicas that would still accept it. A node answering conflict is
// already on a newer epoch and counts as an ack.
func (co *Coordinator) Publish(ctx context.Context, m *placement.Map) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("pstore: publish: %w", err)
	}
	enc := m.EncodeString()
	for _, g := range m.Groups {
		acks := 0
		var lastErr error
		for _, addr := range g.Replicas {
			_, err := co.pool.CallContext(ctx, addr, cmdlang.New("psmap").SetString("map", enc))
			if err != nil && !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
				lastErr = err
				continue
			}
			acks++
		}
		if acks < len(g.Replicas)/2+1 {
			return fmt.Errorf("pstore: publish epoch %d: group %s acked %d/%d: %w", m.Epoch, g.Name, acks, len(g.Replicas), lastErr)
		}
	}
	_, err := co.pool.CallContext(ctx, co.asd, cmdlang.New(placement.CmdPlaceSet).SetString("map", enc))
	if err != nil && !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		return fmt.Errorf("pstore: publish epoch %d to ASD: %w", m.Epoch, err)
	}
	return nil
}

// Rebalance moves the namespace to the target group set without
// blocking reads. It publishes a transition map whose Moves open the
// dual-apply window (and whose bumped stamps force stale clients to
// refetch before writing a moving partition), transfers each moving
// partition over the anti-entropy pull path, verifies convergence by
// digest quorum-coverage, and cuts each partition over with its own
// epoch bump. When every move has landed it publishes a final map
// holding exactly the target groups.
//
// Rebalance is resumable: all progress lives in the published map, so
// calling it again after a crash (its own, or a whole replica
// group's) continues from the last published epoch.
func (co *Coordinator) Rebalance(ctx context.Context, target []placement.Group) (*placement.Map, error) {
	for iter := 0; ; iter++ {
		cur, err := co.Current(ctx)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			return nil, errors.New("pstore: rebalance: no placement map published (Bootstrap first)")
		}
		if iter > 2*cur.Partitions+8 {
			return nil, fmt.Errorf("pstore: rebalance did not converge after %d steps (epoch %d, %d moves pending)", iter, cur.Epoch, len(cur.Moves))
		}
		if len(cur.Moves) > 0 {
			// Make sure every node enforces the map driving this move
			// (a resumed coordinator may find nodes that restarted with
			// no map at all), then transfer and cut over the first
			// pending partition.
			if err := co.Publish(ctx, cur); err != nil {
				return nil, err
			}
			mv := cur.Moves[0]
			if err := co.transfer(ctx, cur, mv); err != nil {
				return nil, err
			}
			cut := cur.Clone()
			cut.Epoch++
			cut.Assignment[mv.Partition] = mv.To
			cut.Stamp[mv.Partition] = cut.Epoch
			cut.Moves = cut.Moves[1:]
			if err := co.Publish(ctx, cut); err != nil {
				return nil, err
			}
			co.mMoves.Inc()
			continue
		}
		next, changed := planTransition(cur, target)
		if changed {
			if err := co.Publish(ctx, next); err != nil {
				return nil, err
			}
			continue
		}
		final, fchanged, ferr := finalizeGroups(cur, target)
		if ferr != nil {
			return nil, ferr
		}
		if !fchanged {
			return cur, nil
		}
		if err := co.Publish(ctx, final); err != nil {
			return nil, err
		}
		return final, nil
	}
}

// planTransition computes the transition map from cur toward target:
// the union of current and target groups, one Move per partition
// whose consistent-hash owner under target differs from its current
// owner, and a bumped stamp on each moving partition so clients
// routing with the previous map are pushed to refetch (and so start
// dual-applying) instead of single-applying writes the move could
// miss. Returns changed=false when no partition needs to move.
func planTransition(cur *placement.Map, target []placement.Group) (*placement.Map, bool) {
	merged := append([]placement.Group(nil), cur.Groups...)
	idxByName := make(map[string]int, len(merged)+len(target))
	for i, g := range merged {
		idxByName[g.Name] = i
	}
	for _, g := range target {
		if _, ok := idxByName[g.Name]; !ok {
			idxByName[g.Name] = len(merged)
			merged = append(merged, g)
		}
	}
	desired := placement.Assign(cur.Seed, cur.Partitions, cur.VNodes, target)
	var moves []placement.Move
	for p, ti := range desired {
		want := idxByName[target[ti].Name]
		if cur.Assignment[p] != want {
			moves = append(moves, placement.Move{Partition: p, From: cur.Assignment[p], To: want})
		}
	}
	if len(moves) == 0 {
		return nil, false
	}
	next := cur.Clone()
	next.Epoch++
	next.Groups = merged
	next.Moves = moves
	for _, mv := range moves {
		next.Stamp[mv.Partition] = next.Epoch
	}
	return next, true
}

// finalizeGroups rewrites the map to hold exactly the target groups
// once no partition is assigned outside them, remapping assignment
// indices by group name.
func finalizeGroups(cur *placement.Map, target []placement.Group) (*placement.Map, bool, error) {
	if reflect.DeepEqual(cur.Groups, target) {
		return nil, false, nil
	}
	idx := make(map[string]int, len(target))
	for i, g := range target {
		idx[g.Name] = i
	}
	final := cur.Clone()
	final.Epoch++
	final.Groups = append([]placement.Group(nil), target...)
	for p, gi := range cur.Assignment {
		ni, ok := idx[cur.Groups[gi].Name]
		if !ok {
			return nil, false, fmt.Errorf("pstore: finalize: partition %d still owned by dropped group %s", p, cur.Groups[gi].Name)
		}
		final.Assignment[p] = ni
	}
	final.Moves = nil
	return final, true, nil
}

// Transfer tuning: how many pull-then-verify rounds to attempt per
// partition, and the pause between rounds (writes keep landing during
// a round, so a busy partition may need a few).
const (
	transferAttempts = 40
	transferPause    = 25 * time.Millisecond
)

// transfer drives every destination replica to pull the moving
// partition, then verifies convergence: the version union over a
// majority of source replicas must be covered by a majority of
// destination replicas. Any majority union contains every acked write
// (quorum intersection), and dual-apply covers writes landing during
// the window, so a verified partition can cut over without loss.
func (co *Coordinator) transfer(ctx context.Context, m *placement.Map, mv placement.Move) error {
	dst := m.Groups[mv.To].Replicas
	var lastErr error
	for attempt := 0; attempt < transferAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(transferPause):
			}
		}
		pulledOK := 0
		for _, d := range dst {
			if _, err := co.pool.CallContext(ctx, d, cmdlang.New("pspull").SetInt("partition", int64(mv.Partition))); err != nil {
				lastErr = fmt.Errorf("pspull %s: %w", d, err)
				continue
			}
			pulledOK++
		}
		if pulledOK < len(dst)/2+1 {
			continue
		}
		ok, err := co.converged(ctx, m, mv)
		if err != nil {
			lastErr = err
			continue
		}
		if ok {
			return nil
		}
	}
	return fmt.Errorf("pstore: transfer partition %d %s→%s did not converge: %w",
		mv.Partition, m.Groups[mv.From].Name, m.Groups[mv.To].Name, lastErr)
}

// digest fetches addr's partition-scoped digest as path→version.
func (co *Coordinator) digest(ctx context.Context, addr string, partition, partitions int) (map[string]uint64, error) {
	reply, err := co.pool.CallContext(ctx, addr, cmdlang.New("psdigest").
		SetInt("partition", int64(partition)).
		SetInt("partitions", int64(partitions)))
	if err != nil {
		return nil, err
	}
	paths := reply.Strings("paths")
	versions := reply.Vector("versions")
	if len(paths) != len(versions) {
		return nil, fmt.Errorf("pstore: malformed digest from %s", addr)
	}
	out := make(map[string]uint64, len(paths))
	for i, p := range paths {
		v, _ := versions[i].AsInt()
		if v < 0 {
			return nil, fmt.Errorf("pstore: corrupt digest from %s: negative version %d at %s", addr, v, p)
		}
		out[p] = uint64(v)
	}
	return out, nil
}

// converged checks the transfer invariant for one move: ≥ majority of
// source replicas reachable, and their per-path version union covered
// (version ≥) by ≥ majority of destination replicas.
func (co *Coordinator) converged(ctx context.Context, m *placement.Map, mv placement.Move) (bool, error) {
	src := m.Groups[mv.From].Replicas
	dst := m.Groups[mv.To].Replicas
	union := map[string]uint64{}
	srcOK := 0
	for _, a := range src {
		d, err := co.digest(ctx, a, mv.Partition, m.Partitions)
		if err != nil {
			continue
		}
		srcOK++
		for p, v := range d {
			if v > union[p] {
				union[p] = v
			}
		}
	}
	if srcOK < len(src)/2+1 {
		return false, fmt.Errorf("partition %d: only %d/%d source replicas reachable", mv.Partition, srcOK, len(src))
	}
	covered := 0
	for _, a := range dst {
		d, err := co.digest(ctx, a, mv.Partition, m.Partitions)
		if err != nil {
			continue
		}
		all := true
		for p, v := range union {
			if d[p] < v {
				all = false
				break
			}
		}
		if all {
			covered++
		}
	}
	return covered >= len(dst)/2+1, nil
}
