package placement

import (
	"context"
	"fmt"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/telemetry"
)

// ASD verbs for placement-map publication. placeset is issued by the
// coordinator; every daemon subscribed to it through the notification
// mechanism (§2.6) learns that the map changed the moment it does.
const (
	CmdPlaceSet = "placeset"
	CmdPlaceGet = "placeget"
)

// InvalidateVerb is the notification method BindInvalidation installs
// on a daemon to receive placeset events from the ASD.
const InvalidateVerb = "placementChanged"

// Cache is a client-side placement-map cache. Routing consults the
// cache on every request; the map is refetched from the ASD only when
// the cache is empty or has been invalidated — by a placeset
// notification, or reactively by a wrong_group redirect.
type Cache struct {
	pool *daemon.Pool
	asd  string

	mu    sync.Mutex
	m     *Map
	stale bool

	mFetches       *telemetry.Counter
	mInvalidations *telemetry.Counter
	mEpoch         *telemetry.Gauge
}

// NewCache builds a cache fetching the map from the ASD at asdAddr
// through pool. Cache metrics land in the pool's registry.
func NewCache(pool *daemon.Pool, asdAddr string) *Cache {
	tel := pool.Telemetry()
	return &Cache{
		pool:           pool,
		asd:            asdAddr,
		mFetches:       tel.Counter(MetricMapFetches),
		mInvalidations: tel.Counter(MetricInvalidations),
		mEpoch:         tel.Gauge(MetricEpoch),
	}
}

// NewStaticCache wraps a fixed map with no ASD behind it (tests,
// benches, single-environment embeddings). Invalidate is a no-op in
// the sense that the same map is served again.
func NewStaticCache(m *Map) *Cache {
	reg := telemetry.NewRegistry()
	return &Cache{
		m:              m,
		mFetches:       reg.Counter(MetricMapFetches),
		mInvalidations: reg.Counter(MetricInvalidations),
		mEpoch:         reg.Gauge(MetricEpoch),
	}
}

// Get returns the cached map without touching the network — the
// router's fast path. ok is false when the cache is empty or stale;
// the caller then pays the fetch through GetContext. Unlike the usual
// plain/Context pairs, Get is NOT a context-free convenience wrapper
// for GetContext: it deliberately never fetches.
func (c *Cache) Get() (*Map, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || c.stale {
		return c.m, false
	}
	return c.m, true
}

// GetContext returns the cached map, fetching it from the ASD first
// when the cache is empty or invalidated. A stale cache that cannot
// be refreshed (ASD unreachable) falls back to the previous map —
// routing on a possibly-outdated map is recoverable (wrong_group
// redirects correct it), not routing at all is an outage.
func (c *Cache) GetContext(ctx context.Context) (*Map, error) {
	c.mu.Lock()
	m, stale := c.m, c.stale
	c.mu.Unlock()
	if m != nil && !stale {
		return m, nil
	}
	fetched, err := c.fetch(ctx)
	if err != nil {
		if m != nil {
			return m, nil
		}
		return nil, err
	}
	return fetched, nil
}

// Refresh unconditionally refetches the map from the ASD.
func (c *Cache) Refresh(ctx context.Context) (*Map, error) { return c.fetch(ctx) }

func (c *Cache) fetch(ctx context.Context) (*Map, error) {
	if c.pool == nil {
		// Static cache: nothing to fetch; clear staleness and serve.
		c.mu.Lock()
		defer c.mu.Unlock()
		c.stale = false
		if c.m == nil {
			return nil, fmt.Errorf("placement: static cache holds no map")
		}
		return c.m, nil
	}
	reply, err := c.pool.CallContext(ctx, c.asd, cmdlang.New(CmdPlaceGet))
	if err != nil {
		return nil, fmt.Errorf("placement: fetch map: %w", err)
	}
	m, err := DecodeString(reply.Str("map", ""))
	if err != nil {
		return nil, err
	}
	c.mFetches.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	// A concurrent fetch may have landed a newer epoch; never go back.
	if c.m == nil || m.Epoch >= c.m.Epoch {
		c.m = m
		c.stale = false
		c.mEpoch.Set(int64(m.Epoch))
	}
	return c.m, nil
}

// Invalidate marks the cached map stale: the next GetContext
// refetches. The stale map is kept for the unreachable-ASD fallback.
func (c *Cache) Invalidate() {
	c.mInvalidations.Inc()
	c.mu.Lock()
	c.stale = true
	c.mu.Unlock()
}

// Epoch returns the cached map's epoch (0 when empty).
func (c *Cache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return 0
	}
	return c.m.Epoch
}

// HandleInvalidation installs the notification method that marks the
// cache stale when the ASD's placement map changes. Call before the
// daemon starts (handlers are fixed at start).
func (c *Cache) HandleInvalidation(d *daemon.Daemon) {
	d.Handle(cmdlang.CommandSpec{
		Name: InvalidateVerb,
		Doc:  "placement-map change notification from the ASD",
		Args: []cmdlang.ArgSpec{
			{Name: daemon.NotifySourceArg, Kind: cmdlang.KindWord},
			{Name: daemon.NotifyEventArg, Kind: cmdlang.KindWord},
			{Name: daemon.NotifyDetailArg, Kind: cmdlang.KindString},
		},
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		c.Invalidate()
		return cmdlang.OK(), nil
	})
}

// SubscribeInvalidation registers the started daemon with the ASD's
// notification list for placeset, completing what HandleInvalidation
// began: from here on, publishing a new map invalidates this cache
// within one notification delivery instead of one wrong_group
// round-trip.
func (c *Cache) SubscribeInvalidation(d *daemon.Daemon) error {
	return daemon.Subscribe(c.pool, c.asd, CmdPlaceSet, d.Name(), d.Addr(), InvalidateVerb)
}
