// Cache tests live in an external test package: they exercise the
// cache against a real ASD, and asd imports placement (the verbs and
// map codec), so an internal test would be an import cycle.
package placement_test

import (
	"context"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore/placement"
)

func testGroups(names ...string) []placement.Group {
	out := make([]placement.Group, len(names))
	for i, n := range names {
		out[i] = placement.Group{Name: n, Replicas: []string{n + "-a:1", n + "-b:1", n + "-c:1"}}
	}
	return out
}

func startASD(t *testing.T) *asd.Service {
	t.Helper()
	s := asd.New(asd.Config{ReapInterval: time.Hour})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func publish(t *testing.T, pool *daemon.Pool, addr string, m *placement.Map) {
	t.Helper()
	if _, err := pool.Call(addr, cmdlang.New(placement.CmdPlaceSet).SetString("map", m.EncodeString())); err != nil {
		t.Fatalf("placeset: %v", err)
	}
}

func TestCachePublishAndFetch(t *testing.T) {
	s := startASD(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	c := placement.NewCache(pool, s.Addr())
	if _, ok := c.Get(); ok {
		t.Fatal("empty cache claimed a valid map")
	}
	if _, err := c.GetContext(context.Background()); err == nil {
		t.Fatal("GetContext succeeded before any map was published")
	}

	m := placement.NewMap(7, 32, 16, testGroups("g1", "g2"))
	publish(t, pool, s.Addr(), m)

	got, err := c.GetContext(context.Background())
	if err != nil {
		t.Fatalf("GetContext: %v", err)
	}
	if got.Epoch != 1 || len(got.Groups) != 2 {
		t.Fatalf("fetched map epoch=%d groups=%d", got.Epoch, len(got.Groups))
	}
	// Now cached: the fast path serves without the network.
	if cached, ok := c.Get(); !ok || cached.Epoch != 1 {
		t.Fatalf("fast path miss after fetch: ok=%v", ok)
	}
	if s.Placement() == nil || s.Placement().Epoch != 1 {
		t.Fatal("ASD did not retain the published map")
	}
}

func TestPlaceSetEpochNeverRegresses(t *testing.T) {
	s := startASD(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	m := placement.NewMap(7, 32, 16, testGroups("g1", "g2"))
	m.Epoch = 5
	for i := range m.Stamp {
		m.Stamp[i] = 5
	}
	publish(t, pool, s.Addr(), m)

	old := placement.NewMap(7, 32, 16, testGroups("g1", "g2")) // epoch 1
	_, err := pool.Call(s.Addr(), cmdlang.New(placement.CmdPlaceSet).SetString("map", old.EncodeString()))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeConflict) {
		t.Fatalf("stale placeset err=%v, want conflict", err)
	}
	if s.Placement().Epoch != 5 {
		t.Fatalf("published epoch regressed to %d", s.Placement().Epoch)
	}
}

// The §2.6 path: a daemon subscribed to placeset hears about a new map
// and invalidates its cache, so the next routed request refetches —
// no polling, no waiting for a wrong_group redirect.
func TestCacheInvalidatedByNotification(t *testing.T) {
	s := startASD(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	publish(t, pool, s.Addr(), placement.NewMap(7, 32, 16, testGroups("g1", "g2")))

	c := placement.NewCache(pool, s.Addr())
	sub := daemon.New(daemon.Config{Name: "cachetest_sub"})
	c.HandleInvalidation(sub)
	if err := sub.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Stop)
	if err := c.SubscribeInvalidation(sub); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	if _, err := c.GetContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(); !ok {
		t.Fatal("cache not primed")
	}

	next := placement.NewMap(7, 32, 16, testGroups("g1", "g2", "g3"))
	next.Epoch = 2
	for i := range next.Stamp {
		next.Stamp[i] = 1
	}
	publish(t, pool, s.Addr(), next)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := c.Get(); !ok {
			break // invalidation delivered
		}
		if time.Now().After(deadline) {
			t.Fatal("placeset notification never invalidated the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := c.GetContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || len(got.Groups) != 3 {
		t.Fatalf("refetched map epoch=%d groups=%d, want 2/3", got.Epoch, len(got.Groups))
	}
}

// Routing on a possibly-outdated map beats not routing at all: with
// the ASD down, a stale cache keeps serving its last map.
func TestCacheServesStaleWhenASDUnreachable(t *testing.T) {
	// Stopped mid-test, so no t.Cleanup via startASD (Stop is not
	// idempotent).
	s := asd.New(asd.Config{ReapInterval: time.Hour})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()

	publish(t, pool, s.Addr(), placement.NewMap(7, 32, 16, testGroups("g1", "g2")))
	c := placement.NewCache(pool, s.Addr())
	if _, err := c.GetContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	s.Stop()
	c.Invalidate()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	got, err := c.GetContext(ctx)
	if err != nil {
		t.Fatalf("stale fallback failed: %v", err)
	}
	if got.Epoch != 1 {
		t.Fatalf("fallback map epoch=%d", got.Epoch)
	}
}

func TestStaticCache(t *testing.T) {
	m := placement.NewMap(7, 32, 16, testGroups("g1"))
	c := placement.NewStaticCache(m)
	if got, ok := c.Get(); !ok || got != m {
		t.Fatal("static cache miss")
	}
	c.Invalidate()
	got, err := c.GetContext(context.Background())
	if err != nil || got != m {
		t.Fatalf("static cache after invalidate: %v", err)
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch=%d", c.Epoch())
	}
}
