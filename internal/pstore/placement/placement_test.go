package placement

import (
	"reflect"
	"testing"
)

func groups(names ...string) []Group {
	out := make([]Group, len(names))
	for i, n := range names {
		out[i] = Group{Name: n, Replicas: []string{n + "-a:1", n + "-b:1", n + "-c:1"}}
	}
	return out
}

// PartitionOf is part of the persistence contract: keys hash to the
// same partition on every node, every process, every release. The
// golden values pin the function against accidental change.
func TestPartitionOfGolden(t *testing.T) {
	golden := map[string]int{
		"/wss/workspaces/john_doe/1": PartitionOf("/wss/workspaces/john_doe/1", 32),
		"/a":                         PartitionOf("/a", 32),
	}
	for path, want := range golden {
		if got := PartitionOf(path, 32); got != want {
			t.Fatalf("PartitionOf(%q) changed within one process: %d != %d", path, got, want)
		}
	}
	// Cross-process stability: FNV-1a is fully specified, so these
	// literals must never drift.
	if got := PartitionOf("/a", 32); got != 13 {
		t.Errorf("PartitionOf(/a, 32) = %d, want 13", got)
	}
	if got := PartitionOf("/wss/workspaces/john_doe/1", 32); got != 27 {
		t.Errorf("PartitionOf(/wss/.../1, 32) = %d, want 27", got)
	}
	for p := 0; p < 1000; p++ {
		if got := PartitionOf("/k/"+string(rune('a'+p%26))+"/x", 32); got < 0 || got >= 32 {
			t.Fatalf("partition out of range: %d", got)
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	a := Assign(7, 64, 64, groups("g1", "g2", "g3"))
	b := Assign(7, 64, 64, groups("g1", "g2", "g3"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and groups produced different assignments")
	}
	c := Assign(8, 64, 64, groups("g1", "g2", "g3"))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical assignments (suspicious)")
	}
}

func TestAssignBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		gs := groups("g1", "g2", "g3", "g4")[:n]
		m := NewMap(1, 64, 0, gs)
		counts := m.Counts()
		for gi, c := range counts {
			// With 64 vnodes per group the worst observed imbalance is
			// well inside 3x of fair share; zero-partition groups would
			// break scaling outright.
			fair := 64 / n
			if c == 0 || c > 3*fair {
				t.Fatalf("n=%d: group %s owns %d of 64 partitions (fair %d): %v", n, gs[gi].Name, c, fair, counts)
			}
		}
	}
}

// Consistent hashing's point: adding a group must move only partitions
// that land on the new group, never shuffle partitions between the
// old groups.
func TestAssignMinimalMotion(t *testing.T) {
	old := Assign(7, 64, 64, groups("g1", "g2"))
	grown := Assign(7, 64, 64, groups("g1", "g2", "g3"))
	moved := 0
	for p := range old {
		if grown[p] != old[p] {
			if grown[p] != 2 {
				t.Fatalf("partition %d moved between pre-existing groups: %d → %d", p, old[p], grown[p])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("adding a group moved no partitions")
	}
	if moved > 48 {
		t.Fatalf("adding one group moved %d/64 partitions", moved)
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMap(42, 32, 16, groups("g1", "g2", "g3"))
	m.Epoch = 5
	m.Stamp[3] = 5
	m.Assignment[3] = 0
	m.Moves = []Move{{Partition: 3, From: 0, To: 2}}
	got, err := DecodeString(m.EncodeString())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", m, got)
	}
}

func TestMapValidateRejects(t *testing.T) {
	base := func() *Map { return NewMap(1, 8, 4, groups("g1", "g2")) }
	cases := map[string]func(*Map){
		"epoch zero":        func(m *Map) { m.Epoch = 0 },
		"no groups":         func(m *Map) { m.Groups = nil },
		"dup group":         func(m *Map) { m.Groups[1].Name = "g1" },
		"bad assignment":    func(m *Map) { m.Assignment[0] = 9 },
		"stamp over epoch":  func(m *Map) { m.Stamp[0] = 99 },
		"move wrong owner":  func(m *Map) { m.Moves = []Move{{Partition: 0, From: 1 - m.Assignment[0], To: m.Assignment[0]}} },
		"move same group":   func(m *Map) { m.Moves = []Move{{Partition: 0, From: m.Assignment[0], To: m.Assignment[0]}} },
		"short assignment":  func(m *Map) { m.Assignment = m.Assignment[:3] },
		"group no replicas": func(m *Map) { m.Groups[0].Replicas = nil },
	}
	for name, corrupt := range cases {
		m := base()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt map", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
}

func TestOwnerAndMoveFor(t *testing.T) {
	m := NewMap(1, 8, 4, groups("g1", "g2"))
	p, g := m.Owner("/some/path")
	if p != PartitionOf("/some/path", 8) {
		t.Fatalf("Owner partition mismatch")
	}
	if m.GroupIndex(g.Name) != m.Assignment[p] {
		t.Fatalf("Owner group mismatch")
	}
	if m.MoveFor(p) != nil {
		t.Fatal("MoveFor on a map with no moves")
	}
	m.Moves = []Move{{Partition: p, From: m.Assignment[p], To: 1 - m.Assignment[p]}}
	if mv := m.MoveFor(p); mv == nil || mv.Partition != p {
		t.Fatal("MoveFor missed its move")
	}
}
