package placement

// Metric names recorded by the placement subsystem. The node-side
// series (epoch, installs, wrong_group, transfer.pulled) live in each
// store node's registry; the cache and routing series (map_fetches,
// invalidations, redirects, dual_writes) live in the registry of the
// pool the sharded client dials through; moves/cutovers are counted
// by the coordinator's pool registry.
//
// pstore.placement.wrong_group ticking on a node is normal during a
// map change (stale clients being redirected); growing without bound
// means some client cannot refresh its map. dual_writes counts the
// writes that paid the double quorum of an in-flight move — nonzero
// only while rebalancing.
const (
	MetricEpoch         = "pstore.placement.epoch"
	MetricInstalls      = "pstore.placement.installs"
	MetricRejects       = "pstore.placement.wrong_group"
	MetricTransferPulls = "pstore.placement.transfer.pulled"
	MetricMapFetches    = "pstore.placement.map_fetches"
	MetricInvalidations = "pstore.placement.invalidations"
	MetricRedirects     = "pstore.placement.redirects"
	MetricDualWrites    = "pstore.placement.dual_writes"
	MetricMoves         = "pstore.placement.moves"
)
