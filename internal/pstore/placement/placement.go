// Package placement shards the persistent-store namespace across
// replica groups. It provides the consistent-hash ring that maps
// namespace paths to fixed partitions and partitions to groups, the
// versioned placement map (epochs, per-partition change stamps, and
// in-flight moves) that every router agrees on, a client-side cache
// of that map fed from the ASD and invalidated by the §2.6
// notification mechanism, and the rebalancing coordinator that moves
// partitions between groups over the anti-entropy transfer path
// without blocking reads.
//
// The routing contract, enforced by the store nodes:
//
//   - A request stamped with epoch E is served only if E ≥ the
//     partition's change stamp — the epoch at which that partition's
//     routing last changed. A staler stamp means the client's map
//     predates a move and its single-target write could miss the
//     dual-apply window, so the node answers a retryable
//     `wrong_group` redirect and the client refetches the map.
//   - Reads route to the partition's owning group only. While a move
//     is in flight the owner is still the source group (the dest is
//     incomplete), so reads never block on rebalancing.
//   - Writes to a moving partition dual-apply: the client must reach
//     a write quorum in the source group AND in the destination
//     group, so cutover cannot lose an acked write even if one whole
//     group dies.
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"ace/internal/cmdlang"
)

// Defaults for maps built without explicit tuning. The partition
// count is the unit of rebalancing — small enough that a full
// partition digest exchange is cheap, large enough that groups can be
// balanced within a few percent. Virtual nodes smooth the ring so a
// group's share does not depend on one lucky hash.
const (
	DefaultPartitions = 32
	DefaultVNodes     = 64
)

// PartitionOf maps a namespace path to its partition: FNV-1a over the
// path, mod the partition count. Stable across processes and
// releases — partition membership may never silently change, only
// partition→group assignment does.
func PartitionOf(path string, partitions int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return int(h.Sum64() % uint64(partitions))
}

// hash64 is the ring-point hash: seed and discriminator mixed through
// FNV-1a, then avalanched. The finalizer matters: FNV inputs that
// differ only in their last bytes ("vnode g1 7" vs "vnode g1 8")
// produce outputs that differ only in their low ~40 bits, which
// clusters a group's vnodes into one arc of the ring and destroys the
// balance consistent hashing exists to provide.
func hash64(seed int64, parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	for _, p := range parts {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(p))
	}
	return mix64(h.Sum64())
}

// mix64 is the 64-bit avalanche finalizer (Murmur3 fmix64): every
// input bit flips every output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Group is one replica group: a name and the replica addresses that
// quorum reads/writes for its partitions fan out to.
type Group struct {
	Name     string
	Replicas []string
}

// Move is one in-flight partition transfer: while present in a map,
// writes to Partition dual-apply to both groups and the destination
// pulls the partition's contents over the anti-entropy path.
type Move struct {
	Partition int
	From, To  int // indices into Map.Groups
}

// Map is one version of the cluster's placement: which group owns
// each partition, which partitions are mid-move, and at which epoch
// each partition's routing last changed. Maps are immutable once
// published; every change is a new map with a higher epoch.
type Map struct {
	Epoch      uint64
	Seed       int64
	Partitions int
	VNodes     int
	Groups     []Group
	Assignment []int    // partition → index into Groups
	Stamp      []uint64 // partition → epoch of its last routing change
	Moves      []Move
}

// Assign computes the ring assignment of partitions to groups: each
// group projects VNodes points onto the ring, each partition hashes
// to a point, and the partition belongs to the group owning the next
// vnode clockwise. Deterministic in (seed, partitions, vnodes, group
// names): same inputs, same assignment, on every node and every run.
func Assign(seed int64, partitions, vnodes int, groups []Group) []int {
	type point struct {
		at    uint64
		group int
	}
	ring := make([]point, 0, len(groups)*vnodes)
	for gi, g := range groups {
		for v := 0; v < vnodes; v++ {
			ring = append(ring, point{hash64(seed, "vnode", g.Name, fmt.Sprint(v)), gi})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].at != ring[j].at {
			return ring[i].at < ring[j].at
		}
		// Colliding points tie-break on the group name so the ring
		// order never depends on slice order.
		return groups[ring[i].group].Name < groups[ring[j].group].Name
	})
	assign := make([]int, partitions)
	for p := 0; p < partitions; p++ {
		at := hash64(seed, "partition", fmt.Sprint(p))
		i := sort.Search(len(ring), func(i int) bool { return ring[i].at >= at })
		if i == len(ring) {
			i = 0
		}
		assign[p] = ring[i].group
	}
	return assign
}

// NewMap builds the first published map (epoch 1) for the given
// groups. partitions/vnodes of 0 take the defaults.
func NewMap(seed int64, partitions, vnodes int, groups []Group) *Map {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &Map{
		Epoch:      1,
		Seed:       seed,
		Partitions: partitions,
		VNodes:     vnodes,
		Groups:     cloneGroups(groups),
		Assignment: Assign(seed, partitions, vnodes, groups),
		Stamp:      make([]uint64, partitions),
	}
	for p := range m.Stamp {
		m.Stamp[p] = 1
	}
	return m
}

func cloneGroups(groups []Group) []Group {
	out := make([]Group, len(groups))
	for i, g := range groups {
		out[i] = Group{Name: g.Name, Replicas: append([]string(nil), g.Replicas...)}
	}
	return out
}

// Clone deep-copies the map so a coordinator can derive the next
// epoch without mutating the published one.
func (m *Map) Clone() *Map {
	n := *m
	n.Groups = cloneGroups(m.Groups)
	n.Assignment = append([]int(nil), m.Assignment...)
	n.Stamp = append([]uint64(nil), m.Stamp...)
	n.Moves = append([]Move(nil), m.Moves...)
	return &n
}

// GroupIndex returns the index of the named group, or -1.
func (m *Map) GroupIndex(name string) int {
	for i, g := range m.Groups {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// MoveFor returns the in-flight move covering partition p, or nil.
func (m *Map) MoveFor(p int) *Move {
	for i := range m.Moves {
		if m.Moves[i].Partition == p {
			return &m.Moves[i]
		}
	}
	return nil
}

// Owner returns the partition and owning group for a path.
func (m *Map) Owner(path string) (int, Group) {
	p := PartitionOf(path, m.Partitions)
	return p, m.Groups[m.Assignment[p]]
}

// Counts returns how many partitions each group owns.
func (m *Map) Counts() []int {
	out := make([]int, len(m.Groups))
	for _, gi := range m.Assignment {
		out[gi]++
	}
	return out
}

// Validate checks the map's structural invariants.
func (m *Map) Validate() error {
	if m.Epoch == 0 {
		return fmt.Errorf("placement: map epoch 0")
	}
	if m.Partitions <= 0 || m.VNodes <= 0 {
		return fmt.Errorf("placement: bad partitions=%d vnodes=%d", m.Partitions, m.VNodes)
	}
	if len(m.Groups) == 0 {
		return fmt.Errorf("placement: no groups")
	}
	seen := map[string]bool{}
	for _, g := range m.Groups {
		if g.Name == "" || len(g.Replicas) == 0 {
			return fmt.Errorf("placement: group %q has no replicas", g.Name)
		}
		if seen[g.Name] {
			return fmt.Errorf("placement: duplicate group %q", g.Name)
		}
		seen[g.Name] = true
	}
	if len(m.Assignment) != m.Partitions || len(m.Stamp) != m.Partitions {
		return fmt.Errorf("placement: assignment/stamp length mismatch")
	}
	for p, gi := range m.Assignment {
		if gi < 0 || gi >= len(m.Groups) {
			return fmt.Errorf("placement: partition %d assigned to unknown group %d", p, gi)
		}
		if m.Stamp[p] == 0 || m.Stamp[p] > m.Epoch {
			return fmt.Errorf("placement: partition %d stamp %d outside (0, epoch %d]", p, m.Stamp[p], m.Epoch)
		}
	}
	movesSeen := map[int]bool{}
	for _, mv := range m.Moves {
		if mv.Partition < 0 || mv.Partition >= m.Partitions {
			return fmt.Errorf("placement: move for unknown partition %d", mv.Partition)
		}
		if movesSeen[mv.Partition] {
			return fmt.Errorf("placement: duplicate move for partition %d", mv.Partition)
		}
		movesSeen[mv.Partition] = true
		if mv.From < 0 || mv.From >= len(m.Groups) || mv.To < 0 || mv.To >= len(m.Groups) || mv.From == mv.To {
			return fmt.Errorf("placement: move for partition %d has bad groups %d→%d", mv.Partition, mv.From, mv.To)
		}
		if m.Assignment[mv.Partition] != mv.From {
			return fmt.Errorf("placement: move for partition %d does not start at its owner", mv.Partition)
		}
	}
	return nil
}

// MapCmd is the command name a placement map encodes to.
const MapCmd = "placemap"

// replicaSep joins a group's replica addresses into one vector
// element (addresses are host:port, so ',' cannot collide).
const replicaSep = ","

// Encode renders the map as a cmdlang command, the transport form
// used by the ASD's placeget/placeset and the nodes' psmap.
func (m *Map) Encode() *cmdlang.CmdLine {
	names := make([]string, len(m.Groups))
	replicas := make([]string, len(m.Groups))
	for i, g := range m.Groups {
		names[i] = g.Name
		replicas[i] = strings.Join(g.Replicas, replicaSep)
	}
	assign := make([]int64, len(m.Assignment))
	for i, gi := range m.Assignment {
		assign[i] = int64(gi)
	}
	stamps := make([]int64, len(m.Stamp))
	for i, s := range m.Stamp {
		stamps[i] = int64(s)
	}
	mparts := make([]int64, len(m.Moves))
	mfrom := make([]int64, len(m.Moves))
	mto := make([]int64, len(m.Moves))
	for i, mv := range m.Moves {
		mparts[i] = int64(mv.Partition)
		mfrom[i] = int64(mv.From)
		mto[i] = int64(mv.To)
	}
	//acelint:ignore verbconformance placemap is a document encoding carried inside placeget/psmap replies, never dispatched as a command
	return cmdlang.New(MapCmd).
		SetInt("epoch", int64(m.Epoch)).
		SetInt("seed", m.Seed).
		SetInt("partitions", int64(m.Partitions)).
		SetInt("vnodes", int64(m.VNodes)).
		Set("groups", cmdlang.StringVector(names...)).
		Set("replicas", cmdlang.StringVector(replicas...)).
		Set("assign", cmdlang.IntVector(assign...)).
		Set("stamps", cmdlang.IntVector(stamps...)).
		Set("move_parts", cmdlang.IntVector(mparts...)).
		Set("move_from", cmdlang.IntVector(mfrom...)).
		Set("move_to", cmdlang.IntVector(mto...))
}

// EncodeString renders the map to the textual grammar, for embedding
// as a single string argument of another command.
func (m *Map) EncodeString() string { return m.Encode().String() }

func intVector(c *cmdlang.CmdLine, name string) ([]int64, error) {
	elems := c.Vector(name)
	out := make([]int64, len(elems))
	for i, e := range elems {
		n, ok := e.AsInt()
		if !ok {
			return nil, fmt.Errorf("placement: %s[%d] is not an int", name, i)
		}
		out[i] = n
	}
	return out, nil
}

// Decode reconstructs and validates a map from its command form.
func Decode(c *cmdlang.CmdLine) (*Map, error) {
	if c.Name() != MapCmd {
		return nil, fmt.Errorf("placement: not a %s command: %s", MapCmd, c.Name())
	}
	m := &Map{
		Epoch:      uint64(c.Int("epoch", 0)),
		Seed:       c.Int("seed", 0),
		Partitions: int(c.Int("partitions", 0)),
		VNodes:     int(c.Int("vnodes", 0)),
	}
	if e := c.Int("epoch", 0); e < 0 {
		return nil, fmt.Errorf("placement: negative epoch %d", e)
	}
	names := c.Strings("groups")
	replicas := c.Strings("replicas")
	if len(names) != len(replicas) {
		return nil, fmt.Errorf("placement: %d groups but %d replica lists", len(names), len(replicas))
	}
	for i, name := range names {
		m.Groups = append(m.Groups, Group{Name: name, Replicas: strings.Split(replicas[i], replicaSep)})
	}
	assign, err := intVector(c, "assign")
	if err != nil {
		return nil, err
	}
	for _, gi := range assign {
		m.Assignment = append(m.Assignment, int(gi))
	}
	stamps, err := intVector(c, "stamps")
	if err != nil {
		return nil, err
	}
	for _, s := range stamps {
		if s < 0 {
			return nil, fmt.Errorf("placement: negative stamp %d", s)
		}
		m.Stamp = append(m.Stamp, uint64(s))
	}
	mparts, err := intVector(c, "move_parts")
	if err != nil {
		return nil, err
	}
	mfrom, err := intVector(c, "move_from")
	if err != nil {
		return nil, err
	}
	mto, err := intVector(c, "move_to")
	if err != nil {
		return nil, err
	}
	if len(mfrom) != len(mparts) || len(mto) != len(mparts) {
		return nil, fmt.Errorf("placement: ragged move vectors")
	}
	for i := range mparts {
		m.Moves = append(m.Moves, Move{Partition: int(mparts[i]), From: int(mfrom[i]), To: int(mto[i])})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeString parses and decodes a map from its textual form.
func DecodeString(s string) (*Map, error) {
	c, err := cmdlang.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("placement: parse map: %w", err)
	}
	return Decode(c)
}
