// Package pstore implements the ACE Persistent Store (§6, Fig 17):
// a cluster of three completely redundant storage servers that
// perform constant data synchronization so ACE services, user
// workspaces, and robust applications can always recover their last
// known state, even when one or two of the servers fail.
//
// Each node is an ACE daemon holding a versioned, hierarchical
// object-oriented namespace ("/wss/workspaces/john_doe/1"). Clients
// write through a majority quorum and read the highest version seen
// by a majority; nodes run anti-entropy synchronization so a crashed
// and restarted (or wiped) node converges back to its peers. Nodes
// optionally persist every accepted write through a durable storage
// engine (internal/pstore/storage): a group-commit write-ahead log
// with compacted snapshots, recovered at startup. A write is
// acknowledged only after it is fsync-durable; a node whose log is
// failing answers `busy` instead of lying about durability.
package pstore

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/hlc"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/storage"
	"ace/internal/telemetry"
)

// Item is one versioned object in the namespace.
type Item struct {
	Path    string
	Value   []byte
	Version uint64
	Deleted bool
	// HLC is the hybrid-logical-clock stamp of the write that produced
	// this item (zero for legacy unstamped writes). Client-assigned
	// stamps are stored verbatim, so all replicas hold the same stamp
	// for the same write; legacy unstamped writes are stamped
	// independently by each replica, so replicas may durably hold
	// DIFFERENT stamps for the same version of the same item, and
	// anti-entropy never reconciles them. Conflict resolution stays
	// purely version-based (newer) and stamps only feed the advisory
	// applied watermark, so the divergence can skew lag estimates but
	// never the data.
	HLC hlc.Timestamp
}

// newer reports whether a beats b under last-writer-wins with a
// deterministic value tiebreak (so all replicas converge on the same
// winner for equal versions).
func newer(a, b Item) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Deleted != b.Deleted {
		return a.Deleted // deletes win ties
	}
	return string(a.Value) > string(b.Value)
}

// Node is one persistent-store server.
type Node struct {
	*daemon.Daemon

	mu    sync.Mutex
	items map[string]Item

	// clock is the node's hybrid logical clock: merged with every
	// stamped write, the source of stamps for legacy unstamped writes,
	// forwarded past the WAL high-water mark at recovery.
	clock *hlc.Clock
	// appliedHLC is the max HLC stamp over every item this node has
	// applied (packed hlc.Timestamp). It is the watermark gossiped in
	// data and digest replies — an advisory freshness signal, and a
	// maximum, not a prefix guarantee: it can run ahead of writes the
	// node missed, which is why clients treat it as a replica-selection
	// hint rather than a staleness proof. Atomic so replies read it
	// without taking mu.
	appliedHLC atomic.Uint64

	eng      *storage.Engine
	recovery storage.RecoveryInfo
	// degraded latches once the storage engine refuses durability:
	// the node stops acknowledging writes (retryable busy) so a dead
	// disk cannot silently count toward quorums. Reads still serve.
	degraded     atomic.Bool
	snapInFlight atomic.Bool
	snapWG       sync.WaitGroup

	peers    []string
	syncStop chan struct{}
	syncWG   sync.WaitGroup

	// Placement: the installed map (nil until a coordinator pushes one
	// via psmap — an unsharded node enforces nothing), this node's
	// group name, and the group's index in the installed map (-1 when
	// absent). Guarded by mu.
	group    string
	place    *placement.Map
	placeIdx int

	// transferSem bounds concurrent pspull transfers (they fan out
	// pulls and fsync batches); over the bound pspull answers busy.
	transferSem chan struct{}
	transferWG  sync.WaitGroup

	accepted int64 // writes applied (local or via sync)
	synced   int64 // items pulled by anti-entropy

	mWatermark     *telemetry.Gauge
	mSyncRounds    *telemetry.Counter
	mSyncPulled    *telemetry.Counter
	mWrites        *telemetry.Counter
	mPlaceInstalls *telemetry.Counter
	mPlaceRejects  *telemetry.Counter
	mPlacePulled   *telemetry.Counter
	mPlaceEpoch    *telemetry.Gauge
}

// Config describes one store node.
type Config struct {
	// Daemon is the underlying shell configuration.
	Daemon daemon.Config
	// Dir, when non-empty, enables durable storage: the node keeps a
	// group-commit WAL and compacted snapshots under Dir/<name>/ and
	// recovers from them at startup.
	Dir string
	// Storage tunes the storage engine (segment size, snapshot
	// threshold, corruption policy, injectable FS). Zero value =
	// production defaults.
	Storage storage.Options
	// SyncInterval is the anti-entropy period; 0 disables the
	// background loop (Sync can still be driven manually).
	SyncInterval time.Duration
	// Group names the replica group this node belongs to in a sharded
	// deployment. It only takes effect once a placement map naming the
	// group is installed (psmap); empty or unmapped, the node behaves
	// like the classic unsharded store.
	Group string
	// WallClock injects the physical-clock source behind the node's
	// hybrid logical clock (nil = time.Now). The chaos fabric uses it
	// to skew individual nodes deterministically.
	WallClock func() time.Time
	// MaxClockOffset is the HLC skew tolerance (zero =
	// hlc.DefaultMaxOffset): remote stamps further ahead of this
	// node's physical clock are clamped when merged.
	MaxClockOffset time.Duration
}

// NewNode constructs a store node. If cfg.Dir is set, previous WAL
// contents are replayed before the node serves.
func NewNode(cfg Config) (*Node, error) {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "pstore"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassDatabase + ".PersistentStore"
	}
	// Anti-entropy is control-plane: replica convergence must survive
	// a client overload, so the sync verbs admit into the flow
	// controller's reserved headroom alongside lease renewals. Same
	// for the placement verbs: installing a new map and pulling a
	// moving partition are what ends an overloaded imbalance, so they
	// must not be shed with the data plane.
	dcfg.ControlVerbs = append(dcfg.ControlVerbs, "psdigest", "psfetch", "psmap", "pspull")
	n := &Node{
		Daemon:      daemon.New(dcfg),
		items:       make(map[string]Item),
		syncStop:    make(chan struct{}),
		group:       cfg.Group,
		placeIdx:    -1,
		transferSem: make(chan struct{}, 2),
	}
	tel := n.Telemetry()
	n.clock = hlc.New(cfg.WallClock, cfg.MaxClockOffset, tel)
	n.mWatermark = tel.Gauge(MetricHLCWatermark)
	n.mSyncRounds = tel.Counter(MetricSyncRounds)
	n.mSyncPulled = tel.Counter(MetricSyncPulled)
	n.mWrites = tel.Counter(MetricWritesApplied)
	n.mPlaceInstalls = tel.Counter(placement.MetricInstalls)
	n.mPlaceRejects = tel.Counter(placement.MetricRejects)
	n.mPlacePulled = tel.Counter(placement.MetricTransferPulls)
	n.mPlaceEpoch = tel.Gauge(placement.MetricEpoch)
	if cfg.Dir != "" {
		opts := cfg.Storage
		opts.Metrics = storage.Metrics{
			Appends:           tel.Counter(MetricWALAppends),
			AppendErrors:      tel.Counter(MetricWALAppendErrors),
			Syncs:             tel.Counter(MetricWALSyncs),
			Snapshots:         tel.Counter(MetricSnapshots),
			SnapshotErrors:    tel.Counter(MetricSnapshotErrors),
			SegmentsTruncated: tel.Counter(MetricSegmentsTruncated),
			Replayed:          tel.Counter(MetricRecoveryReplayed),
			TornTails:         tel.Counter(MetricRecoveryTornTail),
			CorruptRecords:    tel.Counter(MetricRecoveryCorrupt),
			SnapshotsBad:      tel.Counter(MetricRecoveryBadSnaps),
			WALBytes:          tel.Gauge(MetricWALBytes),
			WALSegments:       tel.Gauge(MetricWALSegments),
		}
		eng, recovered, info, err := storage.Open(filepath.Join(cfg.Dir, dcfg.Name), opts)
		if err != nil {
			return nil, fmt.Errorf("pstore: open storage: %w", err)
		}
		n.eng = eng
		n.recovery = info
		// Replay through the same last-writer-wins merge normal writes
		// use, so recovery is insensitive to log order. The max HLC
		// stamp over the replayed records is the clock high-water mark:
		// forwarding past it keeps timestamps monotonic across the
		// restart even when the machine clock went backwards while the
		// process was down.
		var mark hlc.Timestamp
		n.mu.Lock()
		for _, rec := range recovered {
			ts := hlc.Timestamp(rec.HLC)
			if ts > mark {
				mark = ts
			}
			n.applyMemLocked(Item{Path: rec.Path, Value: rec.Value, Version: rec.Version, Deleted: rec.Deleted, HLC: ts})
		}
		n.mu.Unlock()
		n.clock.Forward(mark)
	}
	n.install()
	if cfg.SyncInterval > 0 {
		n.syncWG.Add(1)
		go n.syncLoop(cfg.SyncInterval)
	}
	return n, nil
}

// Recovery reports what the storage engine found at startup.
func (n *Node) Recovery() storage.RecoveryInfo { return n.recovery }

// Degraded reports whether the node has stopped acknowledging writes
// because its storage engine refused durability.
func (n *Node) Degraded() bool { return n.degraded.Load() }

// SetPeers configures the other replicas this node synchronizes with.
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	n.peers = append([]string(nil), addrs...)
	n.mu.Unlock()
}

// Stop halts synchronization, the daemon, and the WAL.
func (n *Node) Stop() {
	select {
	case <-n.syncStop:
	default:
		close(n.syncStop)
	}
	n.syncWG.Wait()
	n.Daemon.Stop()
	n.transferWG.Wait()
	n.snapWG.Wait()
	if n.eng != nil {
		_ = n.eng.Close()
	}
}

// Crash abandons the node without clean shutdown: the daemon stops
// serving, but the storage engine is dropped mid-flight — no final
// fsync, no close. Combined with an injected FS whose unsynced writes
// vanish (chaos.DiskFS), this is a process kill. Test hook for
// kill-and-restart chaos; production shutdown is Stop.
func (n *Node) Crash() {
	select {
	case <-n.syncStop:
	default:
		close(n.syncStop)
	}
	n.syncWG.Wait()
	if n.eng != nil {
		n.eng.Crash()
	}
	n.Daemon.Stop()
	n.transferWG.Wait()
	n.snapWG.Wait()
}

// apply installs the item in memory if it is newer than what the node
// holds, returning whether it was applied. Durability is applyDurable.
func (n *Node) apply(it Item) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applyMemLocked(it)
}

func (n *Node) applyMemLocked(it Item) bool {
	cur, exists := n.items[it.Path]
	if exists && !newer(it, cur) {
		return false
	}
	n.items[it.Path] = it
	n.accepted++
	n.mWrites.Inc()
	if ts := uint64(it.HLC); ts > n.appliedHLC.Load() {
		// Only this goroutine advances the watermark (mu is held), so
		// load-then-store cannot regress it.
		n.appliedHLC.Store(ts)
		n.mWatermark.Set(int64(ts))
	}
	return true
}

// Watermark returns the node's max-applied HLC: the advisory
// freshness signal it attaches to data and digest replies.
func (n *Node) Watermark() hlc.Timestamp { return hlc.Timestamp(n.appliedHLC.Load()) }

// Clock returns the node's hybrid logical clock.
func (n *Node) Clock() *hlc.Clock { return n.clock }

// stamp resolves the HLC stamp for an incoming write: the client's
// stamp from the frame header when present (merged into the node's
// clock so causality propagates), or a fresh local reading for legacy
// unstamped writers. Client stamps are used verbatim on the item so
// every replica of the write stores the same stamp.
func (n *Node) stamp(ctx *daemon.Ctx) hlc.Timestamp {
	if ctx != nil && !ctx.HLC.IsZero() {
		n.clock.Update(ctx.HLC)
		return ctx.HLC
	}
	return n.clock.Now()
}

// watermarkArg is the reply argument carrying the node's max-applied
// HLC ("hlc"), and itemHLCArg the per-item stamp on psfetch replies.
const (
	watermarkArg = "hlc"
	itemHLCArg   = "item_hlc"
)

// stampReply attaches the node's applied watermark to an outgoing
// reply. Every data-plane and digest reply carries it, which is what
// lets clients maintain per-replica advisory staleness estimates
// without any dedicated gossip traffic.
func (n *Node) stampReply(reply *cmdlang.CmdLine) *cmdlang.CmdLine {
	return reply.SetInt(watermarkArg, int64(n.appliedHLC.Load()))
}

// applyDurable is the write path: install in memory, then block until
// the record is fsync-durable in the WAL (group commit batches
// concurrent callers into shared fsyncs). The commit point for an
// acknowledgment is the fsync — a write whose append fails is NOT
// acked, the node latches degraded, and the caller must answer
// `busy` so the quorum counts someone else. Memory may then be ahead
// of the log; anti-entropy and the restart replay reconcile that,
// and last-writer-wins makes the overlap idempotent.
func (n *Node) applyDurable(it Item) (bool, error) {
	if n.eng != nil && n.degraded.Load() {
		return false, fmt.Errorf("pstore: storage degraded: %w", n.eng.Err())
	}
	n.mu.Lock()
	applied := n.applyMemLocked(it)
	n.mu.Unlock()
	if !applied || n.eng == nil {
		return applied, nil
	}
	err := n.eng.Append(storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted, HLC: uint64(it.HLC)})
	if err != nil {
		n.degraded.Store(true)
		return false, fmt.Errorf("pstore: wal append: %w", err)
	}
	n.maybeSnapshot()
	return true, nil
}

// degradedRetryAfter is the retry hint sent with busy replies from a
// node whose disk refused durability: long enough that the client's
// quorum machinery prefers healthy replicas, short enough that a
// restarted (recovered) node is retried promptly.
const degradedRetryAfter = 100 * time.Millisecond

// applyAsync is the handler-side write path: install in memory, then
// make the record durable WITHOUT holding the daemon's serial control
// thread through the fsync. The invocation detaches, the engine's
// commit loop batches this record with every other write in flight
// (group commit), and the ack goes out when the covering fsync
// returns. Detaching is what creates the batch: if the control thread
// blocked per write, the engine would only ever see one append at a
// time and every write would pay a private fsync.
func (n *Node) applyAsync(ctx *daemon.Ctx, it Item, reply func(applied bool) *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	if n.eng == nil {
		return reply(n.apply(it)), nil
	}
	if n.degraded.Load() {
		return cmdlang.Busy(degradedRetryAfter), nil
	}
	n.mu.Lock()
	applied := n.applyMemLocked(it)
	n.mu.Unlock()
	if !applied {
		// Not newer than what the node already holds (and has already
		// made durable or is in the middle of making durable): nothing
		// new to log.
		return reply(false), nil
	}
	rec := storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted, HLC: uint64(it.HLC)}
	finish, ok := ctx.Detach()
	if !ok {
		// Local/nested dispatch: pay the fsync on this goroutine.
		if err := n.eng.Append(rec); err != nil {
			n.degraded.Store(true)
			return cmdlang.Busy(degradedRetryAfter), nil
		}
		n.maybeSnapshot()
		return reply(true), nil
	}
	n.eng.AppendAsync(rec, func(err error) {
		if err != nil {
			n.degraded.Store(true)
			finish(cmdlang.Busy(degradedRetryAfter))
			return
		}
		n.maybeSnapshot()
		finish(reply(true))
	})
	return nil, nil
}

// maybeSnapshot starts one background compaction when the log has
// outgrown its threshold: seal the segments, write the current state
// as an atomic snapshot, truncate the covered log. Single-flight; a
// failed snapshot only costs disk space, never data, so it does not
// degrade the node.
func (n *Node) maybeSnapshot() {
	if n.eng == nil || !n.eng.ShouldSnapshot() || !n.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	n.snapWG.Add(1)
	go func() {
		defer n.snapWG.Done()
		defer n.snapInFlight.Store(false)
		_ = n.eng.Snapshot(n.snapshotRecords) // counted via pstore.snapshot.errors
	}()
}

// snapshotRecords collects the node's full state (tombstones
// included) for a compacted snapshot. Called by the engine after the
// log is sealed, so it is guaranteed to cover every sealed record.
func (n *Node) snapshotRecords() []storage.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	recs := make([]storage.Record, 0, len(n.items))
	for _, it := range n.items {
		recs = append(recs, storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted, HLC: uint64(it.HLC)})
	}
	return recs
}

// CompactNow forces one synchronous snapshot+truncate cycle.
func (n *Node) CompactNow() error {
	if n.eng == nil {
		return nil
	}
	return n.eng.Snapshot(n.snapshotRecords)
}

// get returns the live item at path.
func (n *Node) get(path string) (Item, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	it, ok := n.items[path]
	if !ok || it.Deleted {
		return Item{}, false
	}
	return it, true
}

// Digest returns every path's version (including tombstones), the
// anti-entropy exchange unit.
func (n *Node) Digest() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]uint64, len(n.items))
	for p, it := range n.items {
		out[p] = it.Version
	}
	return out
}

// Len returns the number of live (non-tombstone) items.
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, it := range n.items {
		if !it.Deleted {
			c++
		}
	}
	return c
}

// Counters returns lifetime accepted-write and synced-item counts.
func (n *Node) Counters() (accepted, synced int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.accepted, n.synced
}

// SyncWith pulls every item the peer holds at a newer version than
// this node (one direction of Fig 17's constant data
// synchronization). It returns the number of items pulled.
func (n *Node) SyncWith(peerAddr string) (int, error) {
	return n.syncFrom(context.Background(), peerAddr, -1, 0)
}

// syncBatch is how many pulled items are made durable per WAL batch
// during sync and partition transfer (shared fsyncs via group commit).
const syncBatch = 64

// syncFrom is the pull engine behind anti-entropy (partition < 0:
// everything) and rebalance transfer (partition >= 0: the peer's
// digest is restricted to one partition of the given count). Pulled
// items are made durable in batches so a bulk transfer shares fsyncs
// instead of paying one per item.
func (n *Node) syncFrom(ctx context.Context, peerAddr string, partition, partitions int) (int, error) {
	n.mSyncRounds.Inc()
	dig := cmdlang.New("psdigest")
	if partition >= 0 {
		dig.SetInt("partition", int64(partition)).SetInt("partitions", int64(partitions))
	}
	reply, err := n.Pool().CallContext(ctx, peerAddr, dig)
	if err != nil {
		return 0, err
	}
	paths := reply.Strings("paths")
	versions := reply.Vector("versions")
	if len(paths) != len(versions) {
		return 0, fmt.Errorf("pstore: malformed digest from %s", peerAddr)
	}
	pulled := 0
	batch := make([]Item, 0, syncBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		applied, aerr := n.applyDurableBatch(batch)
		batch = batch[:0]
		if aerr != nil {
			// A node that cannot log what it pulls must not advertise
			// it either: abort the round.
			return aerr
		}
		if applied > 0 {
			pulled += applied
			n.mSyncPulled.Add(int64(applied))
			n.mu.Lock()
			n.synced += int64(applied)
			n.mu.Unlock()
		}
		return nil
	}
	// abort flushes what was already fetched (those items are good)
	// before surfacing the error that ends the round.
	abort := func(err error) (int, error) {
		if ferr := flush(); ferr != nil {
			return pulled, ferr
		}
		return pulled, err
	}
	for i, p := range paths {
		v, _ := versions[i].AsInt()
		if v < 0 {
			// A negative digest version would wrap to ~1.8e19 and make
			// this node pull (and re-advertise) a poisoned item.
			return abort(fmt.Errorf("pstore: corrupt digest from %s: negative version %d at %s", peerAddr, v, p))
		}
		n.mu.Lock()
		cur, exists := n.items[p]
		n.mu.Unlock()
		if exists && cur.Version >= uint64(v) {
			continue
		}
		itemReply, err := n.Pool().CallContext(ctx, peerAddr, cmdlang.New("psfetch").SetString("path", p))
		if err != nil {
			return abort(err)
		}
		val, decErr := decodeValue(itemReply.Str("value", ""))
		if decErr != nil {
			// Never replicate corruption: abort the pull so the next
			// anti-entropy round retries against a healthy peer.
			return abort(fmt.Errorf("pstore: sync with %s: %w", peerAddr, decErr))
		}
		ver, verErr := replyVersion(itemReply, peerAddr)
		if verErr != nil {
			return abort(fmt.Errorf("pstore: sync with %s: %w", peerAddr, verErr))
		}
		var its hlc.Timestamp
		if v := itemReply.Int(itemHLCArg, 0); v > 0 {
			its = hlc.Timestamp(v)
			n.clock.Update(its)
		}
		batch = append(batch, Item{
			Path:    p,
			Value:   val,
			Version: ver,
			Deleted: itemReply.Bool("deleted", false),
			HLC:     its,
		})
		if len(batch) >= syncBatch {
			if ferr := flush(); ferr != nil {
				return pulled, ferr
			}
		}
	}
	if ferr := flush(); ferr != nil {
		return pulled, ferr
	}
	return pulled, nil
}

// applyDurableBatch installs items in memory and logs the applied
// ones through one shared WAL batch: all appends are in the engine's
// queue before the first wait, so the commit loop coalesces their
// fsyncs. Returns how many items were applied in memory. Like
// applyDurable, a refused append latches degraded.
func (n *Node) applyDurableBatch(items []Item) (int, error) {
	if n.eng != nil && n.degraded.Load() {
		return 0, fmt.Errorf("pstore: storage degraded: %w", n.eng.Err())
	}
	n.mu.Lock()
	applied := 0
	recs := make([]storage.Record, 0, len(items))
	for _, it := range items {
		if n.applyMemLocked(it) {
			applied++
			recs = append(recs, storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted, HLC: uint64(it.HLC)})
		}
	}
	n.mu.Unlock()
	if n.eng == nil || len(recs) == 0 {
		return applied, nil
	}
	if err := n.eng.AppendBatch(recs); err != nil {
		n.degraded.Store(true)
		return applied, fmt.Errorf("pstore: wal append: %w", err)
	}
	n.maybeSnapshot()
	return applied, nil
}

// Placement returns the installed placement map (nil on an unsharded
// node) and this node's group index within it (-1 when absent).
func (n *Node) Placement() (*placement.Map, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.place, n.placeIdx
}

// Group returns the replica-group name this node was configured with.
func (n *Node) Group() string { return n.group }

// routeCheck enforces the placement contract on a data-plane request
// addressed to path. reqEpoch is the client's placement epoch (0 when
// the client is unsharded — legacy traffic is admitted wherever it
// lands). It returns nil when the request may proceed, or the
// wrong_group fail reply the handler must return. The rules:
//
//   - no installed map: accept everything (unsharded compatibility);
//   - a stamped request older than the partition's last routing
//     change is rejected even by the owner — a client that stale
//     could single-apply a write that a concurrent move then fails
//     to carry to the new owner;
//   - the owning group serves reads and writes;
//   - the destination of an in-flight move accepts writes only
//     (reads stay on the source until cutover so they never miss
//     history the destination has not pulled yet).
func (n *Node) routeCheck(path string, reqEpoch int64, write bool) *cmdlang.CmdLine {
	n.mu.Lock()
	ps, gi := n.place, n.placeIdx
	n.mu.Unlock()
	if ps == nil {
		return nil
	}
	p := placement.PartitionOf(path, ps.Partitions)
	if reqEpoch > 0 && uint64(reqEpoch) < ps.Stamp[p] {
		n.mPlaceRejects.Inc()
		return wrongGroupReply(ps, p, fmt.Sprintf("epoch %d predates partition %d routing change at epoch %d", reqEpoch, p, ps.Stamp[p]))
	}
	if gi >= 0 {
		if ps.Assignment[p] == gi {
			return nil
		}
		if write {
			if mv := ps.MoveFor(p); mv != nil && mv.To == gi {
				return nil
			}
		}
	}
	n.mPlaceRejects.Inc()
	return wrongGroupReply(ps, p, fmt.Sprintf("group %q does not serve partition %d", n.group, p))
}

// wrongGroupReply builds the placement redirect, carrying the
// server's epoch and the partition's owning group so a stale client
// can tell how far behind it is before refetching the map.
func wrongGroupReply(ps *placement.Map, p int, msg string) *cmdlang.CmdLine {
	return cmdlang.Fail(cmdlang.CodeWrongGroup, msg).
		SetInt("epoch", int64(ps.Epoch)).
		SetString("owner", ps.Groups[ps.Assignment[p]].Name)
}

// SyncAll runs SyncWith against every configured peer.
func (n *Node) SyncAll() int {
	n.mu.Lock()
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()
	total := 0
	for _, p := range peers {
		if pulled, err := n.SyncWith(p); err == nil {
			total += pulled
		}
	}
	return total
}

func (n *Node) syncLoop(interval time.Duration) {
	defer n.syncWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.syncStop:
			return
		case <-t.C:
			n.SyncAll()
		}
	}
}

func (n *Node) install() {
	n.Handle(cmdlang.CommandSpec{
		Name: "psput",
		Doc:  "store an object at a namespace path",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "value", Kind: cmdlang.KindString, Required: true, Doc: "hex-encoded bytes"},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
			{Name: "epoch", Kind: cmdlang.KindInt, Doc: "client placement epoch"},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		path := c.Str("path", "")
		if err := ValidatePath(path); err != nil {
			return nil, err
		}
		if fail := n.routeCheck(path, c.Int("epoch", 0), true); fail != nil {
			return fail, nil
		}
		val, decErr := decodeValue(c.Str("value", ""))
		if decErr != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, decErr.Error()), nil
		}
		version := c.Int("version", 0)
		if version < 0 {
			// Accepting a negative version would wrap to a huge uint64
			// that wins every later quorum read.
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		it := Item{
			Path:    path,
			Value:   val,
			Version: uint64(version),
			HLC:     n.stamp(ctx),
		}
		// The disk refusing durability answers busy (retryable, not a
		// definitive failure) so the quorum counts someone else.
		return n.applyAsync(ctx, it, func(applied bool) *cmdlang.CmdLine {
			return n.stampReply(cmdlang.OK().SetBool("applied", applied).SetInt("version", int64(it.Version)))
		})
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psget",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "epoch", Kind: cmdlang.KindInt, Doc: "client placement epoch"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		path := c.Str("path", "")
		if fail := n.routeCheck(path, c.Int("epoch", 0), false); fail != nil {
			return fail, nil
		}
		it, ok := n.get(path)
		if !ok {
			// Stamped even on a miss so the reply still refreshes the
			// client's advisory lag sample for this replica.
			return n.stampReply(cmdlang.Fail(cmdlang.CodeNotFound, "no object at path")), nil
		}
		return n.stampReply(cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version))), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdel",
		Doc:  "delete an object (writes a tombstone)",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
			{Name: "epoch", Kind: cmdlang.KindInt, Doc: "client placement epoch"},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		version := c.Int("version", 0)
		if version < 0 {
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		path := c.Str("path", "")
		if fail := n.routeCheck(path, c.Int("epoch", 0), true); fail != nil {
			return fail, nil
		}
		it := Item{
			Path:    path,
			Version: uint64(version),
			Deleted: true,
			HLC:     n.stamp(ctx),
		}
		return n.applyAsync(ctx, it, func(applied bool) *cmdlang.CmdLine {
			return n.stampReply(cmdlang.OK().SetBool("applied", applied))
		})
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "pslist",
		Doc:  "list live paths under a prefix",
		Args: []cmdlang.ArgSpec{{Name: "prefix", Kind: cmdlang.KindString}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		prefix := c.Str("prefix", "")
		n.mu.Lock()
		ps, gi := n.place, n.placeIdx
		var paths []string
		for p, it := range n.items {
			if it.Deleted || !strings.HasPrefix(p, prefix) {
				continue
			}
			// Retained copies of moved-away partitions are data the
			// group no longer serves: listing them would double-count
			// paths when the client unions lists across groups.
			if ps != nil && (gi < 0 || ps.Assignment[placement.PartitionOf(p, ps.Partitions)] != gi) {
				continue
			}
			paths = append(paths, p)
		}
		n.mu.Unlock()
		sort.Strings(paths)
		return cmdlang.OK().SetInt("count", int64(len(paths))).Set("paths", cmdlang.StringVector(paths...)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdigest",
		Doc:  "anti-entropy digest: every path and its version",
		Args: []cmdlang.ArgSpec{
			{Name: "partition", Kind: cmdlang.KindInt, Doc: "restrict the digest to one partition"},
			{Name: "partitions", Kind: cmdlang.KindInt, Doc: "partition count the filter hashes against"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		// The filter hashes with the caller-supplied count, so a
		// transfer source serves partition-scoped digests without
		// needing a placement map of its own.
		filtered := c.Has("partition")
		part := int(c.Int("partition", -1))
		parts := int(c.Int("partitions", 0))
		if filtered && (part < 0 || parts <= 0 || part >= parts) {
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("partition %d of %d", part, parts)), nil
		}
		digest := n.Digest()
		paths := make([]string, 0, len(digest))
		for p := range digest {
			if filtered && placement.PartitionOf(p, parts) != part {
				continue
			}
			paths = append(paths, p)
		}
		sort.Strings(paths)
		versions := make([]int64, len(paths))
		for i, p := range paths {
			versions[i] = int64(digest[p])
		}
		return n.stampReply(cmdlang.OK().
			Set("paths", cmdlang.StringVector(paths...)).
			Set("versions", cmdlang.IntVector(versions...))), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psfetch",
		Doc:  "fetch an item verbatim (including tombstones) for sync",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "epoch", Kind: cmdlang.KindInt, Doc: "client placement epoch"},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		path := c.Str("path", "")
		// Placement is enforced only for epoch-stamped fetches (the
		// sharded client's version probe). Unstamped fetches are the
		// anti-entropy and transfer pull path, which must read
		// retained copies regardless of ownership.
		if c.Has("epoch") {
			if fail := n.routeCheck(path, c.Int("epoch", 0), false); fail != nil {
				return fail, nil
			}
		}
		n.mu.Lock()
		it, ok := n.items[path]
		n.mu.Unlock()
		if !ok {
			return n.stampReply(cmdlang.Fail(cmdlang.CodeNotFound, "no item")), nil
		}
		return n.stampReply(cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version)).
			SetInt(itemHLCArg, int64(it.HLC)).
			SetBool("deleted", it.Deleted)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psmap",
		Doc:  "install a placement map (epoch must not regress)",
		Args: []cmdlang.ArgSpec{{Name: "map", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		m, err := placement.DecodeString(c.Str("map", ""))
		if err != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, err.Error()), nil
		}
		n.mu.Lock()
		if n.place != nil && m.Epoch < n.place.Epoch {
			cur := n.place.Epoch
			n.mu.Unlock()
			return cmdlang.Fail(cmdlang.CodeConflict,
				fmt.Sprintf("map epoch %d older than installed %d", m.Epoch, cur)).
				SetInt("epoch", int64(cur)), nil
		}
		// Equal epochs are accepted idempotently: a restarted
		// coordinator re-pushes the map it finds published.
		n.place = m
		n.placeIdx = m.GroupIndex(n.group)
		n.mu.Unlock()
		n.mPlaceInstalls.Inc()
		n.mPlaceEpoch.Set(int64(m.Epoch))
		return cmdlang.OK().SetInt("epoch", int64(m.Epoch)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "pspull",
		Doc:  "pull one partition from its current owners (rebalance transfer)",
		Args: []cmdlang.ArgSpec{{Name: "partition", Kind: cmdlang.KindInt, Required: true}},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		part := int(c.Int("partition", -1))
		n.mu.Lock()
		ps, gi := n.place, n.placeIdx
		peers := append([]string(nil), n.peers...)
		n.mu.Unlock()
		if ps == nil {
			return cmdlang.Fail(cmdlang.CodeUnavailable, "no placement map installed"), nil
		}
		if part < 0 || part >= ps.Partitions {
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("partition %d of %d", part, ps.Partitions)), nil
		}
		var sources []string
		switch mv := ps.MoveFor(part); {
		case mv != nil && gi >= 0 && mv.To == gi:
			sources = ps.Groups[mv.From].Replicas
		case gi >= 0 && ps.Assignment[part] == gi:
			// Already the owner (a resumed rebalance re-pulling after
			// cutover): converge against same-group peers instead.
			sources = peers
		default:
			return cmdlang.Fail(cmdlang.CodeConflict,
				fmt.Sprintf("group %q is not the destination of partition %d", n.group, part)), nil
		}
		select {
		case n.transferSem <- struct{}{}:
		default:
			// Transfers fan out pulls and fsync batches; past the bound
			// the coordinator retries rather than piling more on.
			return cmdlang.Busy(degradedRetryAfter), nil
		}
		tctx := ctx.TraceContext()
		work := func() *cmdlang.CmdLine {
			defer func() { <-n.transferSem }()
			pulled, srcOK := 0, 0
			var lastErr error
			for _, src := range sources {
				got, err := n.syncFrom(tctx, src, part, ps.Partitions)
				pulled += got
				if err != nil {
					lastErr = err
					continue
				}
				srcOK++
			}
			n.mPlacePulled.Add(int64(pulled))
			if srcOK == 0 && len(sources) > 0 {
				return cmdlang.Fail(cmdlang.CodeUnavailable,
					fmt.Sprintf("pull partition %d: no source reachable: %v", part, lastErr))
			}
			return cmdlang.OK().
				SetInt("pulled", int64(pulled)).
				SetInt("sources_ok", int64(srcOK)).
				SetInt("sources", int64(len(sources)))
		}
		// Detach so the serial control thread is not held through a
		// bulk transfer; the semaphore above bounds the spawns.
		finish, ok := ctx.Detach()
		if !ok {
			return work(), nil
		}
		n.transferWG.Add(1)
		go func() {
			defer n.transferWG.Done()
			finish(work())
		}()
		return nil, nil
	})
}

// ValidatePath checks a namespace path: absolute, no empty segments.
func ValidatePath(path string) error {
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("pstore: path %q is not absolute", path)
	}
	if strings.Contains(path, "//") || path == "/" {
		return fmt.Errorf("pstore: path %q has empty segments", path)
	}
	return nil
}
