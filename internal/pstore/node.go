// Package pstore implements the ACE Persistent Store (§6, Fig 17):
// a cluster of three completely redundant storage servers that
// perform constant data synchronization so ACE services, user
// workspaces, and robust applications can always recover their last
// known state, even when one or two of the servers fail.
//
// Each node is an ACE daemon holding a versioned, hierarchical
// object-oriented namespace ("/wss/workspaces/john_doe/1"). Clients
// write through a majority quorum and read the highest version seen
// by a majority; nodes run anti-entropy synchronization so a crashed
// and restarted (or wiped) node converges back to its peers. Nodes
// optionally persist every accepted write to an on-disk write-ahead
// log that is replayed at startup.
package pstore

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/telemetry"
)

// Item is one versioned object in the namespace.
type Item struct {
	Path    string
	Value   []byte
	Version uint64
	Deleted bool
}

// newer reports whether a beats b under last-writer-wins with a
// deterministic value tiebreak (so all replicas converge on the same
// winner for equal versions).
func newer(a, b Item) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Deleted != b.Deleted {
		return a.Deleted // deletes win ties
	}
	return string(a.Value) > string(b.Value)
}

// walRecord is the on-disk form of one accepted write.
type walRecord struct {
	Path    string
	Value   []byte
	Version uint64
	Deleted bool
}

// Node is one persistent-store server.
type Node struct {
	*daemon.Daemon

	mu    sync.Mutex
	items map[string]Item

	walPath string
	walFile *os.File
	walEnc  *gob.Encoder

	peers    []string
	syncStop chan struct{}
	syncWG   sync.WaitGroup

	accepted int64 // writes applied (local or via sync)
	synced   int64 // items pulled by anti-entropy

	mSyncRounds *telemetry.Counter
	mSyncPulled *telemetry.Counter
	mWrites     *telemetry.Counter
}

// Config describes one store node.
type Config struct {
	// Daemon is the underlying shell configuration.
	Daemon daemon.Config
	// Dir, when non-empty, enables the write-ahead log in this
	// directory (replayed at startup).
	Dir string
	// SyncInterval is the anti-entropy period; 0 disables the
	// background loop (Sync can still be driven manually).
	SyncInterval time.Duration
}

// NewNode constructs a store node. If cfg.Dir is set, previous WAL
// contents are replayed before the node serves.
func NewNode(cfg Config) (*Node, error) {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "pstore"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassDatabase + ".PersistentStore"
	}
	// Anti-entropy is control-plane: replica convergence must survive
	// a client overload, so the sync verbs admit into the flow
	// controller's reserved headroom alongside lease renewals.
	dcfg.ControlVerbs = append(dcfg.ControlVerbs, "psdigest", "psfetch")
	n := &Node{
		Daemon:   daemon.New(dcfg),
		items:    make(map[string]Item),
		syncStop: make(chan struct{}),
	}
	tel := n.Telemetry()
	n.mSyncRounds = tel.Counter(MetricSyncRounds)
	n.mSyncPulled = tel.Counter(MetricSyncPulled)
	n.mWrites = tel.Counter(MetricWritesApplied)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("pstore: %w", err)
		}
		n.walPath = filepath.Join(cfg.Dir, dcfg.Name+".wal")
		if err := n.replayWAL(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(n.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("pstore: open wal: %w", err)
		}
		n.walFile = f
		n.walEnc = gob.NewEncoder(f)
	}
	n.install()
	if cfg.SyncInterval > 0 {
		n.syncWG.Add(1)
		go n.syncLoop(cfg.SyncInterval)
	}
	return n, nil
}

func (n *Node) replayWAL() error {
	f, err := os.Open(n.walPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("pstore: open wal for replay: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	for {
		var rec walRecord
		if derr := dec.Decode(&rec); derr != nil {
			// EOF (clean) or a torn tail record (crash mid-write):
			// stop replaying either way.
			return nil
		}
		n.applyLocked(Item{Path: rec.Path, Value: rec.Value, Version: rec.Version, Deleted: rec.Deleted}, false)
	}
}

// SetPeers configures the other replicas this node synchronizes with.
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	n.peers = append([]string(nil), addrs...)
	n.mu.Unlock()
}

// Stop halts synchronization, the daemon, and the WAL.
func (n *Node) Stop() {
	select {
	case <-n.syncStop:
	default:
		close(n.syncStop)
	}
	n.syncWG.Wait()
	n.Daemon.Stop()
	n.mu.Lock()
	if n.walFile != nil {
		n.walFile.Close()
		n.walFile = nil
	}
	n.mu.Unlock()
}

// apply installs the item if it is newer than what the node holds,
// returning whether it was applied. Writes are logged to the WAL when
// toWAL is set.
func (n *Node) apply(it Item, toWAL bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applyLocked(it, toWAL)
}

func (n *Node) applyLocked(it Item, toWAL bool) bool {
	cur, exists := n.items[it.Path]
	if exists && !newer(it, cur) {
		return false
	}
	n.items[it.Path] = it
	n.accepted++
	n.mWrites.Inc()
	if toWAL && n.walEnc != nil {
		n.walEnc.Encode(walRecord(it)) //nolint:errcheck — a lost tail record is recovered by anti-entropy
	}
	return true
}

// get returns the live item at path.
func (n *Node) get(path string) (Item, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	it, ok := n.items[path]
	if !ok || it.Deleted {
		return Item{}, false
	}
	return it, true
}

// Digest returns every path's version (including tombstones), the
// anti-entropy exchange unit.
func (n *Node) Digest() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]uint64, len(n.items))
	for p, it := range n.items {
		out[p] = it.Version
	}
	return out
}

// Len returns the number of live (non-tombstone) items.
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, it := range n.items {
		if !it.Deleted {
			c++
		}
	}
	return c
}

// Counters returns lifetime accepted-write and synced-item counts.
func (n *Node) Counters() (accepted, synced int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.accepted, n.synced
}

// SyncWith pulls every item the peer holds at a newer version than
// this node (one direction of Fig 17's constant data
// synchronization). It returns the number of items pulled.
func (n *Node) SyncWith(peerAddr string) (int, error) {
	n.mSyncRounds.Inc()
	reply, err := n.Pool().Call(peerAddr, cmdlang.New("psdigest"))
	if err != nil {
		return 0, err
	}
	paths := reply.Strings("paths")
	versions := reply.Vector("versions")
	if len(paths) != len(versions) {
		return 0, fmt.Errorf("pstore: malformed digest from %s", peerAddr)
	}
	pulled := 0
	for i, p := range paths {
		v, _ := versions[i].AsInt()
		if v < 0 {
			// A negative digest version would wrap to ~1.8e19 and make
			// this node pull (and re-advertise) a poisoned item.
			return pulled, fmt.Errorf("pstore: corrupt digest from %s: negative version %d at %s", peerAddr, v, p)
		}
		n.mu.Lock()
		cur, exists := n.items[p]
		n.mu.Unlock()
		if exists && cur.Version >= uint64(v) {
			continue
		}
		itemReply, err := n.Pool().Call(peerAddr, cmdlang.New("psfetch").SetString("path", p))
		if err != nil {
			return pulled, err
		}
		val, decErr := decodeValue(itemReply.Str("value", ""))
		if decErr != nil {
			// Never replicate corruption: abort the pull so the next
			// anti-entropy round retries against a healthy peer.
			return pulled, fmt.Errorf("pstore: sync with %s: %w", peerAddr, decErr)
		}
		ver, verErr := replyVersion(itemReply, peerAddr)
		if verErr != nil {
			return pulled, fmt.Errorf("pstore: sync with %s: %w", peerAddr, verErr)
		}
		it := Item{
			Path:    p,
			Value:   val,
			Version: ver,
			Deleted: itemReply.Bool("deleted", false),
		}
		if n.apply(it, true) {
			pulled++
			n.mSyncPulled.Inc()
			n.mu.Lock()
			n.synced++
			n.mu.Unlock()
		}
	}
	return pulled, nil
}

// SyncAll runs SyncWith against every configured peer.
func (n *Node) SyncAll() int {
	n.mu.Lock()
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()
	total := 0
	for _, p := range peers {
		if pulled, err := n.SyncWith(p); err == nil {
			total += pulled
		}
	}
	return total
}

func (n *Node) syncLoop(interval time.Duration) {
	defer n.syncWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.syncStop:
			return
		case <-t.C:
			n.SyncAll()
		}
	}
}

func (n *Node) install() {
	n.Handle(cmdlang.CommandSpec{
		Name: "psput",
		Doc:  "store an object at a namespace path",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "value", Kind: cmdlang.KindString, Required: true, Doc: "hex-encoded bytes"},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		path := c.Str("path", "")
		if err := ValidatePath(path); err != nil {
			return nil, err
		}
		val, decErr := decodeValue(c.Str("value", ""))
		if decErr != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, decErr.Error()), nil
		}
		version := c.Int("version", 0)
		if version < 0 {
			// Accepting a negative version would wrap to a huge uint64
			// that wins every later quorum read.
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		it := Item{
			Path:    path,
			Value:   val,
			Version: uint64(version),
		}
		applied := n.apply(it, true)
		return cmdlang.OK().SetBool("applied", applied).SetInt("version", int64(it.Version)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psget",
		Args: []cmdlang.ArgSpec{{Name: "path", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		it, ok := n.get(c.Str("path", ""))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no object at path"), nil
		}
		return cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdel",
		Doc:  "delete an object (writes a tombstone)",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		version := c.Int("version", 0)
		if version < 0 {
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		it := Item{
			Path:    c.Str("path", ""),
			Version: uint64(version),
			Deleted: true,
		}
		applied := n.apply(it, true)
		return cmdlang.OK().SetBool("applied", applied), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "pslist",
		Doc:  "list live paths under a prefix",
		Args: []cmdlang.ArgSpec{{Name: "prefix", Kind: cmdlang.KindString}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		prefix := c.Str("prefix", "")
		n.mu.Lock()
		var paths []string
		for p, it := range n.items {
			if !it.Deleted && strings.HasPrefix(p, prefix) {
				paths = append(paths, p)
			}
		}
		n.mu.Unlock()
		sort.Strings(paths)
		return cmdlang.OK().SetInt("count", int64(len(paths))).Set("paths", cmdlang.StringVector(paths...)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdigest",
		Doc:  "anti-entropy digest: every path and its version",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		digest := n.Digest()
		paths := make([]string, 0, len(digest))
		for p := range digest {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		versions := make([]int64, len(paths))
		for i, p := range paths {
			versions[i] = int64(digest[p])
		}
		return cmdlang.OK().
			Set("paths", cmdlang.StringVector(paths...)).
			Set("versions", cmdlang.IntVector(versions...)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psfetch",
		Doc:  "fetch an item verbatim (including tombstones) for sync",
		Args: []cmdlang.ArgSpec{{Name: "path", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		n.mu.Lock()
		it, ok := n.items[c.Str("path", "")]
		n.mu.Unlock()
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no item"), nil
		}
		return cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version)).
			SetBool("deleted", it.Deleted), nil
	})
}

// ValidatePath checks a namespace path: absolute, no empty segments.
func ValidatePath(path string) error {
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("pstore: path %q is not absolute", path)
	}
	if strings.Contains(path, "//") || path == "/" {
		return fmt.Errorf("pstore: path %q has empty segments", path)
	}
	return nil
}
