// Package pstore implements the ACE Persistent Store (§6, Fig 17):
// a cluster of three completely redundant storage servers that
// perform constant data synchronization so ACE services, user
// workspaces, and robust applications can always recover their last
// known state, even when one or two of the servers fail.
//
// Each node is an ACE daemon holding a versioned, hierarchical
// object-oriented namespace ("/wss/workspaces/john_doe/1"). Clients
// write through a majority quorum and read the highest version seen
// by a majority; nodes run anti-entropy synchronization so a crashed
// and restarted (or wiped) node converges back to its peers. Nodes
// optionally persist every accepted write through a durable storage
// engine (internal/pstore/storage): a group-commit write-ahead log
// with compacted snapshots, recovered at startup. A write is
// acknowledged only after it is fsync-durable; a node whose log is
// failing answers `busy` instead of lying about durability.
package pstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore/storage"
	"ace/internal/telemetry"
)

// Item is one versioned object in the namespace.
type Item struct {
	Path    string
	Value   []byte
	Version uint64
	Deleted bool
}

// newer reports whether a beats b under last-writer-wins with a
// deterministic value tiebreak (so all replicas converge on the same
// winner for equal versions).
func newer(a, b Item) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Deleted != b.Deleted {
		return a.Deleted // deletes win ties
	}
	return string(a.Value) > string(b.Value)
}

// Node is one persistent-store server.
type Node struct {
	*daemon.Daemon

	mu    sync.Mutex
	items map[string]Item

	eng      *storage.Engine
	recovery storage.RecoveryInfo
	// degraded latches once the storage engine refuses durability:
	// the node stops acknowledging writes (retryable busy) so a dead
	// disk cannot silently count toward quorums. Reads still serve.
	degraded     atomic.Bool
	snapInFlight atomic.Bool
	snapWG       sync.WaitGroup

	peers    []string
	syncStop chan struct{}
	syncWG   sync.WaitGroup

	accepted int64 // writes applied (local or via sync)
	synced   int64 // items pulled by anti-entropy

	mSyncRounds *telemetry.Counter
	mSyncPulled *telemetry.Counter
	mWrites     *telemetry.Counter
}

// Config describes one store node.
type Config struct {
	// Daemon is the underlying shell configuration.
	Daemon daemon.Config
	// Dir, when non-empty, enables durable storage: the node keeps a
	// group-commit WAL and compacted snapshots under Dir/<name>/ and
	// recovers from them at startup.
	Dir string
	// Storage tunes the storage engine (segment size, snapshot
	// threshold, corruption policy, injectable FS). Zero value =
	// production defaults.
	Storage storage.Options
	// SyncInterval is the anti-entropy period; 0 disables the
	// background loop (Sync can still be driven manually).
	SyncInterval time.Duration
}

// NewNode constructs a store node. If cfg.Dir is set, previous WAL
// contents are replayed before the node serves.
func NewNode(cfg Config) (*Node, error) {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "pstore"
	}
	if dcfg.Class == "" {
		dcfg.Class = hier.ClassDatabase + ".PersistentStore"
	}
	// Anti-entropy is control-plane: replica convergence must survive
	// a client overload, so the sync verbs admit into the flow
	// controller's reserved headroom alongside lease renewals.
	dcfg.ControlVerbs = append(dcfg.ControlVerbs, "psdigest", "psfetch")
	n := &Node{
		Daemon:   daemon.New(dcfg),
		items:    make(map[string]Item),
		syncStop: make(chan struct{}),
	}
	tel := n.Telemetry()
	n.mSyncRounds = tel.Counter(MetricSyncRounds)
	n.mSyncPulled = tel.Counter(MetricSyncPulled)
	n.mWrites = tel.Counter(MetricWritesApplied)
	if cfg.Dir != "" {
		opts := cfg.Storage
		opts.Metrics = storage.Metrics{
			Appends:           tel.Counter(MetricWALAppends),
			AppendErrors:      tel.Counter(MetricWALAppendErrors),
			Syncs:             tel.Counter(MetricWALSyncs),
			Snapshots:         tel.Counter(MetricSnapshots),
			SnapshotErrors:    tel.Counter(MetricSnapshotErrors),
			SegmentsTruncated: tel.Counter(MetricSegmentsTruncated),
			Replayed:          tel.Counter(MetricRecoveryReplayed),
			TornTails:         tel.Counter(MetricRecoveryTornTail),
			CorruptRecords:    tel.Counter(MetricRecoveryCorrupt),
			SnapshotsBad:      tel.Counter(MetricRecoveryBadSnaps),
			WALBytes:          tel.Gauge(MetricWALBytes),
			WALSegments:       tel.Gauge(MetricWALSegments),
		}
		eng, recovered, info, err := storage.Open(filepath.Join(cfg.Dir, dcfg.Name), opts)
		if err != nil {
			return nil, fmt.Errorf("pstore: open storage: %w", err)
		}
		n.eng = eng
		n.recovery = info
		// Replay through the same last-writer-wins merge normal writes
		// use, so recovery is insensitive to log order.
		n.mu.Lock()
		for _, rec := range recovered {
			n.applyMemLocked(Item{Path: rec.Path, Value: rec.Value, Version: rec.Version, Deleted: rec.Deleted})
		}
		n.mu.Unlock()
	}
	n.install()
	if cfg.SyncInterval > 0 {
		n.syncWG.Add(1)
		go n.syncLoop(cfg.SyncInterval)
	}
	return n, nil
}

// Recovery reports what the storage engine found at startup.
func (n *Node) Recovery() storage.RecoveryInfo { return n.recovery }

// Degraded reports whether the node has stopped acknowledging writes
// because its storage engine refused durability.
func (n *Node) Degraded() bool { return n.degraded.Load() }

// SetPeers configures the other replicas this node synchronizes with.
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	n.peers = append([]string(nil), addrs...)
	n.mu.Unlock()
}

// Stop halts synchronization, the daemon, and the WAL.
func (n *Node) Stop() {
	select {
	case <-n.syncStop:
	default:
		close(n.syncStop)
	}
	n.syncWG.Wait()
	n.Daemon.Stop()
	n.snapWG.Wait()
	if n.eng != nil {
		_ = n.eng.Close()
	}
}

// Crash abandons the node without clean shutdown: the daemon stops
// serving, but the storage engine is dropped mid-flight — no final
// fsync, no close. Combined with an injected FS whose unsynced writes
// vanish (chaos.DiskFS), this is a process kill. Test hook for
// kill-and-restart chaos; production shutdown is Stop.
func (n *Node) Crash() {
	select {
	case <-n.syncStop:
	default:
		close(n.syncStop)
	}
	n.syncWG.Wait()
	if n.eng != nil {
		n.eng.Crash()
	}
	n.Daemon.Stop()
	n.snapWG.Wait()
}

// apply installs the item in memory if it is newer than what the node
// holds, returning whether it was applied. Durability is applyDurable.
func (n *Node) apply(it Item) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applyMemLocked(it)
}

func (n *Node) applyMemLocked(it Item) bool {
	cur, exists := n.items[it.Path]
	if exists && !newer(it, cur) {
		return false
	}
	n.items[it.Path] = it
	n.accepted++
	n.mWrites.Inc()
	return true
}

// applyDurable is the write path: install in memory, then block until
// the record is fsync-durable in the WAL (group commit batches
// concurrent callers into shared fsyncs). The commit point for an
// acknowledgment is the fsync — a write whose append fails is NOT
// acked, the node latches degraded, and the caller must answer
// `busy` so the quorum counts someone else. Memory may then be ahead
// of the log; anti-entropy and the restart replay reconcile that,
// and last-writer-wins makes the overlap idempotent.
func (n *Node) applyDurable(it Item) (bool, error) {
	if n.eng != nil && n.degraded.Load() {
		return false, fmt.Errorf("pstore: storage degraded: %w", n.eng.Err())
	}
	n.mu.Lock()
	applied := n.applyMemLocked(it)
	n.mu.Unlock()
	if !applied || n.eng == nil {
		return applied, nil
	}
	err := n.eng.Append(storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted})
	if err != nil {
		n.degraded.Store(true)
		return false, fmt.Errorf("pstore: wal append: %w", err)
	}
	n.maybeSnapshot()
	return true, nil
}

// degradedRetryAfter is the retry hint sent with busy replies from a
// node whose disk refused durability: long enough that the client's
// quorum machinery prefers healthy replicas, short enough that a
// restarted (recovered) node is retried promptly.
const degradedRetryAfter = 100 * time.Millisecond

// applyAsync is the handler-side write path: install in memory, then
// make the record durable WITHOUT holding the daemon's serial control
// thread through the fsync. The invocation detaches, the engine's
// commit loop batches this record with every other write in flight
// (group commit), and the ack goes out when the covering fsync
// returns. Detaching is what creates the batch: if the control thread
// blocked per write, the engine would only ever see one append at a
// time and every write would pay a private fsync.
func (n *Node) applyAsync(ctx *daemon.Ctx, it Item, reply func(applied bool) *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
	if n.eng == nil {
		return reply(n.apply(it)), nil
	}
	if n.degraded.Load() {
		return cmdlang.Busy(degradedRetryAfter), nil
	}
	n.mu.Lock()
	applied := n.applyMemLocked(it)
	n.mu.Unlock()
	if !applied {
		// Not newer than what the node already holds (and has already
		// made durable or is in the middle of making durable): nothing
		// new to log.
		return reply(false), nil
	}
	rec := storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted}
	finish, ok := ctx.Detach()
	if !ok {
		// Local/nested dispatch: pay the fsync on this goroutine.
		if err := n.eng.Append(rec); err != nil {
			n.degraded.Store(true)
			return cmdlang.Busy(degradedRetryAfter), nil
		}
		n.maybeSnapshot()
		return reply(true), nil
	}
	n.eng.AppendAsync(rec, func(err error) {
		if err != nil {
			n.degraded.Store(true)
			finish(cmdlang.Busy(degradedRetryAfter))
			return
		}
		n.maybeSnapshot()
		finish(reply(true))
	})
	return nil, nil
}

// maybeSnapshot starts one background compaction when the log has
// outgrown its threshold: seal the segments, write the current state
// as an atomic snapshot, truncate the covered log. Single-flight; a
// failed snapshot only costs disk space, never data, so it does not
// degrade the node.
func (n *Node) maybeSnapshot() {
	if n.eng == nil || !n.eng.ShouldSnapshot() || !n.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	n.snapWG.Add(1)
	go func() {
		defer n.snapWG.Done()
		defer n.snapInFlight.Store(false)
		_ = n.eng.Snapshot(n.snapshotRecords) // counted via pstore.snapshot.errors
	}()
}

// snapshotRecords collects the node's full state (tombstones
// included) for a compacted snapshot. Called by the engine after the
// log is sealed, so it is guaranteed to cover every sealed record.
func (n *Node) snapshotRecords() []storage.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	recs := make([]storage.Record, 0, len(n.items))
	for _, it := range n.items {
		recs = append(recs, storage.Record{Path: it.Path, Value: it.Value, Version: it.Version, Deleted: it.Deleted})
	}
	return recs
}

// CompactNow forces one synchronous snapshot+truncate cycle.
func (n *Node) CompactNow() error {
	if n.eng == nil {
		return nil
	}
	return n.eng.Snapshot(n.snapshotRecords)
}

// get returns the live item at path.
func (n *Node) get(path string) (Item, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	it, ok := n.items[path]
	if !ok || it.Deleted {
		return Item{}, false
	}
	return it, true
}

// Digest returns every path's version (including tombstones), the
// anti-entropy exchange unit.
func (n *Node) Digest() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]uint64, len(n.items))
	for p, it := range n.items {
		out[p] = it.Version
	}
	return out
}

// Len returns the number of live (non-tombstone) items.
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, it := range n.items {
		if !it.Deleted {
			c++
		}
	}
	return c
}

// Counters returns lifetime accepted-write and synced-item counts.
func (n *Node) Counters() (accepted, synced int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.accepted, n.synced
}

// SyncWith pulls every item the peer holds at a newer version than
// this node (one direction of Fig 17's constant data
// synchronization). It returns the number of items pulled.
func (n *Node) SyncWith(peerAddr string) (int, error) {
	n.mSyncRounds.Inc()
	reply, err := n.Pool().Call(peerAddr, cmdlang.New("psdigest"))
	if err != nil {
		return 0, err
	}
	paths := reply.Strings("paths")
	versions := reply.Vector("versions")
	if len(paths) != len(versions) {
		return 0, fmt.Errorf("pstore: malformed digest from %s", peerAddr)
	}
	pulled := 0
	for i, p := range paths {
		v, _ := versions[i].AsInt()
		if v < 0 {
			// A negative digest version would wrap to ~1.8e19 and make
			// this node pull (and re-advertise) a poisoned item.
			return pulled, fmt.Errorf("pstore: corrupt digest from %s: negative version %d at %s", peerAddr, v, p)
		}
		n.mu.Lock()
		cur, exists := n.items[p]
		n.mu.Unlock()
		if exists && cur.Version >= uint64(v) {
			continue
		}
		itemReply, err := n.Pool().Call(peerAddr, cmdlang.New("psfetch").SetString("path", p))
		if err != nil {
			return pulled, err
		}
		val, decErr := decodeValue(itemReply.Str("value", ""))
		if decErr != nil {
			// Never replicate corruption: abort the pull so the next
			// anti-entropy round retries against a healthy peer.
			return pulled, fmt.Errorf("pstore: sync with %s: %w", peerAddr, decErr)
		}
		ver, verErr := replyVersion(itemReply, peerAddr)
		if verErr != nil {
			return pulled, fmt.Errorf("pstore: sync with %s: %w", peerAddr, verErr)
		}
		it := Item{
			Path:    p,
			Value:   val,
			Version: ver,
			Deleted: itemReply.Bool("deleted", false),
		}
		applied, aerr := n.applyDurable(it)
		if aerr != nil {
			// A node that cannot log what it pulls must not advertise
			// it either: abort the round.
			return pulled, aerr
		}
		if applied {
			pulled++
			n.mSyncPulled.Inc()
			n.mu.Lock()
			n.synced++
			n.mu.Unlock()
		}
	}
	return pulled, nil
}

// SyncAll runs SyncWith against every configured peer.
func (n *Node) SyncAll() int {
	n.mu.Lock()
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()
	total := 0
	for _, p := range peers {
		if pulled, err := n.SyncWith(p); err == nil {
			total += pulled
		}
	}
	return total
}

func (n *Node) syncLoop(interval time.Duration) {
	defer n.syncWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.syncStop:
			return
		case <-t.C:
			n.SyncAll()
		}
	}
}

func (n *Node) install() {
	n.Handle(cmdlang.CommandSpec{
		Name: "psput",
		Doc:  "store an object at a namespace path",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "value", Kind: cmdlang.KindString, Required: true, Doc: "hex-encoded bytes"},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		path := c.Str("path", "")
		if err := ValidatePath(path); err != nil {
			return nil, err
		}
		val, decErr := decodeValue(c.Str("value", ""))
		if decErr != nil {
			return cmdlang.Fail(cmdlang.CodeBadArgument, decErr.Error()), nil
		}
		version := c.Int("version", 0)
		if version < 0 {
			// Accepting a negative version would wrap to a huge uint64
			// that wins every later quorum read.
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		it := Item{
			Path:    path,
			Value:   val,
			Version: uint64(version),
		}
		// The disk refusing durability answers busy (retryable, not a
		// definitive failure) so the quorum counts someone else.
		return n.applyAsync(ctx, it, func(applied bool) *cmdlang.CmdLine {
			return cmdlang.OK().SetBool("applied", applied).SetInt("version", int64(it.Version))
		})
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psget",
		Args: []cmdlang.ArgSpec{{Name: "path", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		it, ok := n.get(c.Str("path", ""))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no object at path"), nil
		}
		return cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdel",
		Doc:  "delete an object (writes a tombstone)",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "version", Kind: cmdlang.KindInt, Required: true},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		version := c.Int("version", 0)
		if version < 0 {
			return cmdlang.Fail(cmdlang.CodeBadArgument, fmt.Sprintf("negative version %d", version)), nil
		}
		it := Item{
			Path:    c.Str("path", ""),
			Version: uint64(version),
			Deleted: true,
		}
		return n.applyAsync(ctx, it, func(applied bool) *cmdlang.CmdLine {
			return cmdlang.OK().SetBool("applied", applied)
		})
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "pslist",
		Doc:  "list live paths under a prefix",
		Args: []cmdlang.ArgSpec{{Name: "prefix", Kind: cmdlang.KindString}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		prefix := c.Str("prefix", "")
		n.mu.Lock()
		var paths []string
		for p, it := range n.items {
			if !it.Deleted && strings.HasPrefix(p, prefix) {
				paths = append(paths, p)
			}
		}
		n.mu.Unlock()
		sort.Strings(paths)
		return cmdlang.OK().SetInt("count", int64(len(paths))).Set("paths", cmdlang.StringVector(paths...)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psdigest",
		Doc:  "anti-entropy digest: every path and its version",
	}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		digest := n.Digest()
		paths := make([]string, 0, len(digest))
		for p := range digest {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		versions := make([]int64, len(paths))
		for i, p := range paths {
			versions[i] = int64(digest[p])
		}
		return cmdlang.OK().
			Set("paths", cmdlang.StringVector(paths...)).
			Set("versions", cmdlang.IntVector(versions...)), nil
	})

	n.Handle(cmdlang.CommandSpec{
		Name: "psfetch",
		Doc:  "fetch an item verbatim (including tombstones) for sync",
		Args: []cmdlang.ArgSpec{{Name: "path", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		n.mu.Lock()
		it, ok := n.items[c.Str("path", "")]
		n.mu.Unlock()
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "no item"), nil
		}
		return cmdlang.OK().
			SetString("value", encodeValue(it.Value)).
			SetInt("version", int64(it.Version)).
			SetBool("deleted", it.Deleted), nil
	})
}

// ValidatePath checks a namespace path: absolute, no empty segments.
func ValidatePath(path string) error {
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("pstore: path %q is not absolute", path)
	}
	if strings.Contains(path, "//") || path == "/" {
		return fmt.Errorf("pstore: path %q has empty segments", path)
	}
	return nil
}
