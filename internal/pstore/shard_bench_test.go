package pstore

// Sharding scaling benchmark, part of `make bench-pstore`. The
// placement subsystem claims horizontal scaling: a keyed zipfian
// write storm against four replica groups must deliver a multiple of
// the single-group throughput, and the sharded read path (partition
// hash + epoch-stamped routing through the cached map) must not tax
// per-operation get latency measurably.
//
// The machine running this may have one CPU, so raw throughput would
// measure scheduler contention, not placement. Instead every store
// node's admission controller is pinned to a fixed token-bucket rate
// — the per-node capacity ceiling is then explicit, and throughput
// scaling measures exactly what sharding provides: more groups, more
// aggregate admitted capacity, if and only if routing actually
// spreads the key space.
//
// Results merge into BENCH_pstore.json next to the quorum numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/daemon"
	"ace/internal/flow"
	"ace/internal/pstore/placement"
	"ace/internal/workload"
)

const (
	// benchNodeRate pins each node's data-plane admissions per second.
	benchNodeRate = 250
	// benchStormDuration is the measured window per deployment.
	benchStormDuration = 2 * time.Second
	benchStormWorkers  = 12
	// benchKeys is the zipfian key-space size; benchTheta its skew.
	benchKeys  = 16384
	benchTheta = 0.9
)

// benchDeployment is one sharded deployment: groups of three
// in-memory nodes (rate-pinned when rate > 0), an ASD holding the
// placement map, and the node handles for cleanup.
type benchDeployment struct {
	groups []placement.Group
	asd    *asd.Service
}

func startBenchDeployment(t testing.TB, groupCount int, rate float64) *benchDeployment {
	t.Helper()
	d := &benchDeployment{}
	for g := 1; g <= groupCount; g++ {
		var addrs []string
		var nodes []*Node
		for i := 1; i <= 3; i++ {
			cfg := Config{
				Daemon: daemon.Config{Name: fmt.Sprintf("bench_g%dn%d", g, i)},
				Group:  fmt.Sprintf("g%d", g),
			}
			if rate > 0 {
				// Tight burst: the bucket must meter, not front-load
				// the measured window.
				cfg.Daemon.Flow = &flow.Config{Rate: rate, Burst: 16}
			} else {
				cfg.Daemon.DisableFlow = true
			}
			n, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(n.Stop)
			nodes = append(nodes, n)
			addrs = append(addrs, n.Addr())
		}
		for i, n := range nodes {
			var peers []string
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			n.SetPeers(peers)
		}
		d.groups = append(d.groups, placement.Group{Name: fmt.Sprintf("g%d", g), Replicas: addrs})
	}
	d.asd = asd.New(asd.Config{ReapInterval: time.Hour})
	if err := d.asd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.asd.Stop)
	return d
}

func (d *benchDeployment) sharded(t testing.TB) *Sharded {
	t.Helper()
	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	co := NewCoordinator(pool, d.asd.Addr())
	if _, err := co.Bootstrap(context.Background(), 7, 32, 64, d.groups); err != nil {
		t.Fatal(err)
	}
	sc := NewSharded(pool, placement.NewCache(pool, d.asd.Addr()))
	t.Cleanup(sc.Close)
	return sc
}

// zipfianPutStorm hammers sc with keyed zipfian puts from concurrent
// workers for the given duration and returns acked puts per second.
// Rejected puts (the admission controller shedding past the pinned
// rate) are the expected steady state of an offered-load > capacity
// storm and are simply not counted.
func zipfianPutStorm(sc *Sharded, workers int, d time.Duration) float64 {
	var ackedOps atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewZipfian(int64(100+w), benchKeys, benchTheta)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := workload.Path("/bench/shard", gen.Next())
				if _, err := sc.Put(path, []byte(fmt.Sprintf("w%d-%d", w, i))); err == nil {
					ackedOps.Add(1)
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return float64(ackedOps.Load()) / time.Since(start).Seconds()
}

// timeZipfianGets runs n serial keyed gets and returns the elapsed
// wall time.
func timeZipfianGets(t testing.TB, get func(path string) error, gen *workload.Zipfian, n int) time.Duration {
	t.Helper()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := get(workload.Path("/bench/shard", gen.Next())); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// compareGetLatency measures baseline vs candidate get latency as the
// median of per-batch latency ratios. The batches interleave tightly
// (baseline, candidate, baseline, ...), so machine-wide drift — GC,
// another process, CPU frequency — lands on both sides of each pair
// and cancels in the ratio; the median then discards batches where a
// pause hit only one side. A sequential A-then-B measurement cannot
// tell a 10% code-path tax from 10 seconds of background noise.
func compareGetLatency(t testing.TB, baseline, candidate func(path string) error, keys int) (baseNs, candNs, ratio float64) {
	t.Helper()
	const batches, perBatch = 40, 100
	genB := workload.NewZipfian(9, keys, benchTheta)
	genC := workload.NewZipfian(9, keys, benchTheta)
	// Warm both paths (connections, placement cache) outside the
	// measured window, and start from a collected heap so the first
	// batches don't absorb garbage from the setup phase.
	timeZipfianGets(t, baseline, genB, perBatch)
	timeZipfianGets(t, candidate, genC, perBatch)
	runtime.GC()
	ratios := make([]float64, 0, batches)
	var baseTotal, candTotal time.Duration
	for i := 0; i < batches; i++ {
		b := timeZipfianGets(t, baseline, genB, perBatch)
		c := timeZipfianGets(t, candidate, genC, perBatch)
		baseTotal += b
		candTotal += c
		ratios = append(ratios, float64(c)/float64(b))
	}
	sort.Float64s(ratios)
	baseNs = float64(baseTotal.Nanoseconds()) / float64(batches*perBatch)
	candNs = float64(candTotal.Nanoseconds()) / float64(batches*perBatch)
	return baseNs, candNs, ratios[batches/2]
}

// TestBenchPstoreSharding gates the sharding scaling claims. Skipped
// unless ACE_BENCH_PSTORE=1 (i.e. under `make bench-pstore`).
func TestBenchPstoreSharding(t *testing.T) {
	if os.Getenv("ACE_BENCH_PSTORE") == "" {
		t.Skip("set ACE_BENCH_PSTORE=1 (or run `make bench-pstore`) to measure sharding scaling")
	}

	// Throughput scaling: rate-pinned nodes, 1 group vs 4 groups,
	// identical zipfian storms.
	put1 := zipfianPutStorm(startBenchDeployment(t, 1, benchNodeRate).sharded(t), benchStormWorkers, benchStormDuration)
	put4 := zipfianPutStorm(startBenchDeployment(t, 4, benchNodeRate).sharded(t), benchStormWorkers, benchStormDuration)
	speedup := put4 / put1
	t.Logf("zipfian put throughput: 1 group %8.1f ops/s   4 groups %8.1f ops/s   speedup %.2fx", put1, put4, speedup)
	if speedup < 2.5 {
		t.Errorf("4-group put throughput %.1f ops/s is only %.2fx the 1-group baseline %.1f ops/s (want ≥2.5x) — placement is not spreading load", put4, speedup, put1)
	}

	// Read-path overhead: unpinned nodes (latency, not capacity, is
	// the question), small key space so population stays cheap. The
	// baseline is a plain unstamped quorum client against one group;
	// the measured path is the sharded router over four groups.
	const latKeys = 1024
	lat1dep := startBenchDeployment(t, 1, 0)
	pool1 := daemon.NewPool(nil)
	t.Cleanup(pool1.Close)
	plain := NewClient(pool1, lat1dep.groups[0].Replicas)
	t.Cleanup(plain.Close)
	lat4 := startBenchDeployment(t, 4, 0).sharded(t)
	for i := 0; i < latKeys; i++ {
		if _, err := plain.Put(workload.Path("/bench/shard", i), []byte("lat")); err != nil {
			t.Fatal(err)
		}
		if _, err := lat4.Put(workload.Path("/bench/shard", i), []byte("lat")); err != nil {
			t.Fatal(err)
		}
	}
	plainGet := func(p string) error {
		_, _, ok, err := plain.Get(p)
		if err == nil && !ok {
			return fmt.Errorf("missing %s", p)
		}
		return err
	}
	shardedGet := func(p string) error {
		_, _, ok, err := lat4.Get(p)
		if err == nil && !ok {
			return fmt.Errorf("missing %s", p)
		}
		return err
	}
	get1, get4, overhead := compareGetLatency(t, plainGet, shardedGet, latKeys)
	t.Logf("zipfian get latency: single-group %10.0f ns/op   sharded(4) %10.0f ns/op   ratio %.3f", get1, get4, overhead)
	if overhead > 1.10 {
		t.Errorf("sharded get %.0f ns/op is %.1f%% over the single-group baseline %.0f ns/op (budget 10%%) — routing is taxing the read path", get4, (overhead-1)*100, get1)
	}

	// Merge into BENCH_pstore.json alongside the quorum scenarios.
	out := os.Getenv("ACE_BENCH_PSTORE_OUT")
	if out == "" {
		out = "BENCH_pstore.json"
	}
	payload := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(data, &payload)
	}
	payload["sharding"] = map[string]any{
		"node_rate_ops_per_sec":  benchNodeRate,
		"zipfian_theta":          benchTheta,
		"zipfian_keys":           benchKeys,
		"put_1_group_ops_per_s":  put1,
		"put_4_groups_ops_per_s": put4,
		"put_speedup":            speedup,
		"get_single_ns_per_op":   get1,
		"get_sharded_ns_per_op":  get4,
		"get_overhead_ratio":     overhead,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
