package pstore

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ace/internal/daemon"
	"ace/internal/hlc"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
)

// shardRetries bounds how many times a sharded operation re-routes
// after a wrong_group redirect before giving up. Each retry refetches
// the placement map, so more than a couple means the ASD itself is
// serving a map the nodes disagree with.
const shardRetries = 3

// Sharded routes store operations across replica groups using a
// cached placement map: hash the path to its partition, send the
// operation to the owning group's quorum client stamped with the
// map's epoch. A wrong_group redirect invalidates the cache, refetches
// the map, and re-routes — the client needs no a-priori knowledge of
// the topology, only the ASD address.
//
// During a live rebalance, writes to a moving partition dual-apply:
// the same version is quorum-written to the source group (still the
// owner) and the destination group, so an acked write survives even
// if the move's transfer already passed its path. Reads route to the
// source only — the destination may not hold history yet.
type Sharded struct {
	pool  *daemon.Pool
	cache *placement.Cache

	// Group clients are built per map epoch and keyed by group name;
	// an epoch change retires the whole set (kept only so Close can
	// drain their background work).
	mu      sync.Mutex
	epoch   uint64
	clients map[string]*Client
	retired []*Client

	// One clock, lag tracker, AIMD controller, and lease table span
	// every group client the router ever builds: staleness evidence
	// gathered under one placement epoch keeps protecting reads after
	// a rebalance, and the write frontier stays global rather than
	// per-group. Leases alone are reset on an epoch change — a holder
	// set recorded under the old map may no longer serve the path.
	clock  *hlc.Clock
	lag    *staleness.Tracker
	ctl    *staleness.Controller
	leases *staleness.Leases

	mRedirects  *telemetry.Counter
	mDualWrites *telemetry.Counter
}

// NewSharded builds a sharded client routing by cache's placement map
// and dialing through pool. Metrics land in the pool's registry.
func NewSharded(pool *daemon.Pool, cache *placement.Cache) *Sharded {
	tel := pool.Telemetry()
	return &Sharded{
		pool:        pool,
		cache:       cache,
		clients:     make(map[string]*Client),
		clock:       hlc.New(nil, 0, tel),
		lag:         staleness.NewTracker(0, nil),
		ctl:         staleness.NewController(staleness.ControllerConfig{}),
		leases:      staleness.NewLeases(0, nil),
		mRedirects:  tel.Counter(placement.MetricRedirects),
		mDualWrites: tel.Counter(placement.MetricDualWrites),
	}
}

// Cache exposes the underlying placement cache (for wiring
// invalidation notifications onto a host daemon).
func (s *Sharded) Cache() *placement.Cache { return s.cache }

// Close drains the background work of every group client this router
// ever built. Close before closing the pool.
func (s *Sharded) Close() {
	s.mu.Lock()
	all := append([]*Client(nil), s.retired...)
	for _, cl := range s.clients {
		all = append(all, cl)
	}
	s.mu.Unlock()
	for _, cl := range all {
		cl.Close()
	}
}

// client returns (building if needed) the epoch-stamped quorum client
// for group index gi of map m.
func (s *Sharded) client(m *placement.Map, gi int) *Client {
	g := m.Groups[gi]
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Epoch != s.epoch {
		for _, cl := range s.clients {
			s.retired = append(s.retired, cl)
		}
		s.clients = make(map[string]*Client)
		s.epoch = m.Epoch
		// Freshness proofs don't survive a rebalance: lease holder sets
		// were recorded against the old assignment.
		s.leases.Reset()
	}
	cl, ok := s.clients[g.Name]
	if !ok {
		cl = NewGroupClient(s.pool, g.Replicas, m.Epoch)
		// Share the router-wide staleness machinery (see the field doc).
		cl.clock, cl.lag, cl.ctl, cl.leases = s.clock, s.lag, s.ctl, s.leases
		s.clients[g.Name] = cl
	}
	return cl
}

// route resolves path to its owning group's client under the current
// map, plus the move destination's client when the partition is mid
// -rebalance (nil otherwise).
func (s *Sharded) route(ctx context.Context, path string) (*placement.Map, *Client, *Client, error) {
	m, ok := s.cache.Get()
	if !ok {
		var err error
		if m, err = s.cache.GetContext(ctx); err != nil {
			return nil, nil, nil, err
		}
	}
	p := placement.PartitionOf(path, m.Partitions)
	owner := s.client(m, m.Assignment[p])
	var dest *Client
	if mv := m.MoveFor(p); mv != nil {
		dest = s.client(m, mv.To)
	}
	return m, owner, dest, nil
}

// retry runs op, re-routing (invalidate, refetch, rebuild clients)
// after each wrong_group redirect, up to shardRetries times.
func (s *Sharded) retry(op func() error) error {
	var err error
	for attempt := 0; attempt <= shardRetries; attempt++ {
		if err = op(); !IsWrongGroup(err) {
			return err
		}
		s.mRedirects.Inc()
		s.cache.Invalidate()
	}
	return err
}

// GetContext quorum-reads path from its owning group.
func (s *Sharded) GetContext(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error) {
	err = s.retry(func() error {
		_, owner, _, rerr := s.route(ctx, path)
		if rerr != nil {
			return rerr
		}
		value, version, ok, rerr = owner.GetContext(ctx, path)
		return rerr
	})
	return value, version, ok, err
}

// Get is GetContext without a deadline.
func (s *Sharded) Get(path string) ([]byte, uint64, bool, error) {
	return s.GetContext(context.Background(), path)
}

// GetModeContext reads path from its owning group under the given
// consistency mode (see ReadMode). Bounded and any reads still route
// by the placement map — only the intra-group read policy changes —
// and a wrong_group redirect re-routes exactly like a quorum read.
func (s *Sharded) GetModeContext(ctx context.Context, path string, mode ReadMode) (value []byte, version uint64, ok bool, err error) {
	err = s.retry(func() error {
		_, owner, _, rerr := s.route(ctx, path)
		if rerr != nil {
			return rerr
		}
		value, version, ok, rerr = owner.GetModeContext(ctx, path, mode)
		return rerr
	})
	return value, version, ok, err
}

// GetBoundedContext is GetModeContext under ReadBounded(bound) (see
// Client.GetBoundedContext).
func (s *Sharded) GetBoundedContext(ctx context.Context, path string, bound time.Duration) ([]byte, uint64, bool, error) {
	return s.GetModeContext(ctx, path, ReadBounded(bound))
}

// Staleness returns the router-wide staleness machinery shared by
// every group client (for stats and tests).
func (s *Sharded) Staleness() (*staleness.Tracker, *staleness.Controller) { return s.lag, s.ctl }

// Leases returns the router-wide freshness-lease table shared by
// every group client (for stats and tests).
func (s *Sharded) Leases() *staleness.Leases { return s.leases }

// PutContext quorum-writes value at path. If the partition is moving,
// the write dual-applies: the version is probed on the source group
// (the owner — it holds full history), then the same version is
// quorum-written to source AND destination; both quorums must ack.
// That is what makes an acked write survive a destination-group crash
// (the source still has it) and a source cutover (the destination
// already has it).
func (s *Sharded) PutContext(ctx context.Context, path string, value []byte) (version uint64, err error) {
	if verr := ValidatePath(path); verr != nil {
		return 0, verr
	}
	err = s.retry(func() error {
		_, owner, dest, rerr := s.route(ctx, path)
		if rerr != nil {
			return rerr
		}
		if dest == nil {
			version, rerr = owner.PutContext(ctx, path, value)
			return rerr
		}
		cur, rerr := owner.currentVersion(ctx, path)
		if rerr != nil {
			return rerr
		}
		version = cur + 1
		return s.dualApply(ctx, owner, dest,
			func(cl *Client) error { return cl.PutVersionContext(ctx, path, value, version) })
	})
	return version, err
}

// Put is PutContext without a deadline.
func (s *Sharded) Put(path string, value []byte) (uint64, error) {
	return s.PutContext(context.Background(), path, value)
}

// DeleteContext writes a tombstone at path (dual-applied while the
// partition is moving, like PutContext).
func (s *Sharded) DeleteContext(ctx context.Context, path string) error {
	return s.retry(func() error {
		_, owner, dest, rerr := s.route(ctx, path)
		if rerr != nil {
			return rerr
		}
		if dest == nil {
			return owner.DeleteContext(ctx, path)
		}
		cur, rerr := owner.currentVersion(ctx, path)
		if rerr != nil {
			return rerr
		}
		next := cur + 1
		return s.dualApply(ctx, owner, dest,
			func(cl *Client) error { return cl.DeleteVersionContext(ctx, path, next) })
	})
}

// Delete is DeleteContext without a deadline.
func (s *Sharded) Delete(path string) error {
	return s.DeleteContext(context.Background(), path)
}

// dualApply runs the same versioned write against the source and
// destination groups concurrently and requires both quorums. An acked
// dual write is durable on a majority of BOTH groups, so killing
// either whole group cannot lose it.
func (s *Sharded) dualApply(ctx context.Context, owner, dest *Client, write func(*Client) error) error {
	s.mDualWrites.Inc()
	errs := make(chan error, 1)
	go func() { errs <- write(dest) }()
	ownerErr := write(owner)
	destErr := <-errs
	if ownerErr != nil {
		return ownerErr
	}
	if destErr != nil {
		return fmt.Errorf("pstore: dual-apply destination: %w", destErr)
	}
	return nil
}

// ListContext unions live paths under prefix across every group. Each
// group lists only the partitions it owns under its installed map, so
// the union has no duplicates to reconcile beyond set semantics.
func (s *Sharded) ListContext(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := s.retry(func() error {
		m, ok := s.cache.Get()
		if !ok {
			var rerr error
			if m, rerr = s.cache.GetContext(ctx); rerr != nil {
				return rerr
			}
		}
		set := map[string]bool{}
		for gi := range m.Groups {
			paths, rerr := s.client(m, gi).ListContext(ctx, prefix)
			if rerr != nil {
				return rerr
			}
			for _, p := range paths {
				set[p] = true
			}
		}
		out = make([]string, 0, len(set))
		for p := range set {
			out = append(out, p)
		}
		sort.Strings(out)
		return nil
	})
	return out, err
}

// List is ListContext without a deadline.
func (s *Sharded) List(prefix string) ([]string, error) {
	return s.ListContext(context.Background(), prefix)
}

// Epoch returns the epoch of the map the router is currently routing
// by (0 before the first fetch).
func (s *Sharded) Epoch() uint64 { return s.cache.Epoch() }
