package pstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/daemon"
)

func startCluster(t *testing.T, n int, dir string) (*Cluster, *Client) {
	t.Helper()
	c, err := StartCluster(n, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.StopAll)
	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	client := NewClient(pool, c.Addrs())
	t.Cleanup(client.Close) // LIFO: drain repairs/stragglers before the pool closes
	return c, client
}

func TestPutGetRoundTrip(t *testing.T) {
	_, client := startCluster(t, 3, "")
	v, err := client.Put("/wss/workspaces/john_doe/1", []byte("state-blob-1"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version=%d", v)
	}
	got, ver, ok, err := client.Get("/wss/workspaces/john_doe/1")
	if err != nil || !ok || ver != 1 || !bytes.Equal(got, []byte("state-blob-1")) {
		t.Fatalf("got=%q ver=%d ok=%v err=%v", got, ver, ok, err)
	}
	// Overwrite bumps the version.
	v2, err := client.Put("/wss/workspaces/john_doe/1", []byte("state-blob-2"))
	if err != nil || v2 != 2 {
		t.Fatalf("v2=%d err=%v", v2, err)
	}
	got, _, _, _ = client.Get("/wss/workspaces/john_doe/1")
	if string(got) != "state-blob-2" {
		t.Fatalf("got=%q", got)
	}
	// Missing path: ok=false, no error.
	_, _, ok, err = client.Get("/nope")
	if ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestPathValidation(t *testing.T) {
	_, client := startCluster(t, 3, "")
	for _, bad := range []string{"", "rel/path", "/", "/a//b"} {
		if _, err := client.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q): want error", bad)
		}
	}
}

func TestDeleteTombstone(t *testing.T) {
	_, client := startCluster(t, 3, "")
	client.Put("/a/b", []byte("x")) //nolint:errcheck
	if err := client.Delete("/a/b"); err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := client.Get("/a/b")
	if ok || err != nil {
		t.Fatalf("deleted item visible: ok=%v err=%v", ok, err)
	}
	// Re-create after delete gets a higher version.
	v, err := client.Put("/a/b", []byte("y"))
	if err != nil || v != 3 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	got, _, ok, _ := client.Get("/a/b")
	if !ok || string(got) != "y" {
		t.Fatalf("got=%q ok=%v", got, ok)
	}
}

func TestList(t *testing.T) {
	_, client := startCluster(t, 3, "")
	client.Put("/wss/a", []byte("1")) //nolint:errcheck
	client.Put("/wss/b", []byte("2")) //nolint:errcheck
	client.Put("/other", []byte("3")) //nolint:errcheck
	client.Delete("/wss/b")           //nolint:errcheck
	paths, err := client.List("/wss/")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "/wss/a" {
		t.Fatalf("paths=%v", paths)
	}
}

func TestSurvivesOneCrash(t *testing.T) {
	cluster, client := startCluster(t, 3, "")
	client.Put("/k", []byte("v1")) //nolint:errcheck

	// One server fails: reads and writes still work (Fig 17: "if one
	// or two of the servers fail, ACE services may still access the
	// stored information").
	cluster.Nodes[0].Stop()

	got, _, ok, err := client.Get("/k")
	if err != nil || !ok || string(got) != "v1" {
		t.Fatalf("read after 1 crash: %q %v %v", got, ok, err)
	}
	if _, err := client.Put("/k", []byte("v2")); err != nil {
		t.Fatalf("write after 1 crash: %v", err)
	}
	got, _, _, _ = client.Get("/k")
	if string(got) != "v2" {
		t.Fatalf("got=%q", got)
	}
}

func TestSurvivesTwoCrashesForReads(t *testing.T) {
	cluster, client := startCluster(t, 3, "")
	client.Put("/k", []byte("v1")) //nolint:errcheck
	cluster.Nodes[0].Stop()
	cluster.Nodes[1].Stop()

	// Quorum reads fail (majority unreachable)...
	if _, _, _, err := client.Get("/k"); err == nil {
		t.Fatal("quorum read succeeded with 2 crashes")
	}
	// ...but the available-read path still serves the data.
	got, _, ok, err := client.GetAny("/k")
	if err != nil || !ok || string(got) != "v1" {
		t.Fatalf("GetAny after 2 crashes: %q %v %v", got, ok, err)
	}
	// Quorum writes must fail: no split-brain.
	if _, err := client.Put("/k", []byte("v2")); err == nil {
		t.Fatal("quorum write succeeded with 2 crashes")
	}
}

func TestAntiEntropyHealsLaggingReplica(t *testing.T) {
	cluster, client := startCluster(t, 3, "")
	// Node 2 is down during a burst of writes.
	cluster.Nodes[2].Stop()
	for i := 0; i < 10; i++ {
		if _, err := client.Put(fmt.Sprintf("/burst/%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// A replacement node joins empty and syncs from its peers.
	fresh, err := NewNode(Config{Daemon: daemon.Config{Name: "pstore3b"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Stop)
	fresh.SetPeers([]string{cluster.Nodes[0].Addr(), cluster.Nodes[1].Addr()})

	pulled := fresh.SyncAll()
	if pulled != 10 {
		t.Fatalf("pulled=%d", pulled)
	}
	if fresh.Len() != 10 {
		t.Fatalf("fresh len=%d", fresh.Len())
	}
	// Second round is a no-op: convergence.
	if again := fresh.SyncAll(); again != 0 {
		t.Fatalf("second sync pulled %d", again)
	}
}

func TestAntiEntropyPropagatesTombstones(t *testing.T) {
	cluster, client := startCluster(t, 3, "")
	client.Put("/t", []byte("x")) //nolint:errcheck

	fresh, err := NewNode(Config{Daemon: daemon.Config{Name: "fresh"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Stop)
	fresh.SetPeers(cluster.Addrs())
	fresh.SyncAll()
	if fresh.Len() != 1 {
		t.Fatalf("len=%d", fresh.Len())
	}

	client.Delete("/t") //nolint:errcheck
	fresh.SyncAll()
	if fresh.Len() != 0 {
		t.Fatal("tombstone did not propagate")
	}
}

func TestWALPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	node, err := NewNode(Config{Daemon: daemon.Config{Name: "durable"}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()
	client := NewClient(pool, []string{node.Addr()})
	for i := 0; i < 5; i++ {
		if _, err := client.Put(fmt.Sprintf("/d/%d", i), []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	client.Delete("/d/0") //nolint:errcheck
	node.Stop()

	// Restart from the same WAL directory: state is recovered,
	// including the tombstone.
	node2, err := NewNode(Config{Daemon: daemon.Config{Name: "durable"}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := node2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node2.Stop)
	if node2.Len() != 4 {
		t.Fatalf("recovered len=%d", node2.Len())
	}
	pool2 := daemon.NewPool(nil)
	defer pool2.Close()
	client2 := NewClient(pool2, []string{node2.Addr()})
	got, _, ok, err := client2.Get("/d/3")
	if err != nil || !ok || string(got) != "d" {
		t.Fatalf("got=%q ok=%v err=%v", got, ok, err)
	}
	if _, _, ok, _ := client2.Get("/d/0"); ok {
		t.Fatal("deleted item resurrected by WAL replay")
	}
}

func TestNewerTieBreakIsDeterministic(t *testing.T) {
	a := Item{Path: "/p", Value: []byte("aaa"), Version: 5}
	b := Item{Path: "/p", Value: []byte("zzz"), Version: 5}
	if newer(a, b) == newer(b, a) {
		t.Fatal("tiebreak not antisymmetric")
	}
	del := Item{Path: "/p", Version: 5, Deleted: true}
	if !newer(del, a) {
		t.Fatal("delete should win version ties")
	}
	v6 := Item{Path: "/p", Version: 6}
	if !newer(v6, del) {
		t.Fatal("higher version should win")
	}
}

// TestQuickConvergence: any write/delete sequence applied through the
// client, followed by full sync rounds, leaves all replicas with
// identical digests and the client-visible state matching a simple
// map model.
func TestQuickConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster property test")
	}
	cluster, client := startCluster(t, 3, "")
	f := func(ops []uint8) bool {
		model := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("/q/%d", op%5)
			if op%3 == 0 {
				client.Delete(key) //nolint:errcheck
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", op)
				if _, err := client.Put(key, []byte(val)); err != nil {
					return false
				}
				model[key] = val
			}
		}
		// Converge.
		for i := 0; i < 3; i++ {
			cluster.SyncRound()
		}
		// All replicas hold identical digests.
		d0 := cluster.Nodes[0].Digest()
		for _, n := range cluster.Nodes[1:] {
			d := n.Digest()
			if len(d) != len(d0) {
				return false
			}
			for p, v := range d0 {
				if d[p] != v {
					return false
				}
			}
		}
		// Client view matches the model.
		for k, want := range model {
			got, _, ok, err := client.Get(k)
			if err != nil || !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	cluster, client := startCluster(t, 3, "")
	// Write v1 everywhere, then push v2 directly to only two nodes,
	// leaving node 2 stale.
	if _, err := client.Put("/rr", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()
	for _, n := range cluster.Nodes[:2] {
		if !n.apply(Item{Path: "/rr", Value: []byte("v2"), Version: 2}) {
			t.Fatal("direct apply failed")
		}
	}
	if it, ok := cluster.Nodes[2].get("/rr"); !ok || it.Version != 1 {
		t.Fatalf("precondition: node2=%+v ok=%v", it, ok)
	}

	// A quorum read returns v2 and repairs node 2 in the background.
	got, ver, ok, err := client.Get("/rr")
	if err != nil || !ok || ver != 2 || string(got) != "v2" {
		t.Fatalf("got=%q ver=%d ok=%v err=%v", got, ver, ok, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if it, ok := cluster.Nodes[2].get("/rr"); ok && it.Version == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale replica never repaired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
