package pstore_test

import (
	"fmt"

	"ace/internal/daemon"
	"ace/internal/pstore"
)

// Example shows the Fig 17 store in one flow: boot the 3-replica
// cluster, write a workspace state blob through a quorum, and read it
// back after one server has crashed.
func Example() {
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		panic(err)
	}
	defer cluster.StopAll()

	pool := daemon.NewPool(nil)
	defer pool.Close()
	client := pstore.NewClient(pool, cluster.Addrs())

	if _, err := client.Put("/wss/workspaces/john_doe/default", []byte("workspace state")); err != nil {
		panic(err)
	}

	cluster.Nodes[0].Stop() // one redundant server fails

	value, version, ok, err := client.Get("/wss/workspaces/john_doe/default")
	if err != nil {
		panic(err)
	}
	fmt.Println(ok, version, string(value))
	// Output:
	// true 1 workspace state
}
