package pstore

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore/placement"
	"ace/internal/telemetry"
)

// startShardGroups starts len(names) replica groups of three in-memory
// nodes each, peers wired within each group, and returns the node sets
// plus the placement.Group descriptors.
func startShardGroups(t *testing.T, names ...string) (map[string][]*Node, []placement.Group) {
	t.Helper()
	groups := make([]placement.Group, 0, len(names))
	nodes := map[string][]*Node{}
	for _, name := range names {
		var ns []*Node
		var addrs []string
		for i := 0; i < 3; i++ {
			n, err := NewNode(Config{
				Daemon: daemon.Config{Name: fmt.Sprintf("%sn%d", name, i+1)},
				Group:  name,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(n.Stop)
			ns = append(ns, n)
			addrs = append(addrs, n.Addr())
		}
		for i, n := range ns {
			var peers []string
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			n.SetPeers(peers)
		}
		nodes[name] = ns
		groups = append(groups, placement.Group{Name: name, Replicas: addrs})
	}
	return nodes, groups
}

func startShardASD(t *testing.T) *asd.Service {
	t.Helper()
	s := asd.New(asd.Config{ReapInterval: time.Hour})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func shardKey(i int) string { return fmt.Sprintf("/shard/key/%03d", i) }

func TestShardedPutGetAcrossGroups(t *testing.T) {
	nodes, groups := startShardGroups(t, "g1", "g2")
	dir := startShardASD(t)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	co := NewCoordinator(pool, dir.Addr())
	m, err := co.Bootstrap(context.Background(), 7, 32, 64, groups)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	sc := NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer sc.Close()
	const n = 48
	for i := 0; i < n; i++ {
		if _, err := sc.Put(shardKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		val, ver, ok, err := sc.Get(shardKey(i))
		if err != nil || !ok || ver == 0 || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: val=%q ver=%d ok=%v err=%v", i, val, ver, ok, err)
		}
	}

	// Each group's replicas must hold only partitions the map assigns
	// to that group — routing actually sharded, not broadcast.
	perGroup := map[string]int{}
	for gi, g := range m.Groups {
		for _, node := range nodes[g.Name] {
			for p := range node.Digest() {
				if got := m.Assignment[placement.PartitionOf(p, m.Partitions)]; got != gi {
					t.Fatalf("group %s holds %s owned by group %d", g.Name, p, got)
				}
			}
		}
		perGroup[g.Name] = len(nodes[g.Name][0].Digest())
	}
	for name, count := range perGroup {
		if count == 0 {
			t.Fatalf("group %s holds no keys — not sharded (%v)", name, perGroup)
		}
	}

	// List unions across groups.
	paths, err := sc.List("/shard/")
	if err != nil || len(paths) != n {
		t.Fatalf("list: %d paths, err=%v", len(paths), err)
	}

	// Delete routes like writes do.
	if err := sc.Delete(shardKey(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := sc.Get(shardKey(0)); ok {
		t.Fatal("deleted key still readable")
	}

	// An unsharded (epoch-0) client pointed at the right group still
	// works: placement does not break legacy single-group callers.
	g0 := NewClient(pool, m.Groups[m.Assignment[placement.PartitionOf(shardKey(1), m.Partitions)]].Replicas)
	defer g0.Close()
	if _, _, ok, err := g0.Get(shardKey(1)); !ok || err != nil {
		t.Fatalf("legacy client read: ok=%v err=%v", ok, err)
	}
}

func TestGroupClientStaleEpochRejected(t *testing.T) {
	_, groups := startShardGroups(t, "g1")
	pool := daemon.NewPool(nil)
	defer pool.Close()

	m := placement.NewMap(7, 32, 64, groups)
	m.Epoch = 3
	for i := range m.Stamp {
		m.Stamp[i] = 3
	}
	for _, addr := range groups[0].Replicas {
		if _, err := pool.Call(addr, cmdlang.New("psmap").SetString("map", m.EncodeString())); err != nil {
			t.Fatalf("psmap: %v", err)
		}
	}

	stale := NewGroupClient(pool, groups[0].Replicas, 2)
	defer stale.Close()
	if _, err := stale.Put("/stale/x", []byte("v")); !IsWrongGroup(err) {
		t.Fatalf("stale put err=%v, want WrongGroupError", err)
	}
	if _, _, _, err := stale.Get("/stale/x"); !IsWrongGroup(err) {
		t.Fatalf("stale get err=%v, want WrongGroupError", err)
	}

	fresh := NewGroupClient(pool, groups[0].Replicas, 3)
	defer fresh.Close()
	if _, err := fresh.Put("/stale/x", []byte("v")); err != nil {
		t.Fatalf("fresh put: %v", err)
	}
}

func TestRebalanceMovesDataAndStaleClientRecovers(t *testing.T) {
	nodes, groups := startShardGroups(t, "g1", "g2", "g3")
	dir := startShardASD(t)
	// NewPool(nil) would leave telemetry nil and make every counter a
	// silent no-op; this test asserts on the redirect counter.
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: telemetry.NewRegistry()})
	defer pool.Close()

	ctx := context.Background()
	co := NewCoordinator(pool, dir.Addr())
	if _, err := co.Bootstrap(ctx, 7, 32, 64, groups[:2]); err != nil {
		t.Fatal(err)
	}

	sc := NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer sc.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := sc.Put(shardKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Grow to three groups. sc's cache is NOT subscribed to placeset:
	// it keeps routing with the stale two-group map until wrong_group
	// redirects teach it otherwise.
	final, err := co.Rebalance(ctx, groups)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if len(final.Groups) != 3 || len(final.Moves) != 0 {
		t.Fatalf("final map: %d groups, %d moves", len(final.Groups), len(final.Moves))
	}
	counts := final.Counts()
	if counts[2] == 0 {
		t.Fatalf("rebalance assigned g3 nothing: %v", counts)
	}

	// g3 actually holds the moved partitions' data.
	g3dig := nodes["g3"][0].Digest()
	moved := 0
	for p := range g3dig {
		if final.Assignment[placement.PartitionOf(p, final.Partitions)] != 2 {
			t.Fatalf("g3 holds %s it does not own", p)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no data arrived on g3")
	}

	// Every key still reads back through the stale client — redirects
	// are absorbed by re-routing, not surfaced.
	for i := 0; i < n; i++ {
		val, _, ok, err := sc.Get(shardKey(i))
		if err != nil || !ok || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-rebalance get %d: %q ok=%v err=%v", i, val, ok, err)
		}
	}
	// Writes too.
	for i := 0; i < n; i++ {
		if _, err := sc.Put(shardKey(i), []byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatalf("post-rebalance put %d: %v", i, err)
		}
	}
	if v := pool.Telemetry().Counter(placement.MetricRedirects).Value(); v == 0 {
		t.Fatal("stale client was never redirected — rebalance moved nothing it routed to")
	}

	// A second rebalance to the same target is a no-op.
	again, err := co.Rebalance(ctx, groups)
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != final.Epoch {
		t.Fatalf("idempotent rebalance bumped epoch %d→%d", final.Epoch, again.Epoch)
	}
}
