package pstore

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ace/internal/daemon"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
)

// boundedClient builds a client over the cluster with an observable
// registry (NewPool's default registry is a no-op).
func boundedClient(t *testing.T, c *Cluster) (*Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	t.Cleanup(pool.Close)
	client := NewClient(pool, c.Addrs())
	t.Cleanup(client.Close)
	return client, reg
}

func TestReadModeString(t *testing.T) {
	if s := ReadQuorum().String(); s != "quorum" {
		t.Fatalf("quorum mode = %q", s)
	}
	if s := ReadAny().String(); s != "any" {
		t.Fatalf("any mode = %q", s)
	}
	if s := ReadBounded(2 * time.Second).String(); s != "bounded(2s)" {
		t.Fatalf("bounded mode = %q", s)
	}
}

// A healthy cluster with a warm tracker serves bounded reads off the
// single-replica path: the write fan-out's acks carry every replica's
// watermark, so by the time the write returns, all replicas are
// provably fresh.
func TestBoundedReadHealthyClusterHits(t *testing.T) {
	cluster, _ := startCluster(t, 3, "")
	client, reg := boundedClient(t, cluster)
	if _, err := client.Put("/bounded/a", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	val, ver, ok, err := client.GetModeContext(context.Background(), "/bounded/a", ReadBounded(2*time.Second))
	if err != nil || !ok || ver != 1 || !bytes.Equal(val, []byte("fresh")) {
		t.Fatalf("bounded get: val=%q ver=%d ok=%v err=%v", val, ver, ok, err)
	}
	snap := reg.Snapshot()
	if hits := snap.Counter(MetricBoundedHits); hits != 1 {
		t.Fatalf("bounded hits = %d, want 1", hits)
	}
	if v := snap.Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	// A bounded miss cannot prove its bound (not-found replies lose
	// their watermark on the error path) — it falls back to quorum and
	// still answers correctly.
	_, _, ok, err = client.GetModeContext(context.Background(), "/bounded/missing", ReadBounded(2*time.Second))
	if ok || err != nil {
		t.Fatalf("bounded miss: ok=%v err=%v", ok, err)
	}
}

// A client with a cold tracker (no watermark samples yet) must not
// serve bounded reads — it falls back to quorum and still answers.
func TestBoundedReadColdTrackerFallsBack(t *testing.T) {
	c, writer := startCluster(t, 3, "")
	if _, err := writer.Put("/bounded/cold", []byte("v")); err != nil {
		t.Fatal(err)
	}
	reader, reg := boundedClient(t, c)
	val, _, ok, err := reader.GetModeContext(context.Background(), "/bounded/cold", ReadBounded(2*time.Second))
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("cold bounded get: val=%q ok=%v err=%v", val, ok, err)
	}
	snap := reg.Snapshot()
	if f := snap.Counter(MetricBoundedFallbacks); f != 1 {
		t.Fatalf("fallbacks = %d, want 1", f)
	}
	if h := snap.Counter(MetricBoundedHits); h != 0 {
		t.Fatalf("hits = %d, want 0", h)
	}
	// The quorum fallback itself refreshed the samples: the next
	// bounded read can go single-replica.
	if _, _, ok, err := reader.GetModeContext(context.Background(), "/bounded/cold", ReadBounded(2*time.Second)); !ok || err != nil {
		t.Fatalf("warmed bounded get: ok=%v err=%v", ok, err)
	}
	if h := reg.Snapshot().Counter(MetricBoundedHits); h != 1 {
		t.Fatalf("warmed hits = %d, want 1", h)
	}
}

// A bound inside the clock-skew tolerance can never be proven: every
// such read pays the quorum, correctly.
func TestBoundedReadUnprovableBoundFallsBack(t *testing.T) {
	cluster, _ := startCluster(t, 3, "")
	client, reg := boundedClient(t, cluster)
	if _, err := client.Put("/bounded/tight", []byte("v")); err != nil {
		t.Fatal(err)
	}
	val, _, ok, err := client.GetModeContext(context.Background(), "/bounded/tight", ReadBounded(100*time.Millisecond))
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("tight bounded get: val=%q ok=%v err=%v", val, ok, err)
	}
	snap := reg.Snapshot()
	if h := snap.Counter(MetricBoundedHits); h != 0 {
		t.Fatalf("hits = %d, want 0 (bound < skew margin)", h)
	}
	if f := snap.Counter(MetricBoundedFallbacks); f != 1 {
		t.Fatalf("fallbacks = %d, want 1", f)
	}
}

func TestReadModeAnyAndQuorumDispatch(t *testing.T) {
	_, client := startCluster(t, 3, "")
	if _, err := client.Put("/bounded/d", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ReadMode{ReadQuorum(), ReadAny()} {
		val, ver, ok, err := client.GetModeContext(context.Background(), "/bounded/d", mode)
		if err != nil || !ok || ver != 1 || string(val) != "v" {
			t.Fatalf("%v get: val=%q ver=%d ok=%v err=%v", mode, val, ver, ok, err)
		}
	}
	if _, _, ok, err := client.GetModeContext(context.Background(), "/bounded/none", ReadAny()); ok || err != nil {
		t.Fatalf("any miss: ok=%v err=%v", ok, err)
	}
}

// Sharded bounded reads route by the placement map, then apply the
// bounded policy inside the owning group; the staleness machinery is
// shared across group clients, so write evidence from one group's
// quorum protects reads in that group after re-routing.
func TestShardedBoundedRead(t *testing.T) {
	_, groups := startShardGroups(t, "g1", "g2")
	dir := startShardASD(t)
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	defer pool.Close()
	co := NewCoordinator(pool, dir.Addr())
	if _, err := co.Bootstrap(context.Background(), 7, 32, 64, groups); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	sc := NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer sc.Close()
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := sc.Put(shardKey(i), []byte("sv")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		val, _, ok, err := sc.GetModeContext(context.Background(), shardKey(i), ReadBounded(2*time.Second))
		if err != nil || !ok || string(val) != "sv" {
			t.Fatalf("bounded get %d: val=%q ok=%v err=%v", i, val, ok, err)
		}
	}
	snap := reg.Snapshot()
	if h := snap.Counter(MetricBoundedHits); h == 0 {
		t.Fatal("sharded bounded reads never took the single-replica path")
	}
	if v := snap.Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	tr, ctl := sc.Staleness()
	if tr == nil || ctl == nil {
		t.Fatal("sharded staleness machinery not exposed")
	}
	if ctl.Share() < 1 {
		t.Fatalf("healthy cluster narrowed the controller: share=%v", ctl.Share())
	}
}
