package pstore

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ace/internal/daemon"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
)

// boundedClient builds a client over the cluster with an observable
// registry (NewPool's default registry is a no-op).
func boundedClient(t *testing.T, c *Cluster) (*Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	t.Cleanup(pool.Close)
	client := NewClient(pool, c.Addrs())
	t.Cleanup(client.Close)
	return client, reg
}

func TestReadModeString(t *testing.T) {
	if s := ReadQuorum().String(); s != "quorum" {
		t.Fatalf("quorum mode = %q", s)
	}
	if s := ReadAny().String(); s != "any" {
		t.Fatalf("any mode = %q", s)
	}
	if s := ReadBounded(2 * time.Second).String(); s != "bounded(2s)" {
		t.Fatalf("bounded mode = %q", s)
	}
}

// A healthy cluster serves bounded reads off the single-replica path:
// the quorum write grants a freshness lease to its ackers, so by the
// time the write returns, a holder set is provably fresh.
func TestBoundedReadHealthyClusterHits(t *testing.T) {
	cluster, _ := startCluster(t, 3, "")
	client, reg := boundedClient(t, cluster)
	if _, err := client.Put("/bounded/a", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	val, ver, ok, err := client.GetModeContext(context.Background(), "/bounded/a", ReadBounded(2*time.Second))
	if err != nil || !ok || ver != 1 || !bytes.Equal(val, []byte("fresh")) {
		t.Fatalf("bounded get: val=%q ver=%d ok=%v err=%v", val, ver, ok, err)
	}
	snap := reg.Snapshot()
	if hits := snap.Counter(MetricBoundedHits); hits != 1 {
		t.Fatalf("bounded hits = %d, want 1", hits)
	}
	if v := snap.Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	// A path never touched by quorum traffic holds no lease, so a
	// bounded miss cannot prove its bound — it falls back to quorum
	// and still answers correctly.
	_, _, ok, err = client.GetModeContext(context.Background(), "/bounded/missing", ReadBounded(2*time.Second))
	if ok || err != nil {
		t.Fatalf("bounded miss: ok=%v err=%v", ok, err)
	}
}

// A fresh client (no freshness leases, no watermark samples) must not
// serve bounded reads — it falls back to quorum and still answers.
// The fallback itself is a quorum round, so it re-arms the bounded
// path for the next read.
func TestBoundedReadColdTrackerFallsBack(t *testing.T) {
	c, writer := startCluster(t, 3, "")
	if _, err := writer.Put("/bounded/cold", []byte("v")); err != nil {
		t.Fatal(err)
	}
	reader, reg := boundedClient(t, c)
	val, _, ok, err := reader.GetModeContext(context.Background(), "/bounded/cold", ReadBounded(2*time.Second))
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("cold bounded get: val=%q ok=%v err=%v", val, ok, err)
	}
	snap := reg.Snapshot()
	if f := snap.Counter(MetricBoundedFallbacks); f != 1 {
		t.Fatalf("fallbacks = %d, want 1", f)
	}
	if h := snap.Counter(MetricBoundedHits); h != 0 {
		t.Fatalf("hits = %d, want 0", h)
	}
	// The quorum fallback granted a lease (and refreshed the lag
	// samples): the next bounded read can go single-replica.
	if _, _, ok, err := reader.GetModeContext(context.Background(), "/bounded/cold", ReadBounded(2*time.Second)); !ok || err != nil {
		t.Fatalf("warmed bounded get: ok=%v err=%v", ok, err)
	}
	if h := reg.Snapshot().Counter(MetricBoundedHits); h != 1 {
		t.Fatalf("warmed hits = %d, want 1", h)
	}
}

// A bound inside the clock-skew tolerance can never be proven: every
// such read pays the quorum, correctly.
func TestBoundedReadUnprovableBoundFallsBack(t *testing.T) {
	cluster, _ := startCluster(t, 3, "")
	client, reg := boundedClient(t, cluster)
	if _, err := client.Put("/bounded/tight", []byte("v")); err != nil {
		t.Fatal(err)
	}
	val, _, ok, err := client.GetModeContext(context.Background(), "/bounded/tight", ReadBounded(100*time.Millisecond))
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("tight bounded get: val=%q ok=%v err=%v", val, ok, err)
	}
	snap := reg.Snapshot()
	if h := snap.Counter(MetricBoundedHits); h != 0 {
		t.Fatalf("hits = %d, want 0 (bound < skew margin)", h)
	}
	if f := snap.Counter(MetricBoundedFallbacks); f != 1 {
		t.Fatalf("fallbacks = %d, want 1", f)
	}
}

// TestBoundedReadReplicaMissedWriteNeverServed is the regression for
// the watermark-as-proof design this package moved away from: a
// replica that missed a quorum write to the read key keeps advancing
// its max-applied watermark via unrelated writes, so any
// watermark-vs-frontier comparison judges it fresh. The lease proof
// is per-path, so the stale replica is simply never a holder for the
// key — bounded reads must return the newest committed value once the
// old lease ages out, with zero violations.
func TestBoundedReadReplicaMissedWriteNeverServed(t *testing.T) {
	cluster, _ := startCluster(t, 3, "") // no anti-entropy: the gap persists
	client, reg := boundedClient(t, cluster)
	addrs := cluster.Addrs()

	const bound = 700 * time.Millisecond
	// a1 commits everywhere; the client's lease covers its ackers.
	if _, err := client.Put("/bounded/gap", []byte("a1")); err != nil {
		t.Fatal(err)
	}
	// a2 commits on the first two replicas only: a second client scoped
	// to them has quorum 2, so the write succeeds without the third
	// replica ever seeing it.
	sidePool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: telemetry.NewRegistry()})
	defer sidePool.Close()
	side := NewClient(sidePool, addrs[:2])
	defer side.Close()
	if _, err := side.Put("/bounded/gap", []byte("a2")); err != nil {
		t.Fatal(err)
	}
	// Age past the bound so a1 is now provably staler than Δ, while
	// filler writes keep every replica's watermark — including the
	// stale one's — and the client's lag samples advancing throughout.
	deadline := time.Now().Add(bound + 200*time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := client.Put("/bounded/filler", []byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Every bounded read must now see a2: the a1 lease has expired, so
	// the first read falls back to a quorum (which sees a2 and grants a
	// fresh lease), and the rest are served only by proven a2 holders.
	for i := 0; i < 10; i++ {
		val, _, ok, err := client.GetModeContext(context.Background(), "/bounded/gap", ReadBounded(bound))
		if err != nil || !ok {
			t.Fatalf("read %d: ok=%v err=%v", i, ok, err)
		}
		if string(val) != "a2" {
			t.Fatalf("read %d served stale %q — staleness bound violated", i, val)
		}
	}
	snap := reg.Snapshot()
	if v := snap.Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	if h := snap.Counter(MetricBoundedHits); h == 0 {
		t.Fatal("bounded reads never re-engaged the single-replica path")
	}
}

// A delete retires the path's freshness lease immediately — before
// the tombstone even reaches a quorum — so bounded reads never
// consult holders that may still answer the old value.
func TestBoundedReadDeleteDropsLease(t *testing.T) {
	cluster, _ := startCluster(t, 3, "")
	client, reg := boundedClient(t, cluster)
	if _, err := client.Put("/bounded/del", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := client.GetModeContext(context.Background(), "/bounded/del", ReadBounded(2*time.Second)); !ok || err != nil {
		t.Fatalf("pre-delete bounded get: ok=%v err=%v", ok, err)
	}
	if err := client.Delete("/bounded/del"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := client.Leases().Holders("/bounded/del", time.Minute); ok {
		t.Fatal("delete left the freshness lease in place")
	}
	val, _, ok, err := client.GetModeContext(context.Background(), "/bounded/del", ReadBounded(2*time.Second))
	if err != nil || ok {
		t.Fatalf("deleted path still served: val=%q ok=%v err=%v", val, ok, err)
	}
	if v := reg.Snapshot().Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
}

func TestReadModeAnyAndQuorumDispatch(t *testing.T) {
	_, client := startCluster(t, 3, "")
	if _, err := client.Put("/bounded/d", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ReadMode{ReadQuorum(), ReadAny()} {
		val, ver, ok, err := client.GetModeContext(context.Background(), "/bounded/d", mode)
		if err != nil || !ok || ver != 1 || string(val) != "v" {
			t.Fatalf("%v get: val=%q ver=%d ok=%v err=%v", mode, val, ver, ok, err)
		}
	}
	if _, _, ok, err := client.GetModeContext(context.Background(), "/bounded/none", ReadAny()); ok || err != nil {
		t.Fatalf("any miss: ok=%v err=%v", ok, err)
	}
}

// Sharded bounded reads route by the placement map, then apply the
// bounded policy inside the owning group; the staleness machinery is
// shared across group clients, so write evidence from one group's
// quorum protects reads in that group after re-routing.
func TestShardedBoundedRead(t *testing.T) {
	_, groups := startShardGroups(t, "g1", "g2")
	dir := startShardASD(t)
	reg := telemetry.NewRegistry()
	pool := daemon.NewPoolConfig(daemon.PoolConfig{Telemetry: reg})
	defer pool.Close()
	co := NewCoordinator(pool, dir.Addr())
	if _, err := co.Bootstrap(context.Background(), 7, 32, 64, groups); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	sc := NewSharded(pool, placement.NewCache(pool, dir.Addr()))
	defer sc.Close()
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := sc.Put(shardKey(i), []byte("sv")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		val, _, ok, err := sc.GetModeContext(context.Background(), shardKey(i), ReadBounded(2*time.Second))
		if err != nil || !ok || string(val) != "sv" {
			t.Fatalf("bounded get %d: val=%q ok=%v err=%v", i, val, ok, err)
		}
	}
	snap := reg.Snapshot()
	if h := snap.Counter(MetricBoundedHits); h == 0 {
		t.Fatal("sharded bounded reads never took the single-replica path")
	}
	if v := snap.Counter(staleness.MetricViolations); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	tr, ctl := sc.Staleness()
	if tr == nil || ctl == nil {
		t.Fatal("sharded staleness machinery not exposed")
	}
	if ctl.Share() < 1 {
		t.Fatalf("healthy cluster narrowed the controller: share=%v", ctl.Share())
	}
}
