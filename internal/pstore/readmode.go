package pstore

import (
	"context"
	"fmt"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/hlc"
	"ace/internal/pstore/staleness"
)

// ReadMode selects a point on the store's consistency spectrum. The
// zero value is a quorum read — today's default, unchanged semantics.
//
//   - ReadQuorum: query all replicas, decide at a majority, return
//     the highest version. Linearizable with respect to committed
//     quorum writes.
//   - ReadBounded(Δ): serve from a single replica when a freshness
//     lease — granted by a quorum round this client ran within the
//     last Δ — proves the replica can be missing at most Δ of
//     history; fall back to a quorum read whenever no proof exists.
//     The bound is measured on this process's own clock, so it holds
//     under arbitrary replica clock skew. The cheap path for
//     directory resolves, placement lookups, and sensor/room state
//     that tolerate bounded lag.
//   - ReadAny: first reachable replica, best effort, no bound. May
//     return stale data during synchronization windows.
type ReadMode struct {
	kind  readKind
	bound time.Duration
}

type readKind int

const (
	readQuorum readKind = iota
	readBounded
	readAny
)

// ReadQuorum returns the majority-quorum read mode (the default).
func ReadQuorum() ReadMode { return ReadMode{kind: readQuorum} }

// ReadBounded returns the bounded-staleness read mode: one-replica
// reads whose staleness is provably at most bound (see boundedGet for
// the proof rule), quorum fallback otherwise.
func ReadBounded(bound time.Duration) ReadMode {
	return ReadMode{kind: readBounded, bound: bound}
}

// ReadAny returns the best-effort single-replica read mode.
func ReadAny() ReadMode { return ReadMode{kind: readAny} }

// Bound returns the staleness bound (zero unless bounded).
func (m ReadMode) Bound() time.Duration { return m.bound }

func (m ReadMode) String() string {
	switch m.kind {
	case readBounded:
		return fmt.Sprintf("bounded(%v)", m.bound)
	case readAny:
		return "any"
	default:
		return "quorum"
	}
}

// GetModeContext reads path under the given consistency mode. The
// quorum mode is exactly GetContext; the other modes trade freshness
// guarantees for single-replica latency.
func (c *Client) GetModeContext(ctx context.Context, path string, mode ReadMode) (value []byte, version uint64, ok bool, err error) {
	switch mode.kind {
	case readBounded:
		return c.boundedGet(ctx, path, mode.bound)
	case readAny:
		return c.anyGet(ctx, path)
	default:
		return c.GetContext(ctx, path)
	}
}

// GetBoundedContext is GetModeContext under ReadBounded(bound) — a
// convenience for callers that keep a store-shaped interface
// dependency (like the ASD's resolve path) without importing the
// ReadMode type.
func (c *Client) GetBoundedContext(ctx context.Context, path string, bound time.Duration) ([]byte, uint64, bool, error) {
	return c.boundedGet(ctx, path, bound)
}

// Staleness returns the client's staleness machinery: the lag
// tracker feeding bounded-read replica selection and the AIMD
// controller gating the bounded path. Shared by all group clients of
// a sharded deployment; exposed for inspection (stats, tests).
func (c *Client) Staleness() (*staleness.Tracker, *staleness.Controller) { return c.lag, c.ctl }

// Leases returns the client's freshness-lease table — the proof
// bounded reads rely on. Shared by all group clients of a sharded
// deployment; exposed for inspection (stats, tests).
func (c *Client) Leases() *staleness.Leases { return c.leases }

// Clock returns the client's hybrid logical clock.
func (c *Client) Clock() *hlc.Clock { return c.clock }

// boundedGet is the Bounded(Δ) read path. The staleness proof is a
// freshness lease (staleness.Leases): a quorum round this client ran
// — a quorum read, or its own quorum write — that started at time T
// and established version v of the path records which replicas
// answered holding v. By quorum intersection, a write those holders
// could be missing was committed after T, so serving a holder's copy
// before T+Δ serves data at most Δ stale. Both T and "now" are
// readings of this process's own clock: the bound holds under
// arbitrary replica clock skew and needs no prefix guarantee from
// any watermark.
//
// Around the proof sit three cheaper screens, all of which fail over
// to the quorum path (conservative, never wrong):
//
//   - no live lease for the path, or a bound inside the clock skew
//     tolerance — the proof cannot engage;
//   - the HLC lag tracker finds no lease holder whose advisory lag
//     estimate fits the bound — this is how clock skew and
//     partitions degrade the bounded path to quorum fallbacks;
//   - the AIMD controller withholds its share after recent trouble.
//
// A violation is now a version regression: a lease holder answering
// below the quorum-validated version means the replica lost state
// (or the lease lied). The reply is discarded — counted, never
// served — the lease is dropped, and the read re-runs as a quorum.
// Misses, redirects, and transport errors take the quorum fallback
// too: the bound is only ever claimed when it is proven.
func (c *Client) boundedGet(ctx context.Context, path string, bound time.Duration) (value []byte, version uint64, ok bool, err error) {
	start := time.Now()
	fallback := func() ([]byte, uint64, bool, error) {
		c.mBoundedFallbacks.Inc()
		c.mStaleShare.Set(int64(c.ctl.Share() * 1000))
		return c.GetContext(ctx, path)
	}
	margin := c.clock.MaxOffset()
	if bound <= margin {
		// Leave bounds inside the skew tolerance to the quorum path:
		// the advisory screen below would pass nothing anyway.
		return fallback()
	}
	leaseVer, grantedAt, holders, live := c.leases.Holders(path, bound)
	if !live {
		return fallback()
	}
	// A sharded router shares the lease table across group clients, and
	// a rebalance can record holders outside this client's group; only
	// replicas this client serves are candidates.
	candidates := make([]string, 0, len(holders))
	for _, h := range holders {
		for _, r := range c.replicas {
			if h == r {
				candidates = append(candidates, h)
				break
			}
		}
	}
	// Advisory screen: the tracker's conservative lag estimate picks
	// the freshest-looking holder and fails the read over to quorum
	// when skew or partition makes every holder look stale. The lease
	// carries the proof; this only chooses and degrades. Admission is
	// checked after eligibility so a fallback with no candidate never
	// debits the AIMD share.
	addr, eligible := c.lag.Best(candidates, bound-margin)
	if !eligible {
		return fallback()
	}
	if !c.ctl.Allow() {
		return fallback()
	}
	reply, callErr := c.pool.CallContext(ctx, addr, c.stamp(cmdlang.New("psget").SetString("path", path)))
	if callErr != nil {
		if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
			// A proven holder with no live value: either the path was
			// deleted (tombstones hide at the node) or the replica lost
			// state. Both retire the lease and let the quorum decide.
			c.leases.Drop(path)
			return fallback()
		}
		c.ctl.Redirect()
		return fallback()
	}
	c.observe(addr, reply)
	val, decErr := decodeValue(reply.Str("value", ""))
	if decErr != nil {
		c.ctl.Redirect()
		return fallback()
	}
	ver, verErr := replyVersion(reply, addr)
	if verErr != nil {
		c.ctl.Redirect()
		return fallback()
	}
	if ver < leaseVer {
		// Version regression below the quorum-validated lease: the
		// replica no longer holds what a quorum proved it held. Discard
		// the reply — it is never served.
		c.mStaleViolations.Inc()
		c.ctl.Violation()
		c.leases.Drop(path)
		return fallback()
	}
	if time.Since(grantedAt) > bound {
		// The lease expired while the read was in flight; the proof no
		// longer covers the reply. Not a violation — nothing stale was
		// observed — just an unproven answer.
		return fallback()
	}
	c.ctl.Success()
	c.mBoundedHits.Inc()
	c.mBoundedLatency.Observe(time.Since(start))
	c.mStaleShare.Set(int64(c.ctl.Share() * 1000))
	return val, ver, true, nil
}

// anyGet is the context-aware single-replica walk behind GetAny and
// ReadAny: first reachable replica wins, a not-found answer from any
// replica is final, watermarks are folded into the staleness
// estimates along the way.
func (c *Client) anyGet(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error) {
	var lastErr error
	for _, addr := range c.replicas {
		reply, callErr := c.pool.CallContext(ctx, addr, c.stamp(cmdlang.New("psget").SetString("path", path)))
		if callErr == nil {
			c.observe(addr, reply)
			val, decErr := decodeValue(reply.Str("value", ""))
			if decErr != nil {
				// Corrupt replica: try the next one.
				lastErr = fmt.Errorf("pstore: replica %s: %w", addr, decErr)
				continue
			}
			ver, verErr := replyVersion(reply, addr)
			if verErr != nil {
				lastErr = verErr
				continue
			}
			return val, ver, true, nil
		}
		if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
			return nil, 0, false, nil
		}
		lastErr = callErr
	}
	return nil, 0, false, fmt.Errorf("pstore: no replica reachable: %w", lastErr)
}
