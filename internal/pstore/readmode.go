package pstore

import (
	"context"
	"fmt"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/hlc"
	"ace/internal/pstore/staleness"
)

// ReadMode selects a point on the store's consistency spectrum. The
// zero value is a quorum read — today's default, unchanged semantics.
//
//   - ReadQuorum: query all replicas, decide at a majority, return
//     the highest version. Linearizable with respect to committed
//     quorum writes.
//   - ReadBounded(Δ): serve from a single replica when its estimated
//     staleness is provably under Δ, falling back to a quorum read
//     whenever the bound cannot be proven — never serving data staler
//     than Δ. The cheap path for directory resolves, placement
//     lookups, and sensor/room state that tolerate bounded lag.
//   - ReadAny: first reachable replica, best effort, no bound. May
//     return stale data during synchronization windows.
type ReadMode struct {
	kind  readKind
	bound time.Duration
}

type readKind int

const (
	readQuorum readKind = iota
	readBounded
	readAny
)

// ReadQuorum returns the majority-quorum read mode (the default).
func ReadQuorum() ReadMode { return ReadMode{kind: readQuorum} }

// ReadBounded returns the bounded-staleness read mode: one-replica
// reads whose staleness is provably at most bound, quorum fallback
// otherwise.
func ReadBounded(bound time.Duration) ReadMode {
	return ReadMode{kind: readBounded, bound: bound}
}

// ReadAny returns the best-effort single-replica read mode.
func ReadAny() ReadMode { return ReadMode{kind: readAny} }

// Bound returns the staleness bound (zero unless bounded).
func (m ReadMode) Bound() time.Duration { return m.bound }

func (m ReadMode) String() string {
	switch m.kind {
	case readBounded:
		return fmt.Sprintf("bounded(%v)", m.bound)
	case readAny:
		return "any"
	default:
		return "quorum"
	}
}

// GetModeContext reads path under the given consistency mode. The
// quorum mode is exactly GetContext; the other modes trade freshness
// guarantees for single-replica latency.
func (c *Client) GetModeContext(ctx context.Context, path string, mode ReadMode) (value []byte, version uint64, ok bool, err error) {
	switch mode.kind {
	case readBounded:
		return c.boundedGet(ctx, path, mode.bound)
	case readAny:
		return c.anyGet(ctx, path)
	default:
		return c.GetContext(ctx, path)
	}
}

// GetBoundedContext is GetModeContext under ReadBounded(bound) — a
// convenience for callers that keep a store-shaped interface
// dependency (like the ASD's resolve path) without importing the
// ReadMode type.
func (c *Client) GetBoundedContext(ctx context.Context, path string, bound time.Duration) ([]byte, uint64, bool, error) {
	return c.boundedGet(ctx, path, bound)
}

// Staleness returns the client's staleness machinery: the lag
// tracker feeding bounded-read eligibility and the AIMD controller
// gating the bounded path. Shared by all group clients of a sharded
// deployment; exposed for inspection (stats, tests).
func (c *Client) Staleness() (*staleness.Tracker, *staleness.Controller) { return c.lag, c.ctl }

// Clock returns the client's hybrid logical clock.
func (c *Client) Clock() *hlc.Clock { return c.clock }

// boundedGet is the Bounded(Δ) read path. The staleness proof has two
// gates, and a replica must pass both:
//
//  1. Eligibility: the tracker's conservative lag estimate for some
//     replica — worst watermark lag in the window, plus the age of
//     its newest sample, plus the clock skew tolerance — is within
//     the bound. No such replica, no fresh samples, or the AIMD
//     controller withholding its share all mean quorum fallback
//     before any wire traffic is spent.
//  2. Post-reply proof: the chosen replica's reply carries its
//     current applied watermark. If the write frontier minus that
//     watermark (plus the skew margin) exceeds the bound, the reply
//     is discarded — counted as a violation, never served — and the
//     read re-runs as a quorum. This second gate is what makes the
//     zero-violation guarantee hold even when the estimator is
//     arbitrarily wrong.
//
// Misses, redirects, transport errors, and unstamped (pre-HLC)
// replies all take the quorum fallback too: the bound is only ever
// claimed when it is proven.
func (c *Client) boundedGet(ctx context.Context, path string, bound time.Duration) (value []byte, version uint64, ok bool, err error) {
	start := time.Now()
	fallback := func() ([]byte, uint64, bool, error) {
		c.mBoundedFallbacks.Inc()
		c.mStaleShare.Set(int64(c.ctl.Share() * 1000))
		return c.GetContext(ctx, path)
	}
	margin := c.clock.MaxOffset()
	if bound <= margin || !c.ctl.Allow() {
		// A bound inside the skew tolerance can never be proven.
		return fallback()
	}
	addr, eligible := c.lag.Best(c.replicas, bound-margin)
	if !eligible {
		return fallback()
	}
	reply, callErr := c.pool.CallContext(ctx, addr, c.stamp(cmdlang.New("psget").SetString("path", path)))
	if callErr != nil {
		// A not-found fail reply loses its watermark crossing the
		// error path, so a bounded miss cannot be proven — it pays the
		// quorum. Real errors and redirects additionally narrow the
		// controller.
		if !cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
			c.ctl.Redirect()
		}
		return fallback()
	}
	c.observe(addr, reply)
	wm := reply.Int(watermarkArg, 0)
	if wm <= 0 {
		return fallback() // pre-HLC replica: no proof possible
	}
	if lag := c.lag.Frontier().Sub(hlc.Timestamp(wm)); lag+margin > bound {
		// The eligibility screen was wrong: the replica's own watermark
		// disproves the bound. Discard the reply — it is never served.
		c.mStaleViolations.Inc()
		c.ctl.Violation()
		return fallback()
	}
	val, decErr := decodeValue(reply.Str("value", ""))
	if decErr != nil {
		c.ctl.Redirect()
		return fallback()
	}
	ver, verErr := replyVersion(reply, addr)
	if verErr != nil {
		c.ctl.Redirect()
		return fallback()
	}
	c.ctl.Success()
	c.mBoundedHits.Inc()
	c.mBoundedLatency.Observe(time.Since(start))
	c.mStaleShare.Set(int64(c.ctl.Share() * 1000))
	return val, ver, true, nil
}

// anyGet is the context-aware single-replica walk behind GetAny and
// ReadAny: first reachable replica wins, a not-found answer from any
// replica is final, watermarks are folded into the staleness
// estimates along the way.
func (c *Client) anyGet(ctx context.Context, path string) (value []byte, version uint64, ok bool, err error) {
	var lastErr error
	for _, addr := range c.replicas {
		reply, callErr := c.pool.CallContext(ctx, addr, c.stamp(cmdlang.New("psget").SetString("path", path)))
		if callErr == nil {
			c.observe(addr, reply)
			val, decErr := decodeValue(reply.Str("value", ""))
			if decErr != nil {
				// Corrupt replica: try the next one.
				lastErr = fmt.Errorf("pstore: replica %s: %w", addr, decErr)
				continue
			}
			ver, verErr := replyVersion(reply, addr)
			if verErr != nil {
				lastErr = verErr
				continue
			}
			return val, ver, true, nil
		}
		if cmdlang.IsRemoteCode(callErr, cmdlang.CodeNotFound) {
			return nil, 0, false, nil
		}
		lastErr = callErr
	}
	return nil, 0, false, fmt.Errorf("pstore: no replica reachable: %w", lastErr)
}
