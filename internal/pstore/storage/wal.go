package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
)

// ErrClosed is returned by Append once the engine is closed (or
// crash-abandoned): nothing further will be made durable.
var ErrClosed = errors.New("storage: engine closed")

// segment is one sealed (no longer appended) WAL file.
type segment struct {
	path     string
	firstLSN uint64
	records  uint64
	size     int64
}

func (s segment) lastLSN() uint64 { return s.firstLSN + s.records - 1 }

func segmentName(firstLSN uint64) string { return fmt.Sprintf("wal-%020d.seg", firstLSN) }

// appendReq is one writer waiting for its record to become durable.
// done is invoked exactly once, from the commit goroutine (or from
// the closing path), with the verdict of the covering fsync — it must
// not block for long, or it stalls every later commit.
type appendReq struct {
	rec  Record
	done func(error)
}

// wal is the segmented write-ahead log. All file writes go through a
// single commit goroutine: concurrent Append callers queue on reqs,
// the loop drains the queue into one batch, writes the batch to the
// active segment, and issues ONE fsync for all of them — group
// commit. An append returns only after the fsync that covers it, so
// an acked record is durable by construction.
type wal struct {
	fs       FS
	dir      string
	segBytes int64
	maxBatch int
	met      Metrics

	reqs     chan *appendReq
	comps    chan compBatch
	stop     chan struct{}
	loopDone chan struct{}
	compDone chan struct{}

	mu            sync.Mutex
	active        File
	activePath    string
	activeFirst   uint64
	activeRecords uint64
	activeSize    int64
	sealed        []segment
	nextLSN       uint64
	broken        error // first write/sync failure; the log refuses appends after it
	closed        bool

	buf []byte // commit-loop scratch, reused across batches
}

// newWAL resumes appending after recovery: active is the (already
// torn-tail-repaired) newest segment opened for append, or nil to
// create a fresh one.
func newWAL(fsys FS, dir string, segBytes int64, maxBatch int, met Metrics,
	sealed []segment, active File, activePath string, activeFirst, activeRecords uint64, activeSize int64, nextLSN uint64) (*wal, error) {
	w := &wal{
		fs:            fsys,
		dir:           dir,
		segBytes:      segBytes,
		maxBatch:      maxBatch,
		met:           met,
		reqs:          make(chan *appendReq, maxBatch),
		comps:         make(chan compBatch, 4),
		stop:          make(chan struct{}),
		loopDone:      make(chan struct{}),
		compDone:      make(chan struct{}),
		active:        active,
		activePath:    activePath,
		activeFirst:   activeFirst,
		activeRecords: activeRecords,
		activeSize:    activeSize,
		sealed:        sealed,
		nextLSN:       nextLSN,
	}
	if w.active == nil {
		if err := w.openActiveLocked(); err != nil {
			return nil, err
		}
	}
	w.publishGauges()
	go w.run()
	go w.completions()
	return w, nil
}

// openActiveLocked creates a fresh active segment starting at nextLSN.
func (w *wal) openActiveLocked() error {
	path := filepath.Join(w.dir, segmentName(w.nextLSN))
	f, err := w.fs.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create segment: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	w.active = f
	w.activePath = path
	w.activeFirst = w.nextLSN
	w.activeRecords = 0
	w.activeSize = 0
	return nil
}

// append blocks until rec is durable (its covering fsync returned) or
// the log failed. It is safe for any number of concurrent callers;
// concurrency is what group commit amortizes.
func (w *wal) append(rec Record) error {
	done := make(chan error, 1)
	if !w.appendAsync(rec, func(err error) { done <- err }) {
		return ErrClosed
	}
	select {
	case err := <-done:
		return err
	case <-w.stop:
		// The loop may have been mid-commit on our batch; prefer its
		// verdict if one arrived. Reporting ErrClosed for a record
		// that did become durable is safe: the caller withholds its
		// ack, and replay plus anti-entropy reconcile the replica.
		select {
		case err := <-done:
			return err
		default:
			cinc(w.met.AppendErrors)
			return ErrClosed
		}
	}
}

// appendAsync enqueues rec and returns immediately; done fires with
// the covering fsync's verdict. Returns false (done never fires) if
// the log is closed. This is the non-blocking write path: callers
// that hold a scarce thread (a daemon's control thread) enqueue and
// move on, and everything queued behind one fsync shares it.
func (w *wal) appendAsync(rec Record, done func(error)) bool {
	select {
	case w.reqs <- &appendReq{rec: rec, done: done}:
	case <-w.stop:
		cinc(w.met.AppendErrors)
		return false
	}
	return true
}

// compBatch is one committed (or refused) batch on its way to the
// completion goroutine.
type compBatch struct {
	reqs []*appendReq
	err  error
}

// run is the single commit goroutine. Completions are handed to a
// separate goroutine so the fsync of batch N+1 overlaps with the
// (possibly network-bound) reply delivery of batch N; the channel is
// shallow, so a stalled consumer backpressures commits rather than
// queueing unbounded acked-but-unreported batches.
func (w *wal) run() {
	defer close(w.comps)
	defer close(w.loopDone)
	for {
		select {
		case req := <-w.reqs:
			batch := w.gather(req)
			err := w.commit(batch)
			w.comps <- compBatch{reqs: batch, err: err}
		case <-w.stop:
			for {
				select {
				case r := <-w.reqs:
					cinc(w.met.AppendErrors)
					w.comps <- compBatch{reqs: []*appendReq{r}, err: ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// completions delivers batch verdicts in commit order.
func (w *wal) completions() {
	defer close(w.compDone)
	for cb := range w.comps {
		for _, r := range cb.reqs {
			r.done(cb.err)
		}
	}
}

// gather drains whatever else is already queued behind first, up to
// the batch cap — the group in group commit.
func (w *wal) gather(first *appendReq) []*appendReq {
	batch := make([]*appendReq, 1, w.maxBatch)
	batch[0] = first
	for len(batch) < w.maxBatch {
		select {
		case r := <-w.reqs:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// commit writes the batch to the active segment and fsyncs once.
// Record LSNs are assigned here, in commit order.
func (w *wal) commit(batch []*appendReq) error {
	w.mu.Lock()
	if w.broken != nil {
		err := w.broken
		w.mu.Unlock()
		cadd(w.met.AppendErrors, int64(len(batch)))
		return err
	}
	if w.activeSize >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.broken = fmt.Errorf("storage: wal rotate: %w", err)
			err = w.broken
			w.mu.Unlock()
			cadd(w.met.AppendErrors, int64(len(batch)))
			return err
		}
	}
	w.buf = w.buf[:0]
	for _, r := range batch {
		w.buf = encodeRecord(w.buf, r.rec)
	}
	_, err := w.active.Write(w.buf)
	if err == nil {
		err = w.active.Sync()
	}
	if err != nil {
		// The active file may hold a torn batch now; recovery will
		// truncate it. The log seals itself: a disk that failed once
		// must not keep acking durability.
		w.broken = fmt.Errorf("storage: wal append: %w", err)
		err = w.broken
		w.mu.Unlock()
		cadd(w.met.AppendErrors, int64(len(batch)))
		return err
	}
	w.activeSize += int64(len(w.buf))
	w.activeRecords += uint64(len(batch))
	w.nextLSN += uint64(len(batch))
	w.mu.Unlock()
	cinc(w.met.Syncs)
	cadd(w.met.Appends, int64(len(batch)))
	w.publishGauges()
	return nil
}

// rotateLocked seals the active segment and opens a fresh one. Called
// only between batches, so the sealed file is fully synced already.
func (w *wal) rotateLocked() error {
	if err := w.active.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, segment{
		path:     w.activePath,
		firstLSN: w.activeFirst,
		records:  w.activeRecords,
		size:     w.activeSize,
	})
	return w.openActiveLocked()
}

// seal makes every record appended so far live in a sealed segment
// and returns the highest LSN covered; the snapshot that follows can
// then truncate exactly those segments. An empty active segment is
// reused rather than rotated.
func (w *wal) seal() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return 0, w.broken
	}
	if w.activeRecords > 0 {
		if err := w.rotateLocked(); err != nil {
			w.broken = fmt.Errorf("storage: wal rotate: %w", err)
			return 0, w.broken
		}
	}
	return w.nextLSN - 1, nil
}

// dropCovered deletes sealed segments fully covered by a snapshot at
// lsn and returns how many were removed — the snapshot/truncate cycle
// that stops the log growing forever.
func (w *wal) dropCovered(lsn uint64) (int, error) {
	w.mu.Lock()
	var keep []segment
	var drop []segment
	for _, s := range w.sealed {
		if s.records > 0 && s.lastLSN() <= lsn {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	w.sealed = keep
	w.mu.Unlock()
	for _, s := range drop {
		if err := w.fs.Remove(s.path); err != nil {
			return 0, err
		}
	}
	if len(drop) > 0 {
		if err := w.fs.SyncDir(w.dir); err != nil {
			return len(drop), err
		}
	}
	cadd(w.met.SegmentsTruncated, int64(len(drop)))
	w.publishGauges()
	return len(drop), nil
}

// totalBytes is the live log size across sealed and active segments.
func (w *wal) totalBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.activeSize
	for _, s := range w.sealed {
		total += s.size
	}
	return total
}

func (w *wal) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

func (w *wal) publishGauges() {
	gset(w.met.WALBytes, w.totalBytes())
	gset(w.met.WALSegments, int64(w.segmentCount()))
}

// lastErr reports the sealing failure, if any.
func (w *wal) lastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// close stops the commit loop. With clean set the active segment is
// closed properly; a crash-abandon skips both, leaving whatever the
// last fsync made durable — exactly what a process kill leaves.
func (w *wal) close(clean bool) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	<-w.loopDone
	<-w.compDone
	if !clean {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	err := w.active.Close()
	w.active = nil
	return err
}
