package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
)

// A snapshot is the compacted state of the store at a WAL position:
//
//	[8B magic "ACESNAP1"][u64 lsn][u64 count][count framed records]
//
// followed by end-of-file. Each record reuses the WAL's CRC framing,
// so a snapshot validates record-by-record; any decode failure or
// trailing garbage marks the whole file invalid and recovery falls
// back to an older snapshot (or a bare WAL replay). Snapshots are
// written to a .tmp file, fsynced, then renamed — a crash mid-write
// leaves a .tmp that recovery discards, never a half-trusted .snap.
const snapMagic = "ACESNAP1"

func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%020d.snap", lsn) }

// parseSnapshotName extracts the LSN from a snap-<lsn>.snap name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	return lsn, err == nil
}

// parseSegmentName extracts the first LSN from a wal-<lsn>.seg name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
	return lsn, err == nil
}

// writeSnapshot writes records as the compacted state at lsn using
// the write-temp-fsync-rename protocol and returns the final path.
func writeSnapshot(fsys FS, dir string, lsn uint64, records []Record) (string, error) {
	final := filepath.Join(dir, snapshotName(lsn))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("storage: create snapshot: %w", err)
	}
	cleanup := func(err error) (string, error) {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return "", err
	}
	var hdr [len(snapMagic) + 16]byte
	copy(hdr[:], snapMagic)
	binary.BigEndian.PutUint64(hdr[len(snapMagic):], lsn)
	binary.BigEndian.PutUint64(hdr[len(snapMagic)+8:], uint64(len(records)))
	if _, err := f.Write(hdr[:]); err != nil {
		return cleanup(fmt.Errorf("storage: write snapshot: %w", err))
	}
	buf := make([]byte, 0, 64*1024)
	for _, r := range records {
		buf = encodeRecord(buf[:0], r)
		if _, err := f.Write(buf); err != nil {
			return cleanup(fmt.Errorf("storage: write snapshot: %w", err))
		}
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("storage: sync snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return "", fmt.Errorf("storage: close snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		_ = fsys.Remove(tmp)
		return "", fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", fmt.Errorf("storage: sync dir: %w", err)
	}
	return final, nil
}

// loadSnapshot reads and fully validates one snapshot file.
func loadSnapshot(fsys FS, path string) (lsn uint64, records []Record, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	var hdr [len(snapMagic) + 16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("storage: snapshot header: %w", err)
	}
	if string(hdr[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("storage: snapshot %s: bad magic", filepath.Base(path))
	}
	lsn = binary.BigEndian.Uint64(hdr[len(snapMagic):])
	count := binary.BigEndian.Uint64(hdr[len(snapMagic)+8:])
	if count > 1<<32 {
		return 0, nil, fmt.Errorf("storage: snapshot %s: implausible record count %d", filepath.Base(path), count)
	}
	// Until the records behind it validate, count is just bytes that
	// may be flipped: never trust it as an allocation size.
	records = make([]Record, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		rec, _, rerr := readRecord(f)
		if rerr != nil {
			return 0, nil, fmt.Errorf("storage: snapshot %s: record %d: %w", filepath.Base(path), i, rerr)
		}
		records = append(records, rec)
	}
	var one [1]byte
	if _, rerr := f.Read(one[:]); rerr != io.EOF {
		return 0, nil, fmt.Errorf("storage: snapshot %s: trailing garbage", filepath.Base(path))
	}
	return lsn, records, nil
}
