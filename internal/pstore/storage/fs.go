// Package storage is the persistent store's durable storage engine:
// a segmented, CRC-checksummed write-ahead log with group commit,
// periodic compacted snapshots, and recovery-on-boot that separates
// the expected crash artifact (a torn tail) from real corruption.
//
// The engine talks to disk only through the FS seam, so the chaos
// harness can inject fsync failures, torn writes, and kill-without-
// shutdown deterministically (see internal/chaos.DiskFS). Production
// code uses OS, the passthrough to the real filesystem.
package storage

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the engine writes through. Implementations
// must be safe for concurrent use; paths are slash-joined as by
// filepath.Join.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not full paths) of the files in dir,
	// sorted. A missing directory is an empty listing, not an error.
	List(dir string) ([]string, error)
	// Open opens name for sequential reading.
	Open(name string) (File, error)
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(dir string) error
}

// File is one open file handle from an FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage. A write is durable
	// only once Sync has returned nil.
	Sync() error
	// Truncate cuts the file to size bytes (used to repair a torn
	// tail before appending resumes).
	Truncate(size int64) error
}

// OS is the production FS: a passthrough to the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// SyncDir fsyncs the directory so renames and removals survive a
// crash. Filesystems that cannot fsync a directory get best effort.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
