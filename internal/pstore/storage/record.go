package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one durable write: the WAL's append unit and the
// snapshot's entry unit. Replay applies records through the store's
// last-writer-wins merge, so recovery is insensitive to the order in
// which concurrent writers reached the log.
type Record struct {
	Path    string
	Value   []byte
	Version uint64
	Deleted bool
	// HLC is the packed hybrid-logical-clock timestamp the write was
	// stamped with (zero for unstamped legacy records). Recovery folds
	// the maximum over all replayed records into the node's clock so
	// timestamps stay monotonic across crash and restart.
	HLC uint64
}

// Framing: every record on disk is
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with the payload encoding
//
//	[u8 flags][u64 version][u32 pathLen][path][u32 valueLen][value][u64 hlc]?
//
// all big-endian. The trailing hlc column is present exactly when
// flagHLC is set, so logs written before hybrid logical clocks
// existed (and unstamped records since) decode unchanged, and old
// readers reject stamped records as corrupt rather than silently
// misparsing them. The CRC covers only the payload; a record whose
// stored CRC disagrees with its payload is either a torn final write
// (crash artifact) or corruption, and recovery tells the two apart by
// position (see replaySegment).
const (
	frameHeaderSize = 8
	flagDeleted     = 1 << 0
	flagHLC         = 1 << 1

	// maxRecordSize bounds a single record's payload. A length prefix
	// beyond it cannot be trusted (corruption), so replay stops
	// instead of allocating gigabytes.
	maxRecordSize = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// errTornRecord marks a record the file physically ends inside:
	// the expected artifact of a crash mid-append.
	errTornRecord = errors.New("storage: record torn at end of file")
	// errCorruptRecord marks a record whose bytes are all present but
	// wrong: CRC mismatch, insane length, or undecodable payload.
	errCorruptRecord = errors.New("storage: corrupt record")
)

// encodeRecord appends r's framed encoding to buf and returns it.
func encodeRecord(buf []byte, r Record) []byte {
	payloadLen := 1 + 8 + 4 + len(r.Path) + 4 + len(r.Value)
	if r.HLC != 0 {
		payloadLen += 8
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize+payloadLen)...)
	binary.BigEndian.PutUint32(buf[start:], uint32(payloadLen))
	p := buf[start+frameHeaderSize:]
	var flags byte
	if r.Deleted {
		flags |= flagDeleted
	}
	if r.HLC != 0 {
		flags |= flagHLC
	}
	p[0] = flags
	binary.BigEndian.PutUint64(p[1:], r.Version)
	binary.BigEndian.PutUint32(p[9:], uint32(len(r.Path)))
	copy(p[13:], r.Path)
	off := 13 + len(r.Path)
	binary.BigEndian.PutUint32(p[off:], uint32(len(r.Value)))
	copy(p[off+4:], r.Value)
	if r.HLC != 0 {
		binary.BigEndian.PutUint64(p[off+4+len(r.Value):], r.HLC)
	}
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(p, crcTable))
	return buf
}

// decodePayload decodes one record payload (CRC already verified).
func decodePayload(p []byte) (Record, error) {
	if len(p) < 13 {
		return Record{}, errCorruptRecord
	}
	flags := p[0]
	version := binary.BigEndian.Uint64(p[1:])
	pathLen := int(binary.BigEndian.Uint32(p[9:]))
	if pathLen < 0 || 13+pathLen+4 > len(p) {
		return Record{}, errCorruptRecord
	}
	path := string(p[13 : 13+pathLen])
	off := 13 + pathLen
	valueLen := int(binary.BigEndian.Uint32(p[off:]))
	tail := 0
	if flags&flagHLC != 0 {
		tail = 8
	}
	if valueLen < 0 || off+4+valueLen+tail != len(p) {
		return Record{}, errCorruptRecord
	}
	var value []byte
	if valueLen > 0 {
		value = append([]byte(nil), p[off+4:off+4+valueLen]...)
	}
	var hlc uint64
	if tail != 0 {
		hlc = binary.BigEndian.Uint64(p[off+4+valueLen:])
	}
	return Record{
		Path:    path,
		Value:   value,
		Version: version,
		Deleted: flags&flagDeleted != 0,
		HLC:     hlc,
	}, nil
}

// readRecord reads one framed record from r. It returns io.EOF at a
// clean record boundary, errTornRecord when the stream ends inside a
// record, and errCorruptRecord for a present-but-wrong record.
func readRecord(r io.Reader) (Record, int64, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, errTornRecord
	}
	payloadLen := binary.BigEndian.Uint32(hdr[:4])
	if payloadLen > maxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: length prefix %d exceeds %d", errCorruptRecord, payloadLen, maxRecordSize)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, errTornRecord
	}
	size := int64(frameHeaderSize) + int64(payloadLen)
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:]) {
		return Record{}, size, fmt.Errorf("%w: checksum mismatch", errCorruptRecord)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, size, err
	}
	return rec, size, nil
}
