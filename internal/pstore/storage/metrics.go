package storage

// Counter and Gauge are the narrow slices of a metrics registry the
// engine needs; internal/telemetry's Counter and Gauge satisfy them.
// Every Metrics field may be nil — the engine is usable without any
// instrumentation wired in.
type Counter interface {
	Inc()
	Add(delta int64)
}

// Gauge is a settable instantaneous value.
type Gauge interface {
	Set(v int64)
}

// Metrics receives the engine's instrumentation.
type Metrics struct {
	// WAL write path.
	Appends      Counter // records durably appended
	AppendErrors Counter // appends refused or failed (write/sync error, closed log)
	Syncs        Counter // fsync batches (Appends/Syncs = group-commit amortization)

	// Snapshot cycle.
	Snapshots         Counter // compacted snapshots written
	SnapshotErrors    Counter // snapshot attempts that failed (log keeps the data)
	SegmentsTruncated Counter // sealed WAL segments deleted after a snapshot

	// Recovery.
	Replayed       Counter // WAL records replayed at open
	TornTails      Counter // torn final records truncated at open (expected crash artifact)
	CorruptRecords Counter // mid-log corrupt records found at open
	SnapshotsBad   Counter // snapshots that failed validation at open

	// Live log shape.
	WALBytes    Gauge // bytes across all live segments
	WALSegments Gauge // live segment files (incl. active)
}

func cinc(c Counter) {
	if c != nil {
		c.Inc()
	}
}

func cadd(c Counter, d int64) {
	if c != nil {
		c.Add(d)
	}
}

func gset(g Gauge, v int64) {
	if g != nil {
		g.Set(v)
	}
}
