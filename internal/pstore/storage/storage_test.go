package storage_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/chaos"
	"ace/internal/pstore/storage"
)

const dir = "/store"

func rec(i int) storage.Record {
	return storage.Record{
		Path:    fmt.Sprintf("/k/%03d", i),
		Value:   []byte(fmt.Sprintf("v%03d", i)),
		Version: uint64(i + 1),
	}
}

func mustOpen(t *testing.T, fs storage.FS, opts storage.Options) (*storage.Engine, []storage.Record, storage.RecoveryInfo) {
	t.Helper()
	opts.FS = fs
	eng, recs, info, err := storage.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return eng, recs, info
}

func appendN(t *testing.T, eng *storage.Engine, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := eng.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, got []storage.Record, want ...int) {
	t.Helper()
	byPath := make(map[string]storage.Record, len(got))
	for _, r := range got {
		byPath[r.Path] = r
	}
	for _, i := range want {
		w := rec(i)
		g, ok := byPath[w.Path]
		if !ok {
			t.Fatalf("recovered state missing %s", w.Path)
		}
		if string(g.Value) != string(w.Value) || g.Version != w.Version || g.Deleted != w.Deleted {
			t.Fatalf("recovered %s = %+v, want %+v", w.Path, g, w)
		}
	}
	if len(byPath) != len(want) {
		t.Fatalf("recovered %d distinct records, want %d", len(byPath), len(want))
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, recs, info := mustOpen(t, fs, storage.Options{})
	if len(recs) != 0 || info.Replayed != 0 {
		t.Fatalf("fresh open recovered %d records", len(recs))
	}
	appendN(t, eng, 0, 10)
	if err := eng.Append(storage.Record{Path: rec(3).Path, Version: 100, Deleted: true}); err != nil {
		t.Fatalf("tombstone append: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2, recs2, info2 := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	if info2.Replayed != 11 || info2.TornTails != 0 || info2.CorruptRecords != 0 {
		t.Fatalf("recovery info = %+v, want 11 clean replays", info2)
	}
	// Replay preserves log order: the tombstone must come after the put
	// it supersedes.
	last := recs2[len(recs2)-1]
	if !last.Deleted || last.Version != 100 {
		t.Fatalf("last replayed record = %+v, want the tombstone", last)
	}
}

func TestRecoveryAcrossSegmentRotation(t *testing.T) {
	fs := chaos.NewDiskFS()
	// Tiny segments force rotation every record or two.
	eng, _, _ := mustOpen(t, fs, storage.Options{SegmentBytes: 64, SnapshotBytes: 1 << 30})
	appendN(t, eng, 0, 20)
	if eng.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", eng.Segments())
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, recs, info := mustOpen(t, fs, storage.Options{SegmentBytes: 64, SnapshotBytes: 1 << 30})
	defer eng2.Close()
	if info.Replayed != 20 {
		t.Fatalf("replayed %d records across segments, want 20", info.Replayed)
	}
	wantRecords(t, recs, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19)
}

// slowSyncFS delays every file fsync so concurrent appends pile up
// behind the commit loop — making group-commit batching deterministic
// instead of a scheduling accident.
type slowSyncFS struct {
	storage.FS
	delay time.Duration
}

func (s slowSyncFS) Create(name string) (storage.File, error) {
	f, err := s.FS.Create(name)
	return slowSyncFile{f, s.delay}, err
}

func (s slowSyncFS) OpenAppend(name string) (storage.File, error) {
	f, err := s.FS.OpenAppend(name)
	return slowSyncFile{f, s.delay}, err
}

type slowSyncFile struct {
	storage.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	disk := chaos.NewDiskFS()
	fs := slowSyncFS{FS: disk, delay: 2 * time.Millisecond}
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := eng.Append(rec(w*perWriter + i)); err != nil {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d appends failed", failed.Load())
	}
	total := int64(writers * perWriter)
	if syncs := disk.Syncs(); syncs >= total/2 {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d appends", syncs, total)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, recs, _ := mustOpen(t, disk, storage.Options{})
	defer eng2.Close()
	if len(recs) != int(total) {
		t.Fatalf("recovered %d records, want %d", len(recs), total)
	}
}

func TestTornTailTruncatedAndRepaired(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 5)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := fmt.Sprintf("%s/wal-%020d.seg", dir, 1)
	size, err := fs.Size(seg)
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	// Cut mid-way through the final record: the crash-during-append
	// artifact.
	if err := fs.TruncateTo(seg, size-3); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}

	eng2, recs, info := mustOpen(t, fs, storage.Options{})
	if info.TornTails != 1 || info.CorruptRecords != 0 {
		t.Fatalf("recovery info = %+v, want exactly one torn tail and no corruption", info)
	}
	wantRecords(t, recs, 0, 1, 2, 3)
	// The tail was physically truncated and the log keeps working:
	// append on top, reopen again, everything is clean.
	appendN(t, eng2, 10, 1)
	if err := eng2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng3, recs3, info3 := mustOpen(t, fs, storage.Options{})
	defer eng3.Close()
	if info3.TornTails != 0 {
		t.Fatalf("second recovery found a torn tail again: %+v", info3)
	}
	wantRecords(t, recs3, 0, 1, 2, 3, 10)
}

func TestMidLogCorruptionFailFast(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 5)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := fmt.Sprintf("%s/wal-%020d.seg", dir, 1)
	size, err := fs.Size(seg)
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	// Damage an early record — valid history follows it, so this can
	// never be mistaken for a torn tail.
	if err := fs.Corrupt(seg, size/4); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	_, _, _, oerr := storage.Open(dir, storage.Options{FS: fs})
	if oerr == nil {
		t.Fatal("Open accepted mid-log corruption under CorruptFailFast")
	}
}

func TestMidLogCorruptionQuarantine(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 5)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := fmt.Sprintf("%s/wal-%020d.seg", dir, 1)
	size, err := fs.Size(seg)
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if err := fs.Corrupt(seg, size/2); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	eng2, recs, info := mustOpen(t, fs, storage.Options{Corruption: storage.CorruptQuarantine})
	defer eng2.Close()
	if info.CorruptRecords == 0 {
		t.Fatalf("recovery info = %+v, want corruption counted", info)
	}
	if len(info.Quarantined) != 1 || !strings.HasSuffix(info.Quarantined[0], ".quarantine") {
		t.Fatalf("quarantined = %v, want the damaged segment renamed aside", info.Quarantined)
	}
	if len(recs) == 0 || len(recs) >= 5 {
		t.Fatalf("recovered %d records, want the prefix before the damage", len(recs))
	}
	// Quarantine leaves the surviving state un-durable (its log file is
	// gone): the engine must demand an immediate snapshot.
	if !eng2.ShouldSnapshot() {
		t.Fatal("engine does not want a snapshot after quarantining data")
	}
	if err := eng2.Snapshot(func() []storage.Record {
		out := make([]storage.Record, 5)
		for i := range out {
			out[i] = rec(i)
		}
		return out
	}); err != nil {
		t.Fatalf("post-quarantine snapshot: %v", err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng3, recs3, _ := mustOpen(t, fs, storage.Options{Corruption: storage.CorruptQuarantine})
	defer eng3.Close()
	wantRecords(t, recs3, 0, 1, 2, 3, 4)
}

func TestLogGapDetected(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{SegmentBytes: 64, SnapshotBytes: 1 << 30})
	appendN(t, eng, 0, 20)
	if eng.Segments() < 3 {
		t.Fatalf("expected at least 3 segments, got %d", eng.Segments())
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Delete a middle segment: a hole in acknowledged history.
	names, _ := fs.List(dir)
	var segs []string
	for _, n := range names {
		if strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	if err := fs.Remove(dir + "/" + segs[1]); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	_, _, _, oerr := storage.Open(dir, storage.Options{FS: fs})
	if oerr == nil || !strings.Contains(oerr.Error(), "log gap") {
		t.Fatalf("Open = %v, want a log-gap error", oerr)
	}
}

func TestSnapshotCompactsAndTruncates(t *testing.T) {
	fs := chaos.NewDiskFS()
	opts := storage.Options{SegmentBytes: 128, SnapshotBytes: 1 << 30}
	eng, _, _ := mustOpen(t, fs, opts)
	appendN(t, eng, 0, 30)
	segsBefore, bytesBefore := eng.Segments(), eng.LogBytes()
	if segsBefore < 3 {
		t.Fatalf("expected a grown log, got %d segments", segsBefore)
	}
	// Compact to 3 live records, as after overwrites/deletes.
	state := []storage.Record{rec(0), rec(1), rec(2)}
	if err := eng.Snapshot(func() []storage.Record { return state }); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if eng.SnapshotLSN() != 30 {
		t.Fatalf("SnapshotLSN = %d, want 30", eng.SnapshotLSN())
	}
	if eng.LogBytes() >= bytesBefore {
		t.Fatalf("snapshot did not truncate: %d bytes before, %d after", bytesBefore, eng.LogBytes())
	}
	// Appends continue past the snapshot; recovery = snapshot + tail.
	appendN(t, eng, 40, 2)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, recs, info := mustOpen(t, fs, opts)
	if info.SnapshotLSN != 30 || info.SnapshotRecords != 3 || info.Replayed != 2 {
		t.Fatalf("recovery info = %+v, want snapshot@30 with 3 records + 2 replayed", info)
	}
	wantRecords(t, recs, 0, 1, 2, 40, 41)
	// A second snapshot replaces the first: only one .snap remains.
	if err := eng2.Snapshot(func() []storage.Record { return recs }); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	names, _ := fs.List(dir)
	snaps := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".snap") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files on disk, want 1", snaps)
	}
	if err := eng2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAbandonedSnapshotTmpSwept(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 3)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The artifact of a crash mid-snapshot: a temp file that was never
	// renamed into place. It must be discarded, never trusted.
	f, err := fs.Create(fmt.Sprintf("%s/snap-%020d.snap.tmp", dir, 99))
	if err != nil {
		t.Fatalf("Create tmp: %v", err)
	}
	if _, err := f.Write([]byte("half a snapsho")); err != nil {
		t.Fatalf("Write tmp: %v", err)
	}
	f.Close()

	eng2, recs, info := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	if info.TmpRemoved != 1 {
		t.Fatalf("recovery info = %+v, want the tmp swept", info)
	}
	wantRecords(t, recs, 0, 1, 2)
	if names, _ := fs.List(dir); func() bool {
		for _, n := range names {
			if strings.HasSuffix(n, ".tmp") {
				return true
			}
		}
		return false
	}() {
		t.Fatal("tmp file still on disk after recovery")
	}
}

func TestInvalidSnapshotFallsBackToWAL(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 4)
	if err := eng.Snapshot(func() []storage.Record {
		return []storage.Record{rec(0), rec(1), rec(2), rec(3)}
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendN(t, eng, 10, 1)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := fmt.Sprintf("%s/snap-%020d.snap", dir, 4)
	if err := fs.Corrupt(snap, 20); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	// Fail-fast refuses the damaged snapshot outright.
	if _, _, _, oerr := storage.Open(dir, storage.Options{FS: fs}); oerr == nil {
		t.Fatal("Open accepted a corrupt snapshot under CorruptFailFast")
	}
	// Quarantine sets it aside. The covered WAL segments were truncated
	// at snapshot time, so only the post-snapshot tail survives — and
	// the engine reports exactly that, rather than silently serving a
	// half-decoded snapshot.
	eng2, recs, info := mustOpen(t, fs, storage.Options{Corruption: storage.CorruptQuarantine})
	defer eng2.Close()
	if info.SnapshotsBad != 1 {
		t.Fatalf("recovery info = %+v, want one bad snapshot", info)
	}
	wantRecords(t, recs, 10)
}

type tcounter struct{ n atomic.Int64 }

func (c *tcounter) Inc()        { c.n.Add(1) }
func (c *tcounter) Add(d int64) { c.n.Add(d) }
func (c *tcounter) Load() int64 { return c.n.Load() }

func TestFsyncFailureSealsLog(t *testing.T) {
	fs := chaos.NewDiskFS()
	var appendErrs tcounter
	opts := storage.Options{Metrics: storage.Metrics{AppendErrors: &appendErrs}}
	eng, _, _ := mustOpen(t, fs, opts)
	appendN(t, eng, 0, 3)
	fs.FailSync(fmt.Errorf("simulated EIO"))
	if err := eng.Append(rec(3)); err == nil {
		t.Fatal("Append succeeded while fsync fails: durability lie")
	}
	// Healing the disk does not un-seal the log: a disk that failed
	// once must not resume acking durability without recovery.
	fs.FailSync(nil)
	if err := eng.Append(rec(4)); err == nil {
		t.Fatal("sealed log accepted an append")
	}
	if eng.Err() == nil {
		t.Fatal("Err() is nil on a sealed log")
	}
	if appendErrs.Load() < 2 {
		t.Fatalf("append_errors = %d, want both refusals counted", appendErrs.Load())
	}
	eng.Crash()
	// Recovery sees exactly the acked records; the un-synced batch that
	// failed may be truncated as a torn tail but never replayed as if
	// it had been acknowledged.
	fs.Crash()
	eng2, recs, _ := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	wantRecords(t, recs, 0, 1, 2)
}

func TestCrashLosesOnlyUnsyncedWrites(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 6) // every Append returned: all durable
	eng.Crash()           // no clean close, no final flush
	fs.Crash()            // page cache gone
	if err := eng.Append(rec(99)); err == nil {
		t.Fatal("crashed engine accepted an append")
	}
	eng2, recs, info := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	if info.CorruptRecords != 0 {
		t.Fatalf("recovery info = %+v, want no corruption after a plain crash", info)
	}
	wantRecords(t, recs, 0, 1, 2, 3, 4, 5)
}

func TestTornWriteRefusedAndRepaired(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	appendN(t, eng, 0, 2)
	fs.TornWrites(true)
	if err := eng.Append(rec(2)); err == nil {
		t.Fatal("Append acked a torn write")
	}
	fs.TornWrites(false)
	eng.Crash()
	// The half-written record is on disk. Recovery must classify it as
	// a torn tail (crash artifact), truncate it, and keep going.
	eng2, recs, info := mustOpen(t, fs, storage.Options{})
	if info.TornTails != 1 {
		t.Fatalf("recovery info = %+v, want the torn write truncated", info)
	}
	wantRecords(t, recs, 0, 1)
	appendN(t, eng2, 5, 1)
	if err := eng2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng3, recs3, _ := mustOpen(t, fs, storage.Options{})
	defer eng3.Close()
	wantRecords(t, recs3, 0, 1, 5)
}

// TestAppendBatchDurableAndAmortized: a batch append lands every
// record durably, shares fsyncs across the batch instead of paying
// one per record, and recovers intact.
func TestAppendBatchDurableAndAmortized(t *testing.T) {
	disk := chaos.NewDiskFS()
	fs := slowSyncFS{FS: disk, delay: time.Millisecond}
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	const n = 100
	recs := make([]storage.Record, n)
	for i := range recs {
		recs[i] = rec(i)
	}
	if err := eng.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if syncs := disk.Syncs(); syncs >= n/2 {
		t.Fatalf("batch append paid %d fsyncs for %d records; not batching", syncs, n)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, got, info := mustOpen(t, disk, storage.Options{})
	defer eng2.Close()
	if info.Replayed != n || len(got) != n {
		t.Fatalf("recovered %d/%d records (replayed %d)", len(got), n, info.Replayed)
	}
	// An empty batch is a no-op, not a hang.
	if err := eng2.AppendBatch(nil); err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
}
