package storage_test

import (
	"testing"

	"ace/internal/chaos"
	"ace/internal/pstore/storage"
)

// TestHLCColumnRoundTrip proves the WAL persists the hybrid-logical
// clock column: stamped records recover with their stamp, unstamped
// records (the pre-HLC encoding) recover with zero, and both kinds
// coexist in one log.
func TestHLCColumnRoundTrip(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	recs := []storage.Record{
		{Path: "/k/old", Value: []byte("legacy"), Version: 1},                   // unstamped
		{Path: "/k/new", Value: []byte("stamped"), Version: 2, HLC: 0xABCD1234}, // stamped
		{Path: "/k/del", Version: 3, Deleted: true, HLC: 0x10001},               // stamped tombstone
		{Path: "/k/max", Value: []byte("hi"), Version: 4, HLC: ^uint64(0) >> 1}, // large stamp
	}
	for _, r := range recs {
		if err := eng.Append(r); err != nil {
			t.Fatalf("Append %s: %v", r.Path, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2, recovered, _ := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	byPath := make(map[string]storage.Record, len(recovered))
	for _, r := range recovered {
		byPath[r.Path] = r
	}
	for _, want := range recs {
		got, ok := byPath[want.Path]
		if !ok {
			t.Fatalf("recovery lost %s", want.Path)
		}
		if got.HLC != want.HLC {
			t.Fatalf("%s recovered HLC %#x, want %#x", want.Path, got.HLC, want.HLC)
		}
		if got.Version != want.Version || got.Deleted != want.Deleted {
			t.Fatalf("%s recovered %+v, want %+v", want.Path, got, want)
		}
	}
}

// TestHLCSurvivesSnapshot proves the stamp survives compaction, not
// just WAL replay: after a snapshot swallows the log, the recovered
// state still carries each record's HLC.
func TestHLCSurvivesSnapshot(t *testing.T) {
	fs := chaos.NewDiskFS()
	eng, _, _ := mustOpen(t, fs, storage.Options{})
	if err := eng.Append(storage.Record{Path: "/k/a", Value: []byte("x"), Version: 1, HLC: 777}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := eng.Snapshot(func() []storage.Record {
		return []storage.Record{{Path: "/k/a", Value: []byte("x"), Version: 1, HLC: 777}}
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, recovered, _ := mustOpen(t, fs, storage.Options{})
	defer eng2.Close()
	if len(recovered) != 1 || recovered[0].HLC != 777 {
		t.Fatalf("snapshot lost the stamp: %+v", recovered)
	}
}
