package storage

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CorruptionPolicy decides what recovery does with mid-log corruption
// — damage that is NOT the expected torn tail of a crash.
type CorruptionPolicy int

const (
	// CorruptFailFast refuses to open the store: an operator (or
	// supervisor) must decide, because continuing silently would
	// re-advertise a hole in the acknowledged history. The default.
	CorruptFailFast CorruptionPolicy = iota
	// CorruptQuarantine renames the damaged file to *.quarantine,
	// keeps everything readable before the damage, counts what was
	// lost, and relies on anti-entropy to re-pull the rest from the
	// replica group. The engine then wants an immediate snapshot so
	// the surviving state regains durability.
	CorruptQuarantine
)

// Options configures an Engine. The zero value is usable: real
// filesystem, 1 MiB segments, 4 MiB snapshot threshold, fail-fast on
// corruption.
type Options struct {
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// SegmentBytes caps one WAL segment before rotation.
	SegmentBytes int64
	// SnapshotBytes is the total live-log size that makes
	// ShouldSnapshot true. Clamped to at least 2*SegmentBytes so a
	// snapshot always has something to truncate.
	SnapshotBytes int64
	// BatchMax caps how many concurrent appends share one fsync.
	BatchMax int
	// Corruption selects the mid-log corruption policy.
	Corruption CorruptionPolicy
	// Metrics receives instrumentation; zero value disables it.
	Metrics Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SnapshotBytes < 2*o.SegmentBytes {
		o.SnapshotBytes = 2 * o.SegmentBytes
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 256
	}
	return o
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// SnapshotLSN is the WAL position of the snapshot that seeded
	// recovery (0: none).
	SnapshotLSN uint64
	// SnapshotRecords is how many records the snapshot held.
	SnapshotRecords int
	// Replayed is how many WAL records were replayed on top.
	Replayed int
	// TornTails counts truncated torn final records — the expected
	// artifact of a crash mid-append, repaired silently.
	TornTails int
	// CorruptRecords counts mid-log corruption events (CorruptQuarantine
	// only; CorruptFailFast turns the first one into an Open error).
	CorruptRecords int
	// SnapshotsBad counts snapshot files that failed validation.
	SnapshotsBad int
	// TmpRemoved counts abandoned snapshot temp files swept away.
	TmpRemoved int
	// Quarantined lists files renamed aside under CorruptQuarantine.
	Quarantined []string
}

// Engine is one node's durable storage: a group-commit WAL plus
// compacted snapshots. Open recovers state; Append makes one write
// durable; Snapshot compacts and truncates. Safe for concurrent use.
type Engine struct {
	dir  string
	fs   FS
	opts Options
	w    *wal

	mu        sync.Mutex // serializes Snapshot/Close
	snapLSN   uint64
	forceSnap bool
	closed    bool
}

// Open recovers the store in dir: newest valid snapshot first, then
// replay of every checksummed WAL record past it, torn tail repaired,
// corruption handled per policy. It returns the engine ready for
// appends and the recovered records in replay order (snapshot records
// first). Callers must merge them through their own conflict rule;
// the engine guarantees durability, not ordering.
func Open(dir string, opts Options) (*Engine, []Record, RecoveryInfo, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	met := opts.Metrics
	var info RecoveryInfo
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, info, fmt.Errorf("storage: %w", err)
	}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, nil, info, fmt.Errorf("storage: list %s: %w", dir, err)
	}

	// Sweep temp files: a crash mid-snapshot leaves snap-*.tmp behind;
	// it was never renamed, so it was never trusted.
	var snapNames []string
	var segFirsts []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, info, fmt.Errorf("storage: sweep %s: %w", name, err)
			}
			info.TmpRemoved++
			continue
		}
		if _, ok := parseSnapshotName(name); ok {
			snapNames = append(snapNames, name)
		}
		if first, ok := parseSegmentName(name); ok {
			segFirsts = append(segFirsts, first)
		}
	}

	// Newest valid snapshot wins; invalid ones are counted and, per
	// policy, fail the open or are quarantined.
	sort.Sort(sort.Reverse(sort.StringSlice(snapNames))) // zero-padded names: lexical == numeric
	var recovered []Record
	for _, name := range snapNames {
		path := filepath.Join(dir, name)
		lsn, records, lerr := loadSnapshot(fsys, path)
		if lerr == nil {
			info.SnapshotLSN = lsn
			info.SnapshotRecords = len(records)
			recovered = append(recovered, records...)
			break
		}
		info.SnapshotsBad++
		cinc(met.SnapshotsBad)
		if opts.Corruption == CorruptFailFast {
			return nil, nil, info, fmt.Errorf("storage: invalid snapshot: %w", lerr)
		}
		q := path + ".quarantine"
		if rerr := fsys.Rename(path, q); rerr != nil {
			return nil, nil, info, fmt.Errorf("storage: quarantine %s: %w", name, rerr)
		}
		info.Quarantined = append(info.Quarantined, filepath.Base(q))
	}

	// Replay WAL segments in LSN order, skipping records the snapshot
	// already covers.
	sort.Slice(segFirsts, func(i, j int) bool { return segFirsts[i] < segFirsts[j] })
	var sealed []segment
	var expect uint64 // next LSN the log should continue at; 0 = not yet known
	var activeFile File
	var activePath string
	var activeFirst, activeRecords uint64
	var activeSize int64
	for i, first := range segFirsts {
		isLast := i == len(segFirsts)-1
		path := filepath.Join(dir, segmentName(first))
		if !isLast && segFirsts[i+1] <= info.SnapshotLSN+1 {
			// Every record in this segment is older than the next
			// segment's first, hence covered by the snapshot: it only
			// survived a crash between snapshot publish and truncate.
			if err := fsys.Remove(path); err != nil {
				return nil, nil, info, fmt.Errorf("storage: drop covered segment: %w", err)
			}
			cinc(met.SegmentsTruncated)
			continue
		}
		// Continuity: the first surviving segment must start within the
		// snapshot's coverage; every later one exactly where its
		// predecessor ended. A hole is a vanished chunk of acknowledged
		// history — corruption, not a crash artifact.
		want := expect
		if want == 0 {
			want = info.SnapshotLSN + 1
			if first < want {
				want = first // overlap with the snapshot is fine
			}
		}
		if first != want {
			gapErr := fmt.Errorf("storage: segment %s: log gap (expected LSN %d, have %d)", filepath.Base(path), want, first)
			if opts.Corruption == CorruptFailFast {
				return nil, nil, info, gapErr
			}
			info.CorruptRecords++
			cinc(met.CorruptRecords)
		}
		res, rerr := replaySegment(fsys, path, first, isLast, info.SnapshotLSN, opts.Corruption)
		if rerr != nil {
			return nil, nil, info, rerr
		}
		recovered = append(recovered, res.records...)
		info.Replayed += len(res.records)
		info.TornTails += res.tornTails
		info.CorruptRecords += res.corrupt
		cadd(met.Replayed, int64(len(res.records)))
		cadd(met.TornTails, int64(res.tornTails))
		cadd(met.CorruptRecords, int64(res.corrupt))
		expect = first + res.total
		if res.quarantined != "" {
			info.Quarantined = append(info.Quarantined, res.quarantined)
			continue // the file is gone from the log
		}
		if isLast {
			f, aerr := fsys.OpenAppend(path)
			if aerr != nil {
				return nil, nil, info, fmt.Errorf("storage: reopen segment: %w", aerr)
			}
			activeFile = f
			activePath = path
			activeFirst = first
			activeRecords = res.total
			activeSize = res.goodBytes
		} else {
			sealed = append(sealed, segment{path: path, firstLSN: first, records: res.total, size: res.goodBytes})
		}
	}
	nextLSN := expect
	if nextLSN <= info.SnapshotLSN {
		nextLSN = info.SnapshotLSN + 1
	}
	if nextLSN == 0 {
		nextLSN = 1
	}

	w, err := newWAL(fsys, dir, opts.SegmentBytes, opts.BatchMax, met,
		sealed, activeFile, activePath, activeFirst, activeRecords, activeSize, nextLSN)
	if err != nil {
		if activeFile != nil {
			_ = activeFile.Close()
		}
		return nil, nil, info, err
	}
	e := &Engine{
		dir:     dir,
		fs:      fsys,
		opts:    opts,
		w:       w,
		snapLSN: info.SnapshotLSN,
		// Quarantined data means the in-memory state about to be
		// rebuilt (WAL survivors + anti-entropy) is more complete than
		// the log: compact as soon as the owner can provide it.
		forceSnap: len(info.Quarantined) > 0,
	}
	return e, recovered, info, nil
}

// segmentReplay is the outcome of replaying one segment.
type segmentReplay struct {
	records     []Record // records past the snapshot LSN, in log order
	total       uint64   // records physically present (incl. skipped)
	goodBytes   int64    // prefix of the file holding valid records
	tornTails   int
	corrupt     int
	quarantined string // non-empty when the file was renamed aside
}

// replaySegment reads one segment, distinguishing the two ways a log
// ends badly. A torn tail — the file physically stops inside the
// final record, or the final record's bytes are present but fail
// their CRC with nothing valid after them — is the normal signature
// of a crash during group commit: the unacked tail is truncated and
// the log continues. A corrupt record with MORE valid data after it
// (or any damage in a non-final segment) cannot be explained by a
// crash: that is real damage to acknowledged history, handled per
// CorruptionPolicy.
func replaySegment(fsys FS, path string, firstLSN uint64, isLast bool, snapLSN uint64, policy CorruptionPolicy) (segmentReplay, error) {
	var out segmentReplay
	f, err := fsys.Open(path)
	if err != nil {
		return out, fmt.Errorf("storage: open segment: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			_ = f.Close()
		}
	}()
	keep := func(rec Record) {
		if firstLSN+out.total > snapLSN { // this record's LSN
			out.records = append(out.records, rec)
		}
	}
	for {
		rec, size, rerr := readRecord(f)
		if rerr == nil {
			keep(rec)
			out.total++
			out.goodBytes += size
			continue
		}
		if rerr == io.EOF {
			return out, nil
		}
		torn := errors.Is(rerr, errTornRecord)
		if !torn && isLast && errors.Is(rerr, errCorruptRecord) && size > 0 {
			// Full-length record with a bad CRC at the log's end: decide
			// torn-vs-corrupt by looking for valid history after it.
			torn = !anyValidRecordAfter(f)
		}
		if torn && isLast {
			// Crash artifact: truncate the tail so appends resume from
			// the last durable record.
			out.tornTails++
			_ = f.Close()
			closed = true
			af, terr := fsys.OpenAppend(path)
			if terr != nil {
				return out, fmt.Errorf("storage: repair torn tail: %w", terr)
			}
			if terr := af.Truncate(out.goodBytes); terr != nil {
				_ = af.Close()
				return out, fmt.Errorf("storage: truncate torn tail: %w", terr)
			}
			if terr := af.Sync(); terr != nil {
				_ = af.Close()
				return out, fmt.Errorf("storage: sync repaired tail: %w", terr)
			}
			if terr := af.Close(); terr != nil {
				return out, fmt.Errorf("storage: close repaired tail: %w", terr)
			}
			return out, nil
		}
		// Mid-log corruption.
		if policy == CorruptFailFast {
			return out, fmt.Errorf("storage: segment %s at offset %d: %w", filepath.Base(path), out.goodBytes, rerr)
		}
		out.corrupt++
		_ = f.Close()
		closed = true
		q := path + ".quarantine"
		if qerr := fsys.Rename(path, q); qerr != nil {
			return out, fmt.Errorf("storage: quarantine %s: %w", filepath.Base(path), qerr)
		}
		out.quarantined = filepath.Base(q)
		return out, nil
	}
}

// anyValidRecordAfter scans forward for one decodable record.
func anyValidRecordAfter(r io.Reader) bool {
	for {
		_, _, err := readRecord(r)
		if err == nil {
			return true
		}
		if errors.Is(err, errCorruptRecord) {
			continue // skippable damage; keep looking for valid history
		}
		return false // EOF or torn: nothing valid follows
	}
}

// Append makes rec durable: it returns nil only after the fsync that
// covers rec completed. Concurrent appends share fsyncs (group
// commit). After any write or sync failure the engine seals itself
// and every subsequent Append fails fast — a log that lost a write
// must stop acknowledging durability.
func (e *Engine) Append(rec Record) error {
	return e.w.append(rec)
}

// AppendAsync enqueues rec without blocking and invokes done with the
// covering fsync's verdict (from the commit goroutine — done must be
// fast and must not block on the engine). If the log is already
// closed, done fires immediately with ErrClosed on the caller's
// goroutine. This is the write path for callers that hold a scarce
// thread: enqueue, release the thread, ack when durable — it is what
// lets concurrent writers actually pile up behind one fsync.
func (e *Engine) AppendAsync(rec Record, done func(error)) {
	if !e.w.appendAsync(rec, done) {
		done(ErrClosed)
	}
}

// AppendBatch makes every record in recs durable, sharing fsyncs
// across the whole batch: all records are enqueued before the first
// wait, so the commit goroutine coalesces them into as few
// write+fsync cycles as the segment layout allows. This is the bulk
// path for partition transfer and anti-entropy pulls — appending a
// pulled partition record-by-record through Append would pay one
// ordered wait per record and never batch. Returns the first failure
// (after which the engine is sealed, like Append).
func (e *Engine) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	errs := make(chan error, len(recs))
	for _, rec := range recs {
		e.AppendAsync(rec, func(err error) { errs <- err })
	}
	var first error
	for range recs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Err reports the sealing failure, if the log has one.
func (e *Engine) Err() error { return e.w.lastErr() }

// ShouldSnapshot reports whether the log has grown past the snapshot
// threshold (or recovery quarantined data and wants durability back).
func (e *Engine) ShouldSnapshot() bool {
	e.mu.Lock()
	force := e.forceSnap
	e.mu.Unlock()
	return force || e.w.totalBytes() >= e.opts.SnapshotBytes
}

// Snapshot compacts: it seals the active segment, collects the owner's
// full current state via collect (called after the seal, so the state
// is guaranteed to include every sealed record), writes it as an
// atomic snapshot, and truncates the covered segments. A failed
// snapshot is counted and leaves the log untouched — the data stays
// recoverable, just uncompacted.
func (e *Engine) Snapshot(collect func() []Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	lsn, err := e.w.seal()
	if err != nil {
		cinc(e.opts.Metrics.SnapshotErrors)
		return err
	}
	if lsn == 0 && !e.forceSnap {
		return nil // empty log, nothing to compact
	}
	if _, err := writeSnapshot(e.fs, e.dir, lsn, collect()); err != nil {
		cinc(e.opts.Metrics.SnapshotErrors)
		return err
	}
	prevLSN := e.snapLSN
	e.snapLSN = lsn
	e.forceSnap = false
	cinc(e.opts.Metrics.Snapshots)
	if _, err := e.w.dropCovered(lsn); err != nil {
		return fmt.Errorf("storage: truncate after snapshot: %w", err)
	}
	if prevLSN > 0 && prevLSN != lsn {
		if err := e.fs.Remove(filepath.Join(e.dir, snapshotName(prevLSN))); err != nil {
			return fmt.Errorf("storage: drop old snapshot: %w", err)
		}
	}
	return nil
}

// SnapshotLSN returns the WAL position of the latest snapshot.
func (e *Engine) SnapshotLSN() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapLSN
}

// LogBytes returns the live log size (sealed + active segments).
func (e *Engine) LogBytes() int64 { return e.w.totalBytes() }

// Segments returns the live segment-file count.
func (e *Engine) Segments() int { return e.w.segmentCount() }

// Close shuts the engine down cleanly, closing the active segment.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.w.close(true)
}

// Crash abandons the engine the way a process kill would: the commit
// loop stops, nothing is flushed, nothing is closed cleanly. Only the
// records whose Append already returned are guaranteed on disk. Test
// hook for kill-and-restart chaos.
func (e *Engine) Crash() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	_ = e.w.close(false)
}
