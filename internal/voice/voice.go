// Package voice implements the voice commanding the report names as
// the next development stage (§7.5: "The next stage in development
// for ACE is to have all the above described commands be given by
// voice and gestures"). A VoiceControl daemon listens on its audio
// data channel, runs the speech-to-command recognizer over incoming
// frames, and turns recognized utterances into environment actions by
// dispatching them to the task-automation service — so "print
// quarterly report" spoken into a room microphone queues a job on the
// nearest printer.
package voice

import (
	"net"
	"strings"
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/media"
	"ace/internal/roomdb"
)

// ClassVoice is the hierarchy class of voice-control services.
const ClassVoice = hier.Root + ".VoiceControl"

// Utterance records one recognized spoken command and what became of
// it.
type Utterance struct {
	Text       string // recognized text (terminator stripped)
	Task       string // dispatched task name, "" when unmapped
	Dispatched bool
	Error      string
}

// Config wires a voice-control endpoint.
type Config struct {
	// Daemon is the shell configuration.
	Daemon daemon.Config
	// Room is where this microphone lives; dispatched tasks resolve
	// "nearest" devices here.
	Room string
	// Pos is the microphone's position in the room.
	Pos roomdb.Point
	// TaskAutoAddr is the task-automation daemon commands are
	// dispatched to.
	TaskAutoAddr string
	// Speaker, when known, is attached as the task's user.
	Speaker string
}

// VoiceControl is the voice-command daemon.
type VoiceControl struct {
	*daemon.Daemon
	cfg Config

	mu         sync.Mutex
	stc        media.SpeechToCommand
	utterances []Utterance
}

// New constructs a voice-control endpoint.
func New(cfg Config) *VoiceControl {
	dcfg := cfg.Daemon
	if dcfg.Name == "" {
		dcfg.Name = "voice_" + cfg.Room
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassVoice
	}
	v := &VoiceControl{cfg: cfg}
	dcfg.DataHandler = v.onData
	v.Daemon = daemon.New(dcfg)
	v.install()
	return v
}

// Utterances returns the recognition history.
func (v *VoiceControl) Utterances() []Utterance {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]Utterance(nil), v.utterances...)
}

func (v *VoiceControl) onData(pkt []byte, _ net.Addr) {
	f, err := media.UnmarshalFrame(pkt)
	if err != nil {
		return
	}
	v.mu.Lock()
	cmd, complete := v.stc.Feed(f)
	v.mu.Unlock()
	if complete {
		v.handleUtterance(strings.TrimSuffix(cmd, ";"))
	}
}

// verbTask maps an utterance's leading verb to a task-automation task
// name. Everything after the verb travels as the task detail.
var verbTask = map[string]string{
	"print":   "print",
	"display": "display",
	"camera":  "watch",
	"watch":   "watch",
}

// handleUtterance maps "print quarterly report" → task print,
// detail "quarterly report" and dispatches it.
func (v *VoiceControl) handleUtterance(text string) {
	u := Utterance{Text: text}
	defer func() {
		v.mu.Lock()
		v.utterances = append(v.utterances, u)
		v.mu.Unlock()
	}()

	verb, detail, _ := strings.Cut(text, " ")
	task, ok := verbTask[verb]
	if !ok {
		u.Error = "no task mapped to verb " + verb
		return
	}
	u.Task = task
	if v.cfg.TaskAutoAddr == "" {
		u.Error = "no task-automation service configured"
		return
	}
	speaker := v.cfg.Speaker
	if speaker == "" {
		speaker = "voice"
	}
	cmd := cmdlang.New("task").
		SetWord("name", task).
		SetWord("user", speaker).
		SetWord("room", v.cfg.Room).
		SetString("detail", detail).
		Set("pos", cmdlang.FloatVector(v.cfg.Pos.X, v.cfg.Pos.Y, v.cfg.Pos.Z))
	if _, err := v.Pool().Call(v.cfg.TaskAutoAddr, cmd); err != nil {
		u.Error = err.Error()
		return
	}
	u.Dispatched = true
}

func (v *VoiceControl) install() {
	v.Handle(cmdlang.CommandSpec{Name: "heard", Doc: "recognition history"},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			v.mu.Lock()
			lines := make([]string, len(v.utterances))
			for i, u := range v.utterances {
				status := "dispatched"
				if !u.Dispatched {
					status = "failed: " + u.Error
				}
				lines[i] = u.Text + " → " + status
			}
			v.mu.Unlock()
			return cmdlang.OK().
				SetInt("count", int64(len(lines))).
				Set("utterances", cmdlang.StringVector(lines...)), nil
		})
}
