package voice

import (
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/device"
	"ace/internal/media"
	"ace/internal/roomdb"
	"ace/internal/taskauto"
)

// rig: room with a printer and projector, task automation, and a
// voice endpoint at the podium.
type rig struct {
	dir     *asd.Service
	printer *device.Printer
	proj    *device.Projector
	voice   *VoiceControl
	capture *media.AudioCapture
	pool    *daemon.Pool
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{}
	r.dir = asd.New(asd.Config{})
	if err := r.dir.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.dir.Stop)

	db := roomdb.NewDB()
	db.AddRoom(roomdb.Room{Name: "hawk"}) //nolint:errcheck
	rooms := roomdb.New(daemon.Config{ASDAddr: r.dir.Addr()}, db)
	if err := rooms.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rooms.Stop)

	r.printer = device.NewPrinter(daemon.Config{
		Name: "printer_hawk", Room: "hawk",
		ASDAddr: r.dir.Addr(), RoomDBAddr: rooms.Addr(),
	})
	if err := r.printer.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.printer.Stop)

	r.proj = device.NewProjector(daemon.Config{
		Name: "projector_hawk", Room: "hawk",
		ASDAddr: r.dir.Addr(), RoomDBAddr: rooms.Addr(),
	})
	if err := r.proj.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.proj.Stop)

	resolver := taskauto.NewResolver(daemon.NewPool(nil), r.dir.Addr(), rooms.Addr())
	auto := taskauto.NewService(daemon.Config{ASDAddr: r.dir.Addr()}, resolver)
	if err := auto.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(auto.Stop)

	r.voice = New(Config{
		Room:         "hawk",
		Speaker:      "john_doe",
		TaskAutoAddr: auto.Addr(),
	})
	if err := r.voice.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.voice.Stop)

	r.capture = media.NewAudioCapture(daemon.Config{})
	if err := r.capture.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.capture.Stop)

	r.pool = daemon.NewPool(nil)
	t.Cleanup(r.pool.Close)
	return r
}

func (r *rig) speak(t *testing.T, text string) {
	t.Helper()
	if _, err := r.pool.Call(r.capture.Addr(), cmdlang.New("say").
		SetString("dest", r.voice.DataAddr()).
		SetString("text", text)); err != nil {
		t.Fatal(err)
	}
}

func waitUtterances(t *testing.T, v *VoiceControl, n int) []Utterance {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		us := v.Utterances()
		if len(us) >= n {
			return us
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d utterances recognized", len(us), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSpokenPrintQueuesJob(t *testing.T) {
	r := buildRig(t)
	r.speak(t, "print quarterly report")
	us := waitUtterances(t, r.voice, 1)
	if !us[0].Dispatched || us[0].Task != "print" {
		t.Fatalf("utterance=%+v", us[0])
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(r.printer.Queue()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no job queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	job := r.printer.Queue()[0]
	if job.Title != "quarterly report" || job.Owner != "john_doe" {
		t.Fatalf("job=%+v", job)
	}
}

func TestSpokenCameraAndDisplay(t *testing.T) {
	r := buildRig(t)
	// Power the projector so the display task can route.
	projAddr, err := asd.Resolve(r.pool, r.dir.Addr(), asd.Query{Name: "projector_hawk"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.pool.Call(projAddr, cmdlang.New("power").SetBool("on", true)); err != nil {
		t.Fatal(err)
	}
	// No camera in the room: "camera on" dispatches but fails at
	// resolution; "display slides" succeeds.
	r.speak(t, "camera on")
	r.speak(t, "display slides")
	us := waitUtterances(t, r.voice, 2)
	byText := map[string]Utterance{}
	for _, u := range us {
		byText[u.Text] = u
	}
	if u := byText["camera on"]; u.Dispatched || !strings.Contains(u.Error, "no live") {
		t.Fatalf("camera utterance=%+v", u)
	}
	if u := byText["display slides"]; !u.Dispatched {
		t.Fatalf("display utterance=%+v", u)
	}
	if r.proj.State().Input != "slides" {
		t.Fatalf("projector=%+v", r.proj.State())
	}
}

func TestUnmappedVerbRecorded(t *testing.T) {
	r := buildRig(t)
	r.speak(t, "teleport me home")
	us := waitUtterances(t, r.voice, 1)
	if us[0].Dispatched || !strings.Contains(us[0].Error, "no task mapped") {
		t.Fatalf("utterance=%+v", us[0])
	}
	// The history surfaces over the command channel.
	reply, err := r.pool.Call(r.voice.Addr(), cmdlang.New("heard"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("count", 0) != 1 {
		t.Fatalf("reply=%v", reply)
	}
	if !strings.Contains(reply.Strings("utterances")[0], "teleport me home") {
		t.Fatalf("reply=%v", reply)
	}
}
