package triangulate

import (
	"sync"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/roomdb"
)

// ClassLocator is the hierarchy class of sound-locator services.
const ClassLocator = hier.Root + ".SoundLocator"

// Locator is the sound-triangulation daemon for one room: microphone
// daemons report the arrival time of each sound burst, and once
// enough microphones have reported, the burst can be located.
type Locator struct {
	*daemon.Daemon
	array *Array

	mu      sync.Mutex
	pending map[int64][]Arrival
	fixes   map[int64]Fix
	// onFix observes each solved burst (e.g. to aim a camera).
	onFix func(burst int64, fix Fix)
}

// NewLocator constructs the locator daemon over a calibrated array.
func NewLocator(dcfg daemon.Config, array *Array) *Locator {
	if dcfg.Name == "" {
		dcfg.Name = "soundlocator"
	}
	if dcfg.Class == "" {
		dcfg.Class = ClassLocator
	}
	l := &Locator{
		Daemon:  daemon.New(dcfg),
		array:   array,
		pending: make(map[int64][]Arrival),
		fixes:   make(map[int64]Fix),
	}
	l.install()
	return l
}

// SetOnFix installs the fix observer.
func (l *Locator) SetOnFix(fn func(burst int64, fix Fix)) {
	l.mu.Lock()
	l.onFix = fn
	l.mu.Unlock()
}

// Fix returns the solved location of a burst, if available.
func (l *Locator) Fix(burst int64) (Fix, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.fixes[burst]
	return f, ok
}

// report records one arrival and solves the burst once every array
// microphone has reported; it returns the fix when one was just
// produced. Waiting for the full array matters: a subset of mics may
// be coplanar (the four ceiling corners) and therefore blind to the
// source's mirror image about their plane.
func (l *Locator) report(burst int64, arr Arrival) (Fix, bool) {
	l.mu.Lock()
	l.pending[burst] = append(l.pending[burst], arr)
	arrivals := l.pending[burst]
	_, solved := l.fixes[burst]
	l.mu.Unlock()
	if solved || len(arrivals) < len(l.array.mics) {
		return Fix{}, false
	}
	fix, err := l.array.Locate(arrivals)
	if err != nil {
		return Fix{}, false
	}
	l.mu.Lock()
	l.fixes[burst] = fix
	cb := l.onFix
	l.mu.Unlock()
	if cb != nil {
		cb(burst, fix)
	}
	return fix, true
}

func (l *Locator) install() {
	l.Handle(cmdlang.CommandSpec{
		Name: "reportArrival",
		Doc:  "a microphone heard burst N at time T",
		Args: []cmdlang.ArgSpec{
			{Name: "burst", Kind: cmdlang.KindInt, Required: true},
			{Name: "mic", Kind: cmdlang.KindWord, Required: true},
			{Name: "time", Kind: cmdlang.KindFloat, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		fix, produced := l.report(c.Int("burst", 0), Arrival{
			Mic:  c.Str("mic", ""),
			Time: c.Float("time", 0),
		})
		reply := cmdlang.OK().SetBool("located", produced)
		if produced {
			reply.Set("pos", cmdlang.FloatVector(fix.Pos.X, fix.Pos.Y, fix.Pos.Z)).
				SetFloat("residual", fix.Residual)
		}
		return reply, nil
	})

	l.Handle(cmdlang.CommandSpec{
		Name: "whereWasBurst",
		Args: []cmdlang.ArgSpec{{Name: "burst", Kind: cmdlang.KindInt, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		fix, ok := l.Fix(c.Int("burst", 0))
		if !ok {
			return cmdlang.Fail(cmdlang.CodeNotFound, "burst not located"), nil
		}
		return cmdlang.OK().
			Set("pos", cmdlang.FloatVector(fix.Pos.X, fix.Pos.Y, fix.Pos.Z)).
			SetFloat("residual", fix.Residual), nil
	})

	l.Handle(cmdlang.CommandSpec{
		Name: "locate",
		Doc:  "one-shot: locate from parallel mic/time vectors",
		Args: []cmdlang.ArgSpec{
			{Name: "mics", Kind: cmdlang.KindVector, Required: true},
			{Name: "times", Kind: cmdlang.KindVector, Required: true},
		},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		mics := c.Strings("mics")
		times := c.Vector("times")
		if len(mics) != len(times) {
			return nil, &cmdlang.SemanticError{Command: "locate", Msg: "mics and times must be parallel"}
		}
		arrivals := make([]Arrival, len(mics))
		for i := range mics {
			tv, _ := times[i].AsFloat()
			arrivals[i] = Arrival{Mic: mics[i], Time: tv}
		}
		fix, err := l.array.Locate(arrivals)
		if err != nil {
			return nil, err
		}
		return cmdlang.OK().
			Set("pos", cmdlang.FloatVector(fix.Pos.X, fix.Pos.Y, fix.Pos.Z)).
			SetFloat("residual", fix.Residual).
			SetInt("iterations", int64(fix.Iterations)), nil
	})
}

// RoomArray builds a standard microphone array for a room of the
// given dimensions: four ceiling corners plus a podium-height mic.
// The fifth mic is deliberately NOT on the ceiling plane — a coplanar
// array cannot distinguish a source from its mirror image about that
// plane (the TDOA residuals are identical), so vertical
// observability requires breaking the plane.
func RoomArray(dims roomdb.Point) (*Array, error) {
	return NewArray(
		Mic{Name: "mic_nw", Pos: roomdb.Point{X: 0, Y: dims.Y, Z: dims.Z}},
		Mic{Name: "mic_ne", Pos: roomdb.Point{X: dims.X, Y: dims.Y, Z: dims.Z}},
		Mic{Name: "mic_sw", Pos: roomdb.Point{X: 0, Y: 0, Z: dims.Z}},
		Mic{Name: "mic_se", Pos: roomdb.Point{X: dims.X, Y: 0, Z: dims.Z}},
		Mic{Name: "mic_podium", Pos: roomdb.Point{X: dims.X / 2, Y: dims.Y / 4, Z: 1.0}},
	)
}
