// Package triangulate implements audio triangulation — named twice by
// the report (§1.2's "sound triangulation systems" among the user
// interaction services, §9's future directions) — locating a sound
// source (a speaking user) from its arrival times at a microphone
// array, so services can aim cameras at whoever is talking or resolve
// "nearest device" to the speaker's true position.
//
// The solver is classical TDOA (time difference of arrival)
// multilateration: with microphone positions p_i and measured arrival
// times t_i, the source s minimizes the squared residuals of
// pairwise range differences against c·(t_i−t_j). The non-convex
// cost surface is seeded with a coarse lattice search over the
// array's bounding volume and refined with damped Gauss–Newton
// (numerical Jacobian, backtracking line search).
package triangulate

import (
	"fmt"
	"math"
	"sort"

	"ace/internal/roomdb"
)

// SpeedOfSound is the propagation speed used by both the simulator
// and the solver (m/s, dry air at ~20 °C).
const SpeedOfSound = 343.0

// Mic is one microphone of the array.
type Mic struct {
	Name string
	Pos  roomdb.Point
}

// Arrival is one measured arrival time at a microphone.
type Arrival struct {
	Mic  string
	Time float64 // seconds, common clock
}

// Array is a calibrated microphone array.
type Array struct {
	mics []Mic
}

// NewArray builds an array; at least 4 microphones are needed for an
// unambiguous 3-D fix.
func NewArray(mics ...Mic) (*Array, error) {
	if len(mics) < 4 {
		return nil, fmt.Errorf("triangulate: need ≥4 microphones, have %d", len(mics))
	}
	return &Array{mics: append([]Mic(nil), mics...)}, nil
}

// Mics returns the array's microphones.
func (a *Array) Mics() []Mic { return append([]Mic(nil), a.mics...) }

func (a *Array) pos(name string) (roomdb.Point, bool) {
	for _, m := range a.mics {
		if m.Name == name {
			return m.Pos, true
		}
	}
	return roomdb.Point{}, false
}

func distance(a, b roomdb.Point) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Simulate produces the arrival times a source at src emitting at
// emitTime would generate, with additive per-mic timing noise (std
// seconds) from the noise function (pass nil for exact times).
func (a *Array) Simulate(src roomdb.Point, emitTime float64, noise func() float64) []Arrival {
	out := make([]Arrival, len(a.mics))
	for i, m := range a.mics {
		t := emitTime + distance(src, m.Pos)/SpeedOfSound
		if noise != nil {
			t += noise()
		}
		out[i] = Arrival{Mic: m.Name, Time: t}
	}
	return out
}

// Fix is a solved source location.
type Fix struct {
	Pos roomdb.Point
	// Residual is the RMS range-difference error in meters; large
	// residuals mean inconsistent measurements.
	Residual float64
	// Iterations the solver used.
	Iterations int
}

// Locate solves for the source position from arrival measurements.
// Arrivals for unknown microphones are ignored; at least 4 known
// microphones must report.
func (a *Array) Locate(arrivals []Arrival) (Fix, error) {
	type obs struct {
		pos roomdb.Point
		t   float64
	}
	var observations []obs
	for _, arr := range arrivals {
		if p, ok := a.pos(arr.Mic); ok {
			observations = append(observations, obs{pos: p, t: arr.Time})
		}
	}
	if len(observations) < 4 {
		return Fix{}, fmt.Errorf("triangulate: only %d usable arrivals, need ≥4", len(observations))
	}

	// Residual vector: pairwise range differences vs measured TDOA,
	// referenced to observation 0 (n−1 independent pairs).
	ref := observations[0]
	residuals := func(s roomdb.Point) []float64 {
		out := make([]float64, len(observations)-1)
		d0 := distance(s, ref.pos)
		for i, o := range observations[1:] {
			measured := SpeedOfSound * (o.t - ref.t)
			predicted := distance(s, o.pos) - d0
			out[i] = predicted - measured
		}
		return out
	}

	cost := func(s roomdb.Point) float64 {
		var ss float64
		for _, v := range residuals(s) {
			ss += v * v
		}
		return ss
	}

	// The TDOA cost surface is non-convex (hyperbolic sheets) with
	// shallow local minima, so seed damped Gauss–Newton from a coarse
	// lattice over the array's expanded bounding volume and refine
	// from the best few lattice points.
	lo := observations[0].pos
	hi := observations[0].pos
	for _, o := range observations[1:] {
		lo.X = math.Min(lo.X, o.pos.X)
		lo.Y = math.Min(lo.Y, o.pos.Y)
		lo.Z = math.Min(lo.Z, o.pos.Z)
		hi.X = math.Max(hi.X, o.pos.X)
		hi.Y = math.Max(hi.Y, o.pos.Y)
		hi.Z = math.Max(hi.Z, o.pos.Z)
	}
	const margin = 2.0
	lo.X -= margin
	lo.Y -= margin
	lo.Z -= margin
	hi.X += margin
	hi.Y += margin
	hi.Z += margin

	const lattice = 9
	type seed struct {
		p roomdb.Point
		c float64
	}
	seeds := make([]seed, 0, lattice*lattice*lattice)
	for i := 0; i < lattice; i++ {
		for j := 0; j < lattice; j++ {
			for k := 0; k < lattice; k++ {
				p := roomdb.Point{
					X: lo.X + (hi.X-lo.X)*float64(i)/(lattice-1),
					Y: lo.Y + (hi.Y-lo.Y)*float64(j)/(lattice-1),
					Z: lo.Z + (hi.Z-lo.Z)*float64(k)/(lattice-1),
				}
				seeds = append(seeds, seed{p: p, c: cost(p)})
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].c < seeds[j].c })

	best := Fix{Residual: math.Inf(1)}
	totalIter := 0
	const refineFrom = 12
	for i := 0; i < refineFrom && i < len(seeds); i++ {
		s, iters := gaussNewton(seeds[i].p, residuals, cost)
		totalIter += iters
		rms := math.Sqrt(cost(s) / float64(len(observations)-1))
		if rms < best.Residual {
			best = Fix{Pos: s, Residual: rms}
		}
		if best.Residual < 1e-9 {
			break // exact fix found
		}
	}
	// Escape shallow local minima: if the best refined fix still
	// carries residual, re-seed from a fine local lattice around it
	// (the global minimum is usually within a couple of meters, often
	// differing mainly in the weakly observed axis).
	if best.Residual > 1e-9 {
		const span = 2.5
		const fine = 5
		for i := 0; i < fine; i++ {
			for j := 0; j < fine; j++ {
				for k := 0; k < fine; k++ {
					p := roomdb.Point{
						X: best.Pos.X - span/2 + span*float64(i)/(fine-1),
						Y: best.Pos.Y - span/2 + span*float64(j)/(fine-1),
						Z: best.Pos.Z - span/2 + span*float64(k)/(fine-1),
					}
					s, iters := gaussNewton(p, residuals, cost)
					totalIter += iters
					rms := math.Sqrt(cost(s) / float64(len(observations)-1))
					if rms < best.Residual {
						best = Fix{Pos: s, Residual: rms}
					}
					if best.Residual < 1e-9 {
						best.Iterations = totalIter
						return best, nil
					}
				}
			}
		}
	}
	best.Iterations = totalIter
	return best, nil
}

// gaussNewton runs damped Gauss–Newton with a backtracking line
// search from one start, returning the refined point and iteration
// count.
func gaussNewton(s roomdb.Point, residuals func(roomdb.Point) []float64, cost func(roomdb.Point) float64) (roomdb.Point, int) {
	const (
		maxIter = 60
		eps     = 1e-6 // numerical differentiation step (meters)
		tol     = 1e-10
	)
	iter := 0
	for ; iter < maxIter; iter++ {
		r := residuals(s)
		m := len(r)
		// Numerical Jacobian: m×3.
		J := make([][3]float64, m)
		for axis := 0; axis < 3; axis++ {
			sp := s
			switch axis {
			case 0:
				sp.X += eps
			case 1:
				sp.Y += eps
			case 2:
				sp.Z += eps
			}
			rp := residuals(sp)
			for i := 0; i < m; i++ {
				J[i][axis] = (rp[i] - r[i]) / eps
			}
		}
		// Normal equations JᵀJ Δ = −Jᵀr with Levenberg damping.
		var JTJ [3][3]float64
		var JTr [3]float64
		for i := 0; i < m; i++ {
			for a1 := 0; a1 < 3; a1++ {
				JTr[a1] += J[i][a1] * r[i]
				for a2 := 0; a2 < 3; a2++ {
					JTJ[a1][a2] += J[i][a1] * J[i][a2]
				}
			}
		}
		const lambda = 1e-9
		for a1 := 0; a1 < 3; a1++ {
			JTJ[a1][a1] += lambda
		}
		delta, ok := solve3(JTJ, [3]float64{-JTr[0], -JTr[1], -JTr[2]})
		if !ok {
			break
		}
		// Backtracking line search: shrink the step until the cost
		// decreases (full Gauss–Newton steps diverge on hyperbolic
		// residual surfaces).
		before := cost(s)
		step := 1.0
		var next roomdb.Point
		improved := false
		for k := 0; k < 24; k++ {
			next = roomdb.Point{X: s.X + step*delta[0], Y: s.Y + step*delta[1], Z: s.Z + step*delta[2]}
			if cost(next) < before {
				improved = true
				break
			}
			step /= 2
		}
		if !improved {
			break
		}
		moved := step * step * (delta[0]*delta[0] + delta[1]*delta[1] + delta[2]*delta[2])
		s = next
		if moved < tol*tol {
			break
		}
	}
	return s, iter + 1
}

// solve3 solves a 3×3 linear system by Gaussian elimination with
// partial pivoting.
func solve3(A [3][3]float64, b [3]float64) ([3]float64, bool) {
	var M [3][4]float64
	for i := 0; i < 3; i++ {
		copy(M[i][:3], A[i][:])
		M[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[p][col]) {
				p = r
			}
		}
		if math.Abs(M[p][col]) < 1e-15 {
			return [3]float64{}, false
		}
		M[col], M[p] = M[p], M[col]
		// Eliminate.
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := M[r][col] / M[col][col]
			for c := col; c < 4; c++ {
				M[r][c] -= f * M[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = M[i][3] / M[i][i]
	}
	return x, true
}
