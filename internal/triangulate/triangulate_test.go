package triangulate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/device"
	"ace/internal/roomdb"
)

func testArray(t *testing.T) *Array {
	t.Helper()
	a, err := RoomArray(roomdb.Point{X: 10, Y: 8, Z: 3})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayRequiresFourMics(t *testing.T) {
	_, err := NewArray(
		Mic{Name: "a"}, Mic{Name: "b"}, Mic{Name: "c"},
	)
	if err == nil {
		t.Fatal("3-mic array accepted")
	}
}

func TestLocateExactArrivals(t *testing.T) {
	a := testArray(t)
	sources := []roomdb.Point{
		{X: 5, Y: 4, Z: 1.2},
		{X: 1, Y: 1, Z: 1.7},
		{X: 9, Y: 7, Z: 0.5},
		{X: 3.3, Y: 6.1, Z: 1.0},
	}
	for _, src := range sources {
		arrivals := a.Simulate(src, 12.345, nil)
		fix, err := a.Locate(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		if d := dist3(fix.Pos, src); d > 0.01 {
			t.Fatalf("source %+v located at %+v (%.3f m off, residual %.4f)", src, fix.Pos, d, fix.Residual)
		}
	}
}

func dist3(a, b roomdb.Point) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func TestLocateWithTimingNoise(t *testing.T) {
	a := testArray(t)
	rng := rand.New(rand.NewSource(21))
	src := roomdb.Point{X: 6, Y: 3, Z: 1.4}
	// 20 µs timing noise ≈ 7 mm range noise per mic.
	arrivals := a.Simulate(src, 0, func() float64 { return rng.NormFloat64() * 20e-6 })
	fix, err := a.Locate(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if d := dist3(fix.Pos, src); d > 0.15 {
		t.Fatalf("noisy fix %.3f m off", d)
	}
}

func TestLocateRejectsTooFewArrivals(t *testing.T) {
	a := testArray(t)
	arrivals := a.Simulate(roomdb.Point{X: 5, Y: 4, Z: 1}, 0, nil)
	if _, err := a.Locate(arrivals[:3]); err == nil {
		t.Fatal("3 arrivals accepted")
	}
	// Unknown mic names are ignored.
	bad := append([]Arrival{{Mic: "ghost", Time: 1}}, arrivals[:3]...)
	if _, err := a.Locate(bad); err == nil {
		t.Fatal("3 usable arrivals accepted")
	}
}

// TestLocateRegressionSeeds pins source positions that once trapped
// the solver in a z-axis local minimum (weak vertical observability
// near the podium mic) before the local re-seeding pass existed.
func TestLocateRegressionSeeds(t *testing.T) {
	a := testArray(t)
	for _, seed := range []int64{-4297179432528614305, 6176484172444383342, 7123560477352335633, -4697296505626232485} {
		rng := rand.New(rand.NewSource(seed))
		src := roomdb.Point{
			X: 0.5 + rng.Float64()*9,
			Y: 0.5 + rng.Float64()*7,
			Z: 0.2 + rng.Float64()*2,
		}
		fix, err := a.Locate(a.Simulate(src, rng.Float64()*100, nil))
		if err != nil {
			t.Fatal(err)
		}
		if d := dist3(fix.Pos, src); d > 0.05 {
			t.Errorf("seed %d: fix %.3f m off (src %+v, fix %+v, residual %g)",
				seed, d, src, fix.Pos, fix.Residual)
		}
	}
}

// TestQuickLocateConverges: any source inside the room is recovered
// from exact arrivals to centimeter accuracy.
func TestQuickLocateConverges(t *testing.T) {
	a, err := RoomArray(roomdb.Point{X: 10, Y: 8, Z: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := roomdb.Point{
			X: 0.5 + rng.Float64()*9,
			Y: 0.5 + rng.Float64()*7,
			Z: 0.2 + rng.Float64()*2,
		}
		fix, err := a.Locate(a.Simulate(src, rng.Float64()*100, nil))
		if err != nil {
			return false
		}
		return dist3(fix.Pos, src) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSolve3Singular(t *testing.T) {
	_, ok := solve3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 0}}, [3]float64{1, 2, 3})
	if ok {
		t.Fatal("singular system solved")
	}
	x, ok := solve3([3][3]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}, [3]float64{2, 6, 8})
	if !ok || x[0] != 1 || x[1] != 2 || x[2] != 2 {
		t.Fatalf("x=%v ok=%v", x, ok)
	}
}

func TestLocatorServiceBurstFlow(t *testing.T) {
	a := testArray(t)
	loc := NewLocator(daemon.Config{}, a)

	// Wire a camera: every fix aims it at the speaker.
	cam := device.NewPTZCamera(daemon.Config{}, device.VCC4)
	cam.SetMountPosition(0, 0, 2.5)
	if err := cam.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cam.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()
	pool.Call(cam.Addr(), cmdlang.New("power").SetBool("on", true)) //nolint:errcheck

	aimed := make(chan Fix, 1)
	loc.SetOnFix(func(_ int64, fix Fix) {
		pool.Call(cam.Addr(), cmdlang.New("pointAt").
			Set("target", cmdlang.FloatVector(fix.Pos.X, fix.Pos.Y, fix.Pos.Z))) //nolint:errcheck
		aimed <- fix
	})
	if err := loc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loc.Stop)

	// A speaker claps at the podium; each mic daemon reports its
	// arrival.
	src := roomdb.Point{X: 7, Y: 2, Z: 1.3}
	for _, arr := range a.Simulate(src, 5.0, nil) {
		reply, err := pool.Call(loc.Addr(), cmdlang.New("reportArrival").
			SetInt("burst", 1).SetWord("mic", arr.Mic).SetFloat("time", arr.Time))
		if err != nil {
			t.Fatal(err)
		}
		_ = reply
	}

	select {
	case fix := <-aimed:
		if d := dist3(fix.Pos, src); d > 0.05 {
			t.Fatalf("fix %.3f m off", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("burst never located")
	}
	// The camera really turned toward the speaker.
	st := cam.State()
	wantPan := math.Atan2(src.Y-0, src.X-0) * 180 / math.Pi
	if math.Abs(st.Pan-wantPan) > 1.0 {
		t.Fatalf("camera pan %.1f° want ≈%.1f°", st.Pan, wantPan)
	}

	// The fix is queryable afterwards.
	got, err := pool.Call(loc.Addr(), cmdlang.New("whereWasBurst").SetInt("burst", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float("residual", 99) > 0.01 {
		t.Fatalf("residual=%v", got)
	}
	_, err = pool.Call(loc.Addr(), cmdlang.New("whereWasBurst").SetInt("burst", 2))
	if !cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
		t.Fatalf("err=%v", err)
	}
}

func TestLocatorOneShotCommand(t *testing.T) {
	a := testArray(t)
	loc := NewLocator(daemon.Config{}, a)
	if err := loc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loc.Stop)
	pool := daemon.NewPool(nil)
	defer pool.Close()

	src := roomdb.Point{X: 2, Y: 6, Z: 1}
	arrivals := a.Simulate(src, 0, nil)
	mics := make([]string, len(arrivals))
	times := make([]float64, len(arrivals))
	for i, arr := range arrivals {
		mics[i] = arr.Mic
		times[i] = arr.Time
	}
	reply, err := pool.Call(loc.Addr(), cmdlang.New("locate").
		Set("mics", cmdlang.WordVector(mics...)).
		Set("times", cmdlang.FloatVector(times...)))
	if err != nil {
		t.Fatal(err)
	}
	pos := reply.Vector("pos")
	x, _ := pos[0].AsFloat()
	y, _ := pos[1].AsFloat()
	z, _ := pos[2].AsFloat()
	if d := dist3(roomdb.Point{X: x, Y: y, Z: z}, src); d > 0.05 {
		t.Fatalf("one-shot fix %.3f m off", d)
	}
	// Mismatched vectors rejected.
	_, err = pool.Call(loc.Addr(), cmdlang.New("locate").
		Set("mics", cmdlang.WordVector("a", "b")).
		Set("times", cmdlang.FloatVector(1)))
	if err == nil {
		t.Fatal("mismatched vectors accepted")
	}
}
