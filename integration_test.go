package ace

// Whole-building integration test: one environment running every
// subsystem at once — infrastructure, identification, workspaces,
// devices, media, phones, task automation, path creation, and the
// persistent store — exercised through a single user's day.

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/device"
	"ace/internal/media"
	"ace/internal/mobile"
	"ace/internal/ophone"
	"ace/internal/pathcreate"
	"ace/internal/roomdb"
	"ace/internal/taskauto"
	"ace/internal/tracker"
	"ace/internal/triangulate"
	"ace/internal/voice"
)

func TestWholeBuilding(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale test")
	}
	env, err := core.Start(core.Options{
		Name:      "building",
		WithIdent: true,
		Rooms: []roomdb.Room{
			{Name: "hawk", Building: "nichols", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}},
			{Name: "eagle", Building: "nichols", Dims: roomdb.Point{X: 6, Y: 5, Z: 3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Stop()
	rng := rand.New(rand.NewSource(77))
	pool := env.Pool()

	// ── Two users join the company ─────────────────────────────────
	john, err := env.RegisterUser("john_doe", "John Doe", "pw1", rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.RegisterUser("jane_roe", "Jane Roe", "pw2", rng); err != nil {
		t.Fatal(err)
	}

	// ── Rooms get devices ──────────────────────────────────────────
	if _, err := env.SetupConferenceRoom("hawk"); err != nil {
		t.Fatal(err)
	}
	printer := device.NewPrinter(env.DaemonConfig("printer_hawk", device.ClassPrinter, "hawk"))
	if err := printer.Start(); err != nil {
		t.Fatal(err)
	}
	defer printer.Stop()
	if err := env.RoomDB.DB().SetPosition("hawk", "printer_hawk", roomdb.Point{X: 1, Y: 1, Z: 1}); err != nil {
		t.Fatal(err)
	}

	// ── John badges into hawk; his workspace follows ───────────────
	if _, err := env.IdentifyByFingerprint(john, "hawk", rng, 0.02); err != nil {
		t.Fatal(err)
	}
	if err := env.WaitLocation("john_doe", "hawk", 3*time.Second); err != nil {
		t.Fatal(err)
	}
	viewer, err := env.OpenViewer("john_doe", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.Type("echo agenda"); err != nil {
		t.Fatal(err)
	}

	// ── He runs Scenario 5 and prints to the nearest printer ───────
	if err := env.Scenario5("hawk", "john_doe", [3]float64{5, 2, 1.2}); err != nil {
		t.Fatal(err)
	}
	resolver := taskauto.NewResolver(pool, env.ASD.Addr(), env.RoomDB.Addr())
	auto := taskauto.NewService(env.DaemonConfig("taskauto", "", ""), resolver)
	if err := auto.Start(); err != nil {
		t.Fatal(err)
	}
	defer auto.Stop()
	if _, err := pool.Call(auto.Addr(), cmdlang.New("task").
		SetWord("name", "print").SetWord("user", "john_doe").
		SetWord("room", "hawk").SetString("detail", "agenda").
		Set("pos", cmdlang.FloatVector(2, 2, 1))); err != nil {
		t.Fatal(err)
	}
	if len(printer.Queue()) != 1 {
		t.Fatalf("printer queue=%d", len(printer.Queue()))
	}

	// ── He calls Jane on the O-Phone ───────────────────────────────
	johnPhone := ophone.New(ophone.Config{
		Daemon: env.DaemonConfig("ophone_john_doe", ophone.ClassPhone, "hawk"),
		Owner:  "john_doe", ASDAddr: env.ASD.Addr(),
	})
	if err := johnPhone.Start(); err != nil {
		t.Fatal(err)
	}
	defer johnPhone.Stop()
	janePhone := ophone.New(ophone.Config{
		Daemon: env.DaemonConfig("ophone_jane_roe", ophone.ClassPhone, "eagle"),
		Owner:  "jane_roe", ASDAddr: env.ASD.Addr(),
		AutoAnswer: true,
	})
	if err := janePhone.Start(); err != nil {
		t.Fatal(err)
	}
	defer janePhone.Stop()

	if err := johnPhone.Dial("jane_roe"); err != nil {
		t.Fatal(err)
	}
	if johnPhone.State() != ophone.Active {
		t.Fatalf("call state=%s", johnPhone.State())
	}
	if _, err := johnPhone.Say("meeting at three"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(janePhone.Received()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("jane heard nothing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := johnPhone.Hangup(); err != nil {
		t.Fatal(err)
	}

	// ── A recording of the meeting is converted for archival via
	//    automatic path creation ─────────────────────────────────────
	conv := media.NewConverter(env.DaemonConfig("converter_main", media.ClassConverter, ""))
	if err := conv.Start(); err != nil {
		t.Fatal(err)
	}
	defer conv.Stop()
	planner := pathcreate.NewPlanner(pool, env.ASD.Addr())
	recording := []byte(strings.Repeat("meeting audio ", 300))
	archived, path, err := planner.Convert(recording, media.FormatRaw, media.FormatMPEG)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || len(archived) >= len(recording) {
		t.Fatalf("path=%v size %d→%d", path, len(recording), len(archived))
	}

	// ── The archive goes into the persistent store and survives a
	//    replica crash ──────────────────────────────────────────────
	if _, err := env.StoreClient.Put("/archive/meeting1", archived); err != nil {
		t.Fatal(err)
	}
	env.Store.Nodes[0].Stop()
	got, _, ok, err := env.StoreClient.Get("/archive/meeting1")
	if err != nil || !ok || len(got) != len(archived) {
		t.Fatalf("archive lost: ok=%v err=%v", ok, err)
	}

	// ── Voice control still works through a room microphone ───────
	vc := voice.New(voice.Config{
		Daemon: env.DaemonConfig("voice_hawk", voice.ClassVoice, "hawk"),
		Room:   "hawk", Speaker: "john_doe",
		Pos:          roomdb.Point{X: 2, Y: 2, Z: 1},
		TaskAutoAddr: auto.Addr(),
	})
	if err := vc.Start(); err != nil {
		t.Fatal(err)
	}
	defer vc.Stop()
	mic := media.NewAudioCapture(env.DaemonConfig("mic_hawk", media.ClassCapture, "hawk"))
	if err := mic.Start(); err != nil {
		t.Fatal(err)
	}
	defer mic.Stop()
	if _, err := pool.Call(mic.Addr(), cmdlang.New("say").
		SetString("dest", vc.DataAddr()).
		SetString("text", "print minutes")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for len(printer.Queue()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("spoken print never queued (utterances: %+v)", vc.Utterances())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ── A mobile socket survives the camera being power-cycled ─────
	sock := mobile.NewSocket(pool, env.ASD.Addr(), asd.Query{Name: "ptz_hawk"})
	if err := sock.Ping(); err != nil {
		t.Fatal(err)
	}

	// ── The network logger has the building's history ──────────────
	events, err := pool.Call(env.NetLog.Addr(), cmdlang.New("query").SetWord("event", "started"))
	if err != nil {
		t.Fatal(err)
	}
	if events.Int("count", 0) < 5 {
		t.Fatalf("history too thin: %v", events.Int("count", 0))
	}

	// ── The building tracks personnel across devices ───────────────
	personnel := tracker.New(tracker.Config{
		Daemon:  env.DaemonConfig("tracker", tracker.ClassTracker, ""),
		ASDAddr: env.ASD.Addr(),
	})
	if err := personnel.Start(); err != nil {
		t.Fatal(err)
	}
	defer personnel.Stop()
	// John badges into eagle with his iButton; the tracker sees it.
	if _, err := pool.Call(env.IButton.Addr(), cmdlang.New("press").
		SetInt("serial", int64(john.IButton)).SetWord("location", "eagle")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		if s, ok := personnel.LastSeen("john_doe"); ok && s.Room == "eagle" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tracker never saw john in eagle")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ── A clap at the hawk podium is triangulated and the camera
	//    turns toward it ─────────────────────────────────────────────
	array, err := triangulate.RoomArray(roomdb.Point{X: 10, Y: 8, Z: 3})
	if err != nil {
		t.Fatal(err)
	}
	locator := triangulate.NewLocator(env.DaemonConfig("soundlocator_hawk", triangulate.ClassLocator, "hawk"), array)
	if err := locator.Start(); err != nil {
		t.Fatal(err)
	}
	defer locator.Stop()
	clap := roomdb.Point{X: 6, Y: 3, Z: 1.3}
	for _, arr := range array.Simulate(clap, 42.0, nil) {
		if _, err := pool.Call(locator.Addr(), cmdlang.New("reportArrival").
			SetInt("burst", 1).SetWord("mic", arr.Mic).SetFloat("time", arr.Time)); err != nil {
			t.Fatal(err)
		}
	}
	fix, ok := locator.Fix(1)
	if !ok {
		t.Fatal("clap never located")
	}
	if d := (fix.Pos.X-clap.X)*(fix.Pos.X-clap.X) + (fix.Pos.Y-clap.Y)*(fix.Pos.Y-clap.Y); d > 0.01 {
		t.Fatalf("clap located %.2f m² off at %+v", d, fix.Pos)
	}

	// ── Everything is in the tree ──────────────────────────────────
	tree := env.ServiceTree()
	for _, want := range []string{"ptz_hawk", "printer_hawk", "ophone_john_doe", "voice_hawk", "converter_main", "taskauto", "tracker", "soundlocator_hawk"} {
		if !strings.Contains(tree, want) {
			t.Errorf("service tree missing %s", want)
		}
	}
}
