// Package ace is a from-scratch Go reproduction of the Ambient
// Computational Environments (ACE) architecture (University of
// Kansas, ICPP 2000 / ITTC-FY2002-TR-23150-01): a pervasive-computing
// middleware of cooperating service daemons with a purpose-built
// command language, lease-based service discovery, command
// notifications, KeyNote trust management, TLS transport, resource
// monitors and application launchers, VNC-style user workspaces,
// identification devices, media pipelines, and a 3-way replicated
// persistent store.
//
// The public entry point is internal/core.Environment; see README.md,
// DESIGN.md, and EXPERIMENTS.md. The root-level benchmarks in
// bench_test.go regenerate the paper's evaluated figures (run
// cmd/acebench for the full tables).
package ace
