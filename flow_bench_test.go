package ace

// Overload bench for the flow admission-control subsystem. A daemon
// with a pinned token-bucket capacity is offered paced load at 1x, 2x,
// and 4x that capacity; for each multiple we record goodput (admitted
// requests per second), the busy-shed count, and the p99 latency of
// the *admitted* requests. The gate is the no-congestion-collapse
// property: goodput at 4x offered load must hold at >= 70% of the 1x
// baseline — shedding must protect the work we do admit, not just
// refuse work.
//
// `make bench-flow` runs TestBenchFlow with ACE_BENCH_FLOW=1 and
// writes the comparison to BENCH_flow.json at the repo root. The
// plain test suite skips this so tier-1 runs stay fast.

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/flow"
)

// benchFlowRate is the pinned capacity in requests/s: small enough
// that a few paced workers reach 4x even on a single-core machine.
const benchFlowRate = 200

// flowBenchReport is one load point in BENCH_flow.json.
type flowBenchReport struct {
	Multiple       int     `json:"multiple"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	GoodputPerSec  float64 `json:"goodput_per_sec"`
	Busy           int64   `json:"busy"`
	P99AdmittedMs  float64 `json:"p99_admitted_ms"`
	MeanAdmittedMs float64 `json:"mean_admitted_ms"`
}

// runFlowLoad offers mult x benchFlowRate for the given duration and
// reports what came back. Workers pace themselves (next-time pacing,
// not sleep-per-iteration) so the offered rate is controlled rather
// than whatever a closed loop produces.
func runFlowLoad(t *testing.T, addr string, mult int, duration time.Duration) flowBenchReport {
	const workers = 4
	pace := time.Duration(float64(workers) * float64(time.Second) / float64(mult*benchFlowRate))
	var ok, busy, other atomic.Int64
	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPoolConfig(daemon.PoolConfig{
				MaxRetries: -1, // surface busy; retries would hide shedding
				Seed:       int64(w + 1),
			})
			defer pool.Close()
			local := make([]time.Duration, 0, 4096)
			next := time.Now()
			for time.Now().Before(deadline) {
				if sleep := time.Until(next); sleep > 0 {
					time.Sleep(sleep)
				}
				next = next.Add(pace)
				t0 := time.Now()
				_, err := pool.Call(addr, cmdlang.New("work"))
				switch {
				case err == nil:
					ok.Add(1)
					local = append(local, time.Since(t0))
				case cmdlang.IsRemoteCode(err, cmdlang.CodeBusy):
					busy.Add(1)
				default:
					other.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if n := other.Load(); n > 0 {
		t.Fatalf("%dx: %d requests failed with something other than busy", mult, n)
	}
	okN, busyN := ok.Load(), busy.Load()
	if okN == 0 {
		t.Fatalf("%dx: no requests were admitted", mult)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	mean := sum / time.Duration(len(latencies))
	rep := flowBenchReport{
		Multiple:       mult,
		OfferedPerSec:  float64(okN+busyN) / elapsed.Seconds(),
		GoodputPerSec:  float64(okN) / elapsed.Seconds(),
		Busy:           busyN,
		P99AdmittedMs:  float64(p99) / float64(time.Millisecond),
		MeanAdmittedMs: float64(mean) / float64(time.Millisecond),
	}
	t.Logf("%dx: offered %7.0f/s  goodput %7.0f/s  busy %6d  p99 %6.2fms  mean %6.2fms",
		mult, rep.OfferedPerSec, rep.GoodputPerSec, busyN, rep.P99AdmittedMs, rep.MeanAdmittedMs)
	return rep
}

// TestBenchFlow is the gate behind `make bench-flow`. It is skipped
// unless ACE_BENCH_FLOW=1 so the regular test suite never pays for
// benchmarking.
func TestBenchFlow(t *testing.T) {
	if os.Getenv("ACE_BENCH_FLOW") == "" {
		t.Skip("set ACE_BENCH_FLOW=1 (or run `make bench-flow`) to measure overload behaviour")
	}

	d := daemon.New(daemon.Config{
		Name: "bench_flow",
		Flow: &flow.Config{
			Rate:          benchFlowRate,
			Burst:         benchFlowRate / 10,
			InitialLimit:  8,
			MinLimit:      4,
			MaxLimit:      32,
			TargetLatency: 20 * time.Millisecond,
			QueueLen:      32,
			MaxQueueWait:  25 * time.Millisecond,
		},
	})
	d.Handle(cmdlang.CommandSpec{Name: "work"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK(), nil
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	const duration = 3 * time.Second
	var reports []flowBenchReport
	for _, mult := range []int{1, 2, 4} {
		reports = append(reports, runFlowLoad(t, d.Addr(), mult, duration))
	}

	// The gate: goodput at 4x offered load holds at >= 70% of the 1x
	// baseline. A failure here means overload degrades admitted work —
	// congestion collapse, the exact thing admission control exists to
	// prevent.
	baseline, at4x := reports[0].GoodputPerSec, reports[2].GoodputPerSec
	if at4x < 0.7*baseline {
		t.Errorf("goodput at 4x offered load is %.0f/s, want >= 70%% of the 1x baseline %.0f/s", at4x, baseline)
	}
	// Shedding must actually engage at overload, or the gate above is
	// vacuously measuring an idle system.
	if reports[2].Busy == 0 {
		t.Error("no requests were shed at 4x offered load")
	}

	out := os.Getenv("ACE_BENCH_FLOW_OUT")
	if out == "" {
		out = "BENCH_flow.json"
	}
	payload := map[string]any{
		"benchmark":    "flow-overload",
		"date":         time.Now().UTC().Format(time.RFC3339),
		"capacity_rps": benchFlowRate,
		"results":      reports,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
