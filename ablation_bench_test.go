package ace

// Ablation benchmarks: quantify the architecture's individual design
// choices by switching them off or varying them, complementing the
// headline experiments in bench_test.go.

import (
	"fmt"
	"testing"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/wire"
)

// BenchmarkAblationPooledVsFreshDial isolates the daemon.Pool
// connection-reuse choice: lease renewals, lookups, and notifications
// ride pooled sockets instead of dialing per command.
func BenchmarkAblationPooledVsFreshDial(b *testing.B) {
	d := daemon.New(daemon.Config{Name: "ablconn"})
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	defer d.Stop()
	cmd := cmdlang.New(daemon.CmdPing)

	b.Run("pooled", func(b *testing.B) {
		pool := daemon.NewPool(nil)
		defer pool.Close()
		if _, err := pool.Call(d.Addr(), cmd); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(d.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh-dial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := wire.Dial(nil, d.Addr())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Call(cmd); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkAblationSemanticValidation isolates the per-command cost
// of validating against the declared command semantics (the receiving
// side of Fig 5).
func BenchmarkAblationSemanticValidation(b *testing.B) {
	reg := cmdlang.NewRegistry().Declare(cmdlang.CommandSpec{
		Name: "move",
		Args: []cmdlang.ArgSpec{
			{Name: "pan", Kind: cmdlang.KindFloat, Required: true},
			{Name: "tilt", Kind: cmdlang.KindFloat, Required: true},
			{Name: "zoom", Kind: cmdlang.KindFloat},
		},
	})
	wireForm := cmdlang.New("move").SetFloat("pan", 10).SetFloat("tilt", 5).String()

	b.Run("parse-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cmdlang.Parse(wireForm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse+validate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reg.Parse(wireForm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNotifyTableSize isolates the control-thread cost
// of the notification lookup for commands with 0, 8, and 64 listeners
// registered on *other* commands (the executed command itself has
// none — this is the tax every command pays for the feature).
func BenchmarkAblationNotifyTableSize(b *testing.B) {
	for _, others := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("other-listeners-%d", others), func(b *testing.B) {
			d := daemon.New(daemon.Config{Name: "ablnotify"})
			d.Handle(cmdlang.CommandSpec{Name: "work"},
				func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
			d.Handle(cmdlang.CommandSpec{Name: "watched"},
				func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
			if err := d.Start(); err != nil {
				b.Fatal(err)
			}
			defer d.Stop()
			pool := daemon.NewPool(nil)
			defer pool.Close()
			for i := 0; i < others; i++ {
				if _, err := pool.Call(d.Addr(), cmdlang.New(daemon.CmdAddNotification).
					SetWord("cmd", "watched").
					SetWord("service", fmt.Sprintf("l%d", i)).
					SetString("addr", "127.0.0.1:1").
					SetWord("method", "onWatched")); err != nil {
					b.Fatal(err)
				}
			}
			cmd := cmdlang.New("work")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Call(d.Addr(), cmd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLookupByNameVsClass isolates the directory's two
// query paths: indexed name lookup vs hierarchy-aware class scan.
func BenchmarkAblationLookupByNameVsClass(b *testing.B) {
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		b.Fatal(err)
	}
	defer dir.Stop()
	for i := 0; i < 500; i++ {
		dir.Directory().Register(asd.Entry{ //nolint:errcheck
			Name: fmt.Sprintf("svc%03d", i), Addr: "h:1",
			Class: hier.ClassVCC3, Lease: 1 << 40,
		})
	}
	pool := daemon.NewPool(nil)
	defer pool.Close()

	b.Run("by-name", func(b *testing.B) {
		cmd := cmdlang.New(daemon.CmdLookup).SetWord("name", "svc250")
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(dir.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("by-class", func(b *testing.B) {
		cmd := cmdlang.New(daemon.CmdLookup).SetString("class", hier.ClassPTZCamera).SetInt("limit", 1)
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(dir.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTextVsPrebuiltCmd isolates how much of a call is
// command (re)construction: reusing one CmdLine vs building it fresh
// per call.
func BenchmarkAblationTextVsPrebuiltCmd(b *testing.B) {
	d := daemon.New(daemon.Config{Name: "ablbuild"})
	d.Handle(cmdlang.CommandSpec{Name: "move", AllowExtra: true},
		func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) { return nil, nil })
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	defer d.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	b.Run("prebuilt", func(b *testing.B) {
		cmd := cmdlang.New("move").SetFloat("pan", 1).SetFloat("tilt", 2)
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(d.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuilt-per-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cmd := cmdlang.New("move").SetFloat("pan", float64(i)).SetFloat("tilt", 2)
			if _, err := pool.Call(d.Addr(), cmd); err != nil {
				b.Fatal(err)
			}
		}
	})
}
