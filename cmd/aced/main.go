// Command aced boots a complete Ambient Computational Environment —
// service directory, room/user/authorization databases, network
// logger, persistent store cluster, resource monitors and launchers,
// workspace servers, and (optionally) identification devices — and
// serves until interrupted. It prints the service table so acectl and
// custom daemons can join.
//
// Usage:
//
//	aced [-tls] [-ident] [-rooms hawk,eagle] [-hosts bar:400,tube:250] [-store-dir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ace/internal/core"
	"ace/internal/media"
	"ace/internal/roomdb"
	"ace/internal/taskauto"
	"ace/internal/tracker"
	"ace/internal/vidmon"
)

func main() {
	tls := flag.Bool("tls", false, "mutually authenticated TLS on every daemon")
	ident := flag.Bool("ident", true, "start identification services (FIU, iButton, ID monitor)")
	rooms := flag.String("rooms", "hawk", "comma-separated room names to seed")
	hosts := flag.String("hosts", "bar:400,tube:250", "comma-separated host:bogomips specs")
	storeDir := flag.String("store-dir", "", "directory for persistent-store WALs (empty = memory)")
	vncServers := flag.Int("vnc", 1, "number of workspace (vncsim) servers")
	extras := flag.Bool("extras", false, "also start personnel tracker, task automation, converter, and video monitor")
	flag.Parse()

	opts := core.Options{
		Name:       "aced",
		TLS:        *tls,
		WithIdent:  *ident,
		StoreDir:   *storeDir,
		VNCServers: *vncServers,
	}
	for _, r := range strings.Split(*rooms, ",") {
		if r = strings.TrimSpace(r); r != "" {
			opts.Rooms = append(opts.Rooms, roomdb.Room{Name: r, Dims: roomdb.Point{X: 10, Y: 8, Z: 3}})
		}
	}
	for _, h := range strings.Split(*hosts, ",") {
		name, speedStr, ok := strings.Cut(strings.TrimSpace(h), ":")
		if !ok || name == "" {
			continue
		}
		speed, err := strconv.ParseFloat(speedStr, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aced: bad host spec %q: %v\n", h, err)
			os.Exit(2)
		}
		opts.Hosts = append(opts.Hosts, core.HostSpec{Name: name, Speed: speed, Mem: 1 << 30})
	}

	env, err := core.Start(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aced: %v\n", err)
		os.Exit(1)
	}
	defer env.Stop()

	fmt.Println("ACE environment is up.")
	fmt.Printf("  ASD (well-known socket): %s\n", env.ASD.Addr())
	fmt.Printf("  room database:           %s\n", env.RoomDB.Addr())
	fmt.Printf("  network logger:          %s\n", env.NetLog.Addr())
	fmt.Printf("  user database (AUD):     %s\n", env.AUD.Addr())
	fmt.Printf("  authorization database:  %s\n", env.AuthDB.Addr())
	if env.Store != nil {
		fmt.Printf("  persistent store:        %s\n", strings.Join(env.Store.Addrs(), " "))
	}
	fmt.Printf("  SAL:                     %s\n", env.SAL.Addr())
	fmt.Printf("  WSS:                     %s\n", env.WSS.Addr())
	if env.FIU != nil {
		fmt.Printf("  FIU / iButton:           %s / %s\n", env.FIU.Addr(), env.IButton.Addr())
	}
	if *extras {
		firstRoom := "hawk"
		if len(opts.Rooms) > 0 {
			firstRoom = opts.Rooms[0].Name
		}
		personnel := tracker.New(tracker.Config{
			Daemon:  env.DaemonConfig("tracker", tracker.ClassTracker, ""),
			ASDAddr: env.ASD.Addr(),
		})
		if err := personnel.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "aced: tracker: %v\n", err)
			os.Exit(1)
		}
		defer personnel.Stop()

		resolver := taskauto.NewResolver(env.Pool(), env.ASD.Addr(), env.RoomDB.Addr())
		auto := taskauto.NewService(env.DaemonConfig("taskauto", "", ""), resolver)
		if err := auto.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "aced: taskauto: %v\n", err)
			os.Exit(1)
		}
		defer auto.Stop()

		conv := media.NewConverter(env.DaemonConfig("converter", media.ClassConverter, ""))
		if err := conv.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "aced: converter: %v\n", err)
			os.Exit(1)
		}
		defer conv.Stop()

		vm := vidmon.NewMonitor(env.DaemonConfig("vidmon_"+firstRoom, vidmon.ClassMonitor, firstRoom), nil)
		if err := vm.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "aced: vidmon: %v\n", err)
			os.Exit(1)
		}
		defer vm.Stop()
		fmt.Printf("  extras:                  tracker %s · taskauto %s · converter %s · vidmon %s\n",
			personnel.Addr(), auto.Addr(), conv.Addr(), vm.Addr())
	}

	fmt.Println("\nService tree:")
	fmt.Print(env.ServiceTree())
	fmt.Printf("\nTelemetry: acectl -asd %s stats SERVICE · acectl -asd %s -trace call SERVICE 'cmd;' then acectl -asd %s trace ID\n",
		env.ASD.Addr(), env.ASD.Addr(), env.ASD.Addr())
	fmt.Println("\naced: serving; Ctrl-C to stop.")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\naced: shutting down.")
}
