// Command acebench regenerates the ACE report's evaluated figures and
// claims as measured tables (see DESIGN.md's experiment index and
// EXPERIMENTS.md for the paper-vs-measured record).
//
// Usage:
//
//	acebench            # run every experiment
//	acebench E2 E10     # run selected experiments
//	acebench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ace/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		selected = selected[:0]
		for _, id := range args {
			e, ok := experiments.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "acebench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Name)
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table.String())
		fmt.Printf("  [%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
