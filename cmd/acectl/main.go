// Command acectl is the terminal counterpart of the Fig 2 ACE control
// GUI: it browses the service tree through the ASD, inspects a
// service's command semantics, and issues ACE commands to any daemon.
//
// Usage (ASD address from aced's output):
//
//	acectl -asd HOST:PORT tree
//	acectl -asd HOST:PORT lookup [-name N] [-class C] [-room R]
//	acectl -asd HOST:PORT commands SERVICE
//	acectl -asd HOST:PORT call SERVICE 'move pan=10 tilt=5;'
//	acectl -asd HOST:PORT raw ADDR 'ping;'
//	acectl -asd HOST:PORT stats SERVICE
//	acectl -asd HOST:PORT notifications SERVICE [cmd]
//	acectl -asd HOST:PORT placement
//	acectl -asd HOST:PORT trace TRACE_ID
//
// With -trace, call and raw originate a distributed trace and print
// its id; `acectl trace ID` then assembles the spans every daemon
// recorded for it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hlc"
	"ace/internal/pstore"
	"ace/internal/pstore/placement"
	"ace/internal/pstore/staleness"
	"ace/internal/telemetry"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acectl: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	asdAddr := flag.String("asd", "", "ASD address (host:port)")
	withTrace := flag.Bool("trace", false, "originate a distributed trace for call/raw and print its id")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("missing subcommand (tree | lookup | commands | call | raw | stats | notifications | placement | trace)")
	}
	if *asdAddr == "" && args[0] != "raw" {
		fail("-asd is required")
	}

	pool := daemon.NewPool(nil)
	defer pool.Close()

	switch args[0] {
	case "tree":
		reply, err := pool.Call(*asdAddr, cmdlang.New("list"))
		if err != nil {
			fail("list: %v", err)
		}
		names := reply.Strings("names")
		fmt.Printf("%d services\n", len(names))
		for _, name := range names {
			info, err := pool.Call(*asdAddr, cmdlang.New(daemon.CmdLookup).SetWord("name", name))
			if err != nil {
				continue
			}
			fmt.Printf("  %-20s %-45s room=%-8s %s\n",
				name, info.Str("class", ""), info.Str("room", "-"), info.Str("addr", ""))
		}

	case "lookup":
		fs := flag.NewFlagSet("lookup", flag.ExitOnError)
		name := fs.String("name", "", "service name")
		class := fs.String("class", "", "service class (matches subclasses)")
		room := fs.String("room", "", "room")
		fs.Parse(args[1:]) //nolint:errcheck
		addrs, err := asd.ResolveAll(pool, *asdAddr, asd.Query{Name: *name, Class: *class, Room: *room})
		if err != nil {
			fail("lookup: %v", err)
		}
		for _, a := range addrs {
			fmt.Println(a)
		}

	case "commands":
		if len(args) < 2 {
			fail("commands SERVICE")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		reply, err := pool.Call(addr, cmdlang.New(daemon.CmdCommands))
		if err != nil {
			fail("commands: %v", err)
		}
		fmt.Print(reply.Str("describe", ""))

	case "call":
		if len(args) < 3 {
			fail("call SERVICE 'command args;'")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		sendRaw(pool, addr, strings.Join(args[2:], " "), *withTrace)

	case "raw":
		if len(args) < 3 {
			fail("raw ADDR 'command args;'")
		}
		sendRaw(pool, args[1], strings.Join(args[2:], " "), *withTrace)

	case "stats":
		if len(args) < 2 {
			fail("stats SERVICE")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		printStats(pool, args[1], addr)

	case "notifications":
		if len(args) < 2 {
			fail("notifications SERVICE [cmd]")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		query := cmdlang.New(daemon.CmdListNotifications)
		if len(args) > 2 {
			query.SetWord("cmd", args[2])
		}
		reply, err := pool.Call(addr, query)
		if err != nil {
			fail("listNotifications: %v", err)
		}
		targets := reply.Strings("targets")
		fmt.Printf("%d subscription(s)\n", len(targets))
		for _, t := range targets {
			fmt.Printf("  %s\n", t)
		}

	case "placement":
		printPlacement(pool, *asdAddr)

	case "trace":
		if len(args) < 2 {
			fail("trace TRACE_ID")
		}
		printTrace(pool, *asdAddr, args[1])

	default:
		fail("unknown subcommand %q", args[0])
	}
}

func sendRaw(pool *daemon.Pool, addr, text string, withTrace bool) {
	if !strings.HasSuffix(strings.TrimSpace(text), ";") {
		text += ";"
	}
	cmd, err := cmdlang.Parse(text)
	if err != nil {
		fail("parse: %v", err)
	}
	ctx := context.Background()
	var root telemetry.SpanContext
	if withTrace {
		root = telemetry.NewTrace()
		ctx = telemetry.WithSpanContext(ctx, root)
	}
	reply, err := pool.CallContext(ctx, addr, cmd)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(reply.String())
	if withTrace {
		fmt.Printf("trace %s\n", telemetry.FormatID(root.TraceID))
	}
}

// printStats fetches and prints a service's telemetry snapshot.
func printStats(pool *daemon.Pool, name, addr string) {
	reply, err := pool.Call(addr, cmdlang.New(daemon.CmdTelemetry).SetWord("op", "metrics"))
	if err != nil {
		fail("telemetry metrics: %v", err)
	}
	snap, err := telemetry.DecodeSnapshot(reply)
	if err != nil {
		fail("decode snapshot: %v", err)
	}
	fmt.Printf("%s @ %s\n", name, addr)
	printFlowSummary(snap)
	printStorageSummary(snap)
	printPlacementStats(snap)
	printConsistencySummary(snap)
	printDirectorySummary(snap)
	for _, c := range snap.Counters {
		fmt.Printf("  counter    %-28s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Printf("  gauge      %-28s %d\n", g.Name, g.Value)
	}
	for _, h := range snap.Histograms {
		avg := time.Duration(0)
		if h.Count > 0 {
			avg = time.Duration(int64(h.Sum) / h.Count)
		}
		fmt.Printf("  histogram  %-28s count=%d avg=%v\n", h.Name, h.Count, avg)
	}
}

// printFlowSummary condenses the flow.* admission-control metrics
// into an overload-at-a-glance block: current AIMD limit, inflight
// work, queue depth, and admitted-vs-shed per priority class. The raw
// counters still print below it; daemons running with flow disabled
// (or predating it) have no flow.* metrics and print nothing here.
func printFlowSummary(snap *telemetry.Snapshot) {
	admC := snap.Counter("flow.admitted.control")
	admD := snap.Counter("flow.admitted.data")
	shedC := snap.Counter("flow.shed.control")
	shedD := snap.Counter("flow.shed.data")
	limit := snap.Gauge("flow.limit")
	if admC+admD+shedC+shedD == 0 && limit == 0 {
		return
	}
	fmt.Printf("  flow       limit=%d inflight=%d queued=%d\n",
		limit, snap.Gauge("flow.inflight"), snap.Gauge("flow.queue.depth"))
	fmt.Printf("  flow       control admitted=%d shed=%d   data admitted=%d shed=%d   conns shed=%d\n",
		admC, shedC, admD, shedD, snap.Counter("flow.conns.shed"))
}

// printStorageSummary condenses the pstore storage-engine metrics
// into a durability-at-a-glance block: WAL traffic and its first
// failed append (a sealed log), the snapshot/truncate cycle, and what
// recovery saw at boot. In-memory daemons have no pstore.wal.* metrics
// and print nothing here.
func printStorageSummary(snap *telemetry.Snapshot) {
	appends := snap.Counter("pstore.wal.appends")
	appendErrs := snap.Counter("pstore.wal.append_errors")
	if appends+appendErrs == 0 && snap.Gauge("pstore.wal.segments") == 0 {
		return
	}
	fmt.Printf("  storage    wal appends=%d errors=%d syncs=%d bytes=%d segments=%d\n",
		appends, appendErrs, snap.Counter("pstore.wal.syncs"),
		snap.Gauge("pstore.wal.bytes"), snap.Gauge("pstore.wal.segments"))
	fmt.Printf("  storage    snapshots=%d errors=%d truncated_segments=%d\n",
		snap.Counter("pstore.snapshot.count"), snap.Counter("pstore.snapshot.errors"),
		snap.Counter("pstore.snapshot.truncated_segments"))
	fmt.Printf("  storage    recovery replayed=%d torn_tail=%d corrupt=%d bad_snapshots=%d\n",
		snap.Counter("pstore.recovery.replayed"), snap.Counter("pstore.recovery.torn_tail"),
		snap.Counter("pstore.recovery.corrupt_records"), snap.Counter("pstore.recovery.bad_snapshots"))
}

// printPlacementStats condenses the pstore.placement.* metrics into a
// sharding-at-a-glance block. On a store node: the epoch it enforces,
// installed maps, stale-epoch rejections, and partitions pulled in as
// a move destination. On a router/coordinator pool: map fetches,
// invalidations, redirect retries, dual-applied writes, and moves
// driven. wrong_group ticking during a map change is normal; growing
// without bound means a client cannot refresh its map. Daemons
// without placement metrics print nothing here.
func printPlacementStats(snap *telemetry.Snapshot) {
	epoch := snap.Gauge(placement.MetricEpoch)
	installs := snap.Counter(placement.MetricInstalls)
	rejects := snap.Counter(placement.MetricRejects)
	pulled := snap.Counter(placement.MetricTransferPulls)
	if epoch != 0 || installs != 0 || rejects != 0 || pulled != 0 {
		fmt.Printf("  placement  epoch=%d installs=%d wrong_group=%d transfer_pulled=%d\n",
			epoch, installs, rejects, pulled)
	}
	fetches := snap.Counter(placement.MetricMapFetches)
	invals := snap.Counter(placement.MetricInvalidations)
	redirects := snap.Counter(placement.MetricRedirects)
	duals := snap.Counter(placement.MetricDualWrites)
	moves := snap.Counter(placement.MetricMoves)
	if fetches != 0 || invals != 0 || redirects != 0 || duals != 0 || moves != 0 {
		fmt.Printf("  placement  map_fetches=%d invalidations=%d redirects=%d dual_writes=%d moves=%d\n",
			fetches, invals, redirects, duals, moves)
	}
}

// printConsistencySummary condenses the hlc/staleness/bounded-read
// metrics into a consistency-at-a-glance block. On a store node: the
// applied HLC watermark and the clock's skew clamps (nonzero means a
// peer or client is running fast beyond the tolerance) and logical
// overflows. On a client pool: the bounded read spectrum — hits vs
// quorum fallbacks, watermark samples, the AIMD controller's current
// share, and staleness violations. Violations must stay zero; every
// one was discarded (never served) and narrowed the controller, so a
// nonzero count means a lease-holding replica answered below the
// version a quorum proved it held — lost state, a wiped disk, a
// split-brain replica — and bounded traffic has been pushed back to
// the quorum path. Daemons without these metrics print nothing here.
func printConsistencySummary(snap *telemetry.Snapshot) {
	if wm := snap.Gauge(pstore.MetricHLCWatermark); wm != 0 {
		ts := hlc.Timestamp(wm)
		fmt.Printf("  hlc        watermark=%s skew_clamps=%d logical_overflows=%d\n",
			ts, snap.Counter(hlc.MetricSkewClamps), snap.Counter(hlc.MetricOverflows))
	}
	hits := snap.Counter(pstore.MetricBoundedHits)
	falls := snap.Counter(pstore.MetricBoundedFallbacks)
	samples := snap.Counter(staleness.MetricSamples)
	if hits != 0 || falls != 0 || samples != 0 {
		fmt.Printf("  bounded    hits=%d fallbacks=%d samples=%d share=%.3f violations=%d\n",
			hits, falls, samples,
			float64(snap.Gauge(staleness.MetricShare))/1000,
			snap.Counter(staleness.MetricViolations))
	}
}

// printDirectorySummary condenses the directory-replication and
// lookup-cache metrics into a directory-at-a-glance block. On a
// replicated ASD: entries held, store traffic behind the lease
// protocol, read-throughs serving sibling registrations, failover
// rescues (renew_saves — renewals honored from the durable deadline
// after the acking replica died), and store errors (nonzero means
// lease operations are failing closed, never expiring). On a client
// daemon: lookup-cache effectiveness and notification-driven
// evictions. Standalone directories and cacheless clients print
// nothing here.
func printDirectorySummary(snap *telemetry.Snapshot) {
	reads := snap.Counter(asd.MetricReplicaStoreReads)
	writes := snap.Counter(asd.MetricReplicaStoreWrites)
	if reads+writes != 0 || snap.Gauge(asd.MetricReplicaEntries) != 0 {
		fmt.Printf("  directory  entries=%d store reads=%d writes=%d errors=%d\n",
			snap.Gauge(asd.MetricReplicaEntries), reads, writes,
			snap.Counter(asd.MetricReplicaStoreErrors))
		fmt.Printf("  directory  read_throughs=%d renew_saves=%d sync_rounds=%d\n",
			snap.Counter(asd.MetricReplicaReadThroughs),
			snap.Counter(asd.MetricReplicaRenewSaves),
			snap.Counter(asd.MetricReplicaSyncRounds))
	}
	hits := snap.Counter(daemon.MetricLookupCacheHits)
	misses := snap.Counter(daemon.MetricLookupCacheMisses)
	negs := snap.Counter(daemon.MetricLookupCacheNegativeHits)
	if hits+misses+negs != 0 {
		total := hits + misses + negs
		fmt.Printf("  lookups    hits=%d negative_hits=%d misses=%d (%.0f%% cached) invalidations=%d evictions=%d\n",
			hits, negs, misses, float64(hits+negs)*100/float64(total),
			snap.Counter(daemon.MetricLookupCacheInvalidations),
			snap.Counter(daemon.MetricLookupCacheEvictions))
	}
}

// printPlacement fetches the published placement map from the ASD and
// prints the epoch, the ring parameters, each group's partition load,
// and any in-flight moves (the partitions currently paying dual-apply
// writes while their contents transfer).
func printPlacement(pool *daemon.Pool, asdAddr string) {
	reply, err := pool.Call(asdAddr, cmdlang.New(placement.CmdPlaceGet))
	if err != nil {
		if cmdlang.IsRemoteCode(err, cmdlang.CodeNotFound) {
			fmt.Println("no placement map published (unsharded deployment)")
			return
		}
		fail("placeget: %v", err)
	}
	m, err := placement.DecodeString(reply.Str("map", ""))
	if err != nil {
		fail("decode placement map: %v", err)
	}
	fmt.Printf("epoch %d  seed %d  %d partitions  %d vnodes/group  %d groups\n",
		m.Epoch, m.Seed, m.Partitions, m.VNodes, len(m.Groups))
	counts := m.Counts()
	for i, g := range m.Groups {
		fmt.Printf("  group %-12s %2d partitions  replicas %s\n",
			g.Name, counts[i], strings.Join(g.Replicas, " "))
	}
	if len(m.Moves) == 0 {
		fmt.Println("  no moves in flight")
		return
	}
	for _, mv := range m.Moves {
		fmt.Printf("  move partition %2d: %s -> %s (dual-apply open, stamp %d)\n",
			mv.Partition, m.Groups[mv.From].Name, m.Groups[mv.To].Name, m.Stamp[mv.Partition])
	}
}

// printTrace asks every registered daemon (and the ASD itself) for
// its spans of the given trace and prints the assembled tree.
func printTrace(pool *daemon.Pool, asdAddr, id string) {
	traceID, err := telemetry.ParseID(id)
	if err != nil {
		fail("bad trace id: %v", err)
	}
	addrs := map[string]bool{asdAddr: true}
	if reply, err := pool.Call(asdAddr, cmdlang.New("list")); err == nil {
		for _, name := range reply.Strings("names") {
			if info, err := pool.Call(asdAddr, cmdlang.New(daemon.CmdLookup).SetWord("name", name)); err == nil {
				if a := info.Str("addr", ""); a != "" {
					addrs[a] = true
				}
			}
		}
	}
	var spans []telemetry.Span
	query := cmdlang.New(daemon.CmdTelemetry).SetWord("op", "trace").SetString("id", id)
	for a := range addrs {
		reply, err := pool.Call(a, query.Clone())
		if err != nil {
			continue // daemon gone or telemetry disabled
		}
		got, err := telemetry.DecodeSpans(reply)
		if err != nil {
			continue
		}
		spans = append(spans, got...)
	}
	if len(spans) == 0 {
		fail("no spans recorded for trace %s", telemetry.FormatID(traceID))
	}
	fmt.Printf("trace %s: %d spans\n", telemetry.FormatID(traceID), len(spans))
	printSpanTree(spans)
}

// printSpanTree prints spans as a parent/child tree ordered by start
// time. Spans whose parent was not collected (e.g. the origin's
// implicit root) print at the top level.
func printSpanTree(spans []telemetry.Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.SpanID] = true
	}
	children := make(map[uint64][]telemetry.Span)
	var roots []telemetry.Span
	for _, s := range spans {
		if known[s.Parent] && s.Parent != s.SpanID {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s telemetry.Span, depth int)
	walk = func(s telemetry.Span, depth int) {
		status := "ok"
		if !s.OK {
			status = "fail"
		}
		fmt.Printf("  %s%-*s %s %v %s\n",
			strings.Repeat("  ", depth), 24-2*depth, s.Service+":"+s.Name, status, s.Duration, telemetry.FormatID(s.SpanID))
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
