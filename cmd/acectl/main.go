// Command acectl is the terminal counterpart of the Fig 2 ACE control
// GUI: it browses the service tree through the ASD, inspects a
// service's command semantics, and issues ACE commands to any daemon.
//
// Usage (ASD address from aced's output):
//
//	acectl -asd HOST:PORT tree
//	acectl -asd HOST:PORT lookup [-name N] [-class C] [-room R]
//	acectl -asd HOST:PORT commands SERVICE
//	acectl -asd HOST:PORT call SERVICE 'move pan=10 tilt=5;'
//	acectl -asd HOST:PORT raw ADDR 'ping;'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "acectl: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	asdAddr := flag.String("asd", "", "ASD address (host:port)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("missing subcommand (tree | lookup | commands | call | raw)")
	}
	if *asdAddr == "" && args[0] != "raw" {
		fail("-asd is required")
	}

	pool := daemon.NewPool(nil)
	defer pool.Close()

	switch args[0] {
	case "tree":
		reply, err := pool.Call(*asdAddr, cmdlang.New("list"))
		if err != nil {
			fail("list: %v", err)
		}
		names := reply.Strings("names")
		fmt.Printf("%d services\n", len(names))
		for _, name := range names {
			info, err := pool.Call(*asdAddr, cmdlang.New(daemon.CmdLookup).SetWord("name", name))
			if err != nil {
				continue
			}
			fmt.Printf("  %-20s %-45s room=%-8s %s\n",
				name, info.Str("class", ""), info.Str("room", "-"), info.Str("addr", ""))
		}

	case "lookup":
		fs := flag.NewFlagSet("lookup", flag.ExitOnError)
		name := fs.String("name", "", "service name")
		class := fs.String("class", "", "service class (matches subclasses)")
		room := fs.String("room", "", "room")
		fs.Parse(args[1:]) //nolint:errcheck
		addrs, err := asd.ResolveAll(pool, *asdAddr, asd.Query{Name: *name, Class: *class, Room: *room})
		if err != nil {
			fail("lookup: %v", err)
		}
		for _, a := range addrs {
			fmt.Println(a)
		}

	case "commands":
		if len(args) < 2 {
			fail("commands SERVICE")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		reply, err := pool.Call(addr, cmdlang.New(daemon.CmdCommands))
		if err != nil {
			fail("commands: %v", err)
		}
		fmt.Print(reply.Str("describe", ""))

	case "call":
		if len(args) < 3 {
			fail("call SERVICE 'command args;'")
		}
		addr, err := asd.Resolve(pool, *asdAddr, asd.Query{Name: args[1]})
		if err != nil {
			fail("resolve %s: %v", args[1], err)
		}
		sendRaw(pool, addr, strings.Join(args[2:], " "))

	case "raw":
		if len(args) < 3 {
			fail("raw ADDR 'command args;'")
		}
		sendRaw(pool, args[1], strings.Join(args[2:], " "))

	default:
		fail("unknown subcommand %q", args[0])
	}
}

func sendRaw(pool *daemon.Pool, addr, text string) {
	if !strings.HasSuffix(strings.TrimSpace(text), ";") {
		text += ";"
	}
	cmd, err := cmdlang.Parse(text)
	if err != nil {
		fail("parse: %v", err)
	}
	reply, err := pool.Call(addr, cmd)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(reply.String())
}
