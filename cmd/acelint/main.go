// Command acelint is ACE's static analyzer: five checks, built only
// on the standard library's go/ast + go/parser + go/types, that
// enforce the invariants PRs 1–2 introduced but nothing enforced
// mechanically — context propagation on every RPC, no mutexes held
// across wire I/O, no dropped transport errors, handler/semantics
// registry agreement, and a deterministic chaos harness. See
// docs/LINT.md.
//
// Usage:
//
//	acelint [-checks list] [packages]
//
// Findings print as "file:line: [check] message"; the exit status is
// 1 when anything is found, 2 on usage or load errors. A finding is
// suppressed by an `//acelint:ignore <check> <reason>` comment on the
// flagged line or the line above; unused suppressions are themselves
// findings.
package main

import (
	"flag"
	"fmt"
	"go/scanner"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"ace/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("acelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(*checks)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	prog, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	bad := 0
	for _, lerr := range prog.LoadErrors {
		bad++
		fmt.Fprintf(stdout, "%s\n", formatLoadError(cwd, lerr))
	}
	for _, finding := range lint.Run(prog, analyzers) {
		bad++
		pos := finding.Pos
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(cwd, pos.Filename), pos.Line, finding.Check, finding.Msg)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "acelint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// formatLoadError renders parse and type errors in the same
// file:line: [check] shape as analyzer findings.
func formatLoadError(cwd string, err error) string {
	switch e := err.(type) {
	case types.Error:
		pos := e.Fset.Position(e.Pos)
		return fmt.Sprintf("%s:%d: [typecheck] %s", relPath(cwd, pos.Filename), pos.Line, e.Msg)
	case scanner.ErrorList:
		if len(e) > 0 {
			return fmt.Sprintf("%s:%d: [parse] %s", relPath(cwd, e[0].Pos.Filename), e[0].Pos.Line, e[0].Msg)
		}
	case *scanner.Error:
		return fmt.Sprintf("%s:%d: [parse] %s", relPath(cwd, e.Pos.Filename), e.Pos.Line, e.Msg)
	}
	return fmt.Sprintf("[load] %v", err)
}

// relPath shortens absolute finding paths relative to the working
// directory for readable, clickable output.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
