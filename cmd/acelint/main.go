// Command acelint is ACE's static analyzer: ten checks built only on
// the standard library's go/ast + go/parser + go/types. The first six
// are intraprocedural (context propagation, no mutexes held across
// wire I/O, no dropped transport errors, handler/semantics registry
// agreement, deterministic chaos, bounded accept/dispatch spawns); the
// rest run on a package-set-wide call graph (wire-protocol verb
// conformance, deadline propagation, goroutine shutdown edges, metric
// naming). See docs/LINT.md.
//
// Usage:
//
//	acelint [-checks list] [-json] [-timing] [-budget d] [packages]
//	acelint -metrics-doc docs/METRICS.md [packages]
//	acelint -verbs-doc docs/PROTOCOL.md [packages]
//
// Findings print as "file:line: [check] message" (or as a JSON object
// with -json, for CI annotations); the exit status is 1 when anything
// is found, 2 on usage or load errors. A finding is suppressed by an
// `//acelint:ignore <check>[,<check>...] <reason>` comment on the
// flagged line or the line above; unused suppressions are themselves
// findings. -budget fails the run when analysis wall time exceeds the
// given duration, keeping the lint step inside its CI budget. The
// -metrics-doc and -verbs-doc modes regenerate the machine-checked
// documentation from the extracted registries instead of linting:
// -metrics-doc rewrites the target file wholesale, -verbs-doc splices
// the verb table between its markers ("-" prints to stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/scanner"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ace/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type jsonFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Check string `json:"check"`
	Msg   string `json:"message"`
}

type jsonTiming struct {
	Check  string  `json:"check"`
	Millis float64 `json:"elapsed_ms"`
}

type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	LoadErrors []string      `json:"load_errors"`
	Timings    []jsonTiming  `json:"timings"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	OverBudget bool          `json:"over_budget,omitempty"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("acelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	jsonOut := fs.Bool("json", false, "emit findings and timings as JSON (for CI annotations)")
	timing := fs.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
	budget := fs.Duration("budget", 0, "fail when the full run exceeds this duration (0 = no budget)")
	metricsDoc := fs.String("metrics-doc", "", "generate the telemetry metrics table into the given file (\"-\" = stdout) and exit")
	verbsDoc := fs.String("verbs-doc", "", "regenerate the verb table between markers in the given file (\"-\" = stdout) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(*checks)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	start := time.Now()
	prog, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *metricsDoc != "" || *verbsDoc != "" {
		return generateDocs(prog, *metricsDoc, *verbsDoc, stdout, stderr)
	}

	findings, timings := lint.RunTimed(prog, analyzers)
	elapsed := time.Since(start)
	overBudget := *budget > 0 && elapsed > *budget

	if *jsonOut {
		report := jsonReport{
			Findings:   []jsonFinding{},
			LoadErrors: []string{},
			Timings:    []jsonTiming{},
			ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
			OverBudget: overBudget,
		}
		for _, lerr := range prog.LoadErrors {
			report.LoadErrors = append(report.LoadErrors, formatLoadError(cwd, lerr))
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File: relPath(cwd, f.Pos.Filename), Line: f.Pos.Line, Check: f.Check, Msg: f.Msg,
			})
		}
		for _, t := range timings {
			report.Timings = append(report.Timings, jsonTiming{
				Check: t.Check, Millis: float64(t.Elapsed.Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		bad := len(report.Findings) + len(report.LoadErrors)
		if overBudget {
			fmt.Fprintf(stderr, "acelint: run took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
			return 1
		}
		if bad > 0 {
			fmt.Fprintf(stderr, "acelint: %d finding(s)\n", bad)
			return 1
		}
		return 0
	}

	bad := 0
	for _, lerr := range prog.LoadErrors {
		bad++
		fmt.Fprintf(stdout, "%s\n", formatLoadError(cwd, lerr))
	}
	for _, finding := range findings {
		bad++
		pos := finding.Pos
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(cwd, pos.Filename), pos.Line, finding.Check, finding.Msg)
	}
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(stderr, "%-18s %8.1fms\n", t.Check, float64(t.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(stderr, "%-18s %8.1fms\n", "total", float64(elapsed.Microseconds())/1000)
	}
	if overBudget {
		fmt.Fprintf(stderr, "acelint: run took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
		return 1
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "acelint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// generateDocs runs the -metrics-doc / -verbs-doc modes.
func generateDocs(prog *lint.Program, metricsDoc, verbsDoc string, stdout, stderr *os.File) int {
	if metricsDoc != "" {
		out := lint.MetricsMarkdown(lint.ExtractMetrics(prog))
		if metricsDoc == "-" {
			fmt.Fprint(stdout, out)
		} else if err := os.WriteFile(metricsDoc, []byte(out), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if verbsDoc != "" {
		verbs := lint.ExtractVerbs(prog)
		if verbsDoc == "-" {
			fmt.Fprint(stdout, lint.VerbTableMarkdown(verbs))
			return 0
		}
		data, err := os.ReadFile(verbsDoc)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		spliced, err := lint.SpliceVerbTable(string(data), verbs)
		if err != nil {
			fmt.Fprintf(stderr, "acelint: %s: %v\n", verbsDoc, err)
			return 2
		}
		if err := os.WriteFile(verbsDoc, []byte(spliced), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	return 0
}

// formatLoadError renders parse and type errors in the same
// file:line: [check] shape as analyzer findings.
func formatLoadError(cwd string, err error) string {
	switch e := err.(type) {
	case types.Error:
		pos := e.Fset.Position(e.Pos)
		return fmt.Sprintf("%s:%d: [typecheck] %s", relPath(cwd, pos.Filename), pos.Line, e.Msg)
	case scanner.ErrorList:
		if len(e) > 0 {
			return fmt.Sprintf("%s:%d: [parse] %s", relPath(cwd, e[0].Pos.Filename), e[0].Pos.Line, e[0].Msg)
		}
	case *scanner.Error:
		return fmt.Sprintf("%s:%d: [parse] %s", relPath(cwd, e.Pos.Filename), e.Pos.Line, e.Msg)
	}
	return fmt.Sprintf("[load] %v", err)
}

// relPath shortens absolute finding paths relative to the working
// directory for readable, clickable output.
func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
