package ace

// Directory bench for the replicated ASD and the edge lookup cache.
// Two measurements, both against store-backed directory daemons:
//
//  1. Lookup storm: p99 latency of name lookups answered by a warm
//     client-side cache versus the same lookups issued as directory
//     RPCs. The gate is the reason the cache exists: warm lookups
//     must be >= 10x faster than uncached ones.
//  2. Renewal throughput: sustained renewals/s against one directory
//     replica versus three replicas sharing the same store. The gate
//     is no-collapse — adding replicas must not cost throughput.
//
// `make bench-asd` runs TestBenchASD with ACE_BENCH_ASD=1 and writes
// the comparison to BENCH_asd.json at the repo root. The plain test
// suite skips this so tier-1 runs stay fast.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

// startBenchDirectories stands up n store-backed directory daemons
// over a fresh 3-node pstore cluster.
func startBenchDirectories(t *testing.T, n int) ([]*asd.Service, *daemon.Pool) {
	t.Helper()
	cluster, err := pstore.StartCluster(3, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.StopAll)
	pool := daemon.NewPool(nil)
	t.Cleanup(pool.Close)
	store := pstore.NewClient(pool, cluster.Addrs())
	t.Cleanup(store.Close)
	var dirs []*asd.Service
	for i := 0; i < n; i++ {
		s := asd.New(asd.Config{
			Daemon:       daemon.Config{Name: fmt.Sprintf("asd_bench%d_%d", n, i+1)},
			ReapInterval: 250 * time.Millisecond,
			Store:        store,
		})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Stop)
		dirs = append(dirs, s)
	}
	if n > 1 {
		if err := asd.SubscribeReplicas(pool, dirs); err != nil {
			t.Fatal(err)
		}
	}
	return dirs, pool
}

func benchRegister(t *testing.T, pool *daemon.Pool, asdAddr, name string) {
	t.Helper()
	_, err := pool.Call(asdAddr, cmdlang.New(daemon.CmdRegister).
		SetWord("name", name).SetWord("host", "h").SetInt("port", 1).
		SetString("addr", name+":1").SetInt("lease", 600000))
	if err != nil {
		t.Fatal(err)
	}
}

func p99(latencies []time.Duration) time.Duration {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies[len(latencies)*99/100]
}

// renewStorm drives W workers renewing M leases round-robin against
// the given directory addresses for the duration and returns the
// sustained renewals/s.
func renewStorm(t *testing.T, addrs []string, names []string, duration time.Duration) float64 {
	const workers = 8
	var done, failed atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(duration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := daemon.NewPoolConfig(daemon.PoolConfig{Seed: int64(w + 1)})
			defer pool.Close()
			addr := addrs[w%len(addrs)]
			for i := w; time.Now().Before(deadline); i += workers {
				cmd := cmdlang.New(daemon.CmdRenew).
					SetWord("name", names[i%len(names)]).SetInt("lease", 600000)
				if _, err := pool.Call(addr, cmd); err != nil {
					failed.Add(1)
				} else {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d renewals failed during the storm", n)
	}
	if done.Load() == 0 {
		t.Fatal("no renewals completed")
	}
	return float64(done.Load()) / elapsed.Seconds()
}

// TestBenchASD is the gate behind `make bench-asd`. It is skipped
// unless ACE_BENCH_ASD=1 so the regular test suite never pays for
// benchmarking.
func TestBenchASD(t *testing.T) {
	if os.Getenv("ACE_BENCH_ASD") == "" {
		t.Skip("set ACE_BENCH_ASD=1 (or run `make bench-asd`) to measure directory replication and caching")
	}

	// ---- Lookup storm: warm cache vs directory RPC ----
	dirs, pool := startBenchDirectories(t, 3)
	const services = 32
	names := make([]string, services)
	for i := range names {
		names[i] = fmt.Sprintf("bench_svc%d", i)
		benchRegister(t, pool, dirs[i%len(dirs)].Addr(), names[i])
	}

	// Uncached: every lookup is an RPC to a directory replica.
	const uncachedLookups = 4000
	uncached := make([]time.Duration, 0, uncachedLookups)
	for i := 0; i < uncachedLookups; i++ {
		cmd := cmdlang.New(daemon.CmdLookup).SetWord("name", names[i%services])
		t0 := time.Now()
		if _, err := pool.Call(dirs[i%len(dirs)].Addr(), cmd); err != nil {
			t.Fatal(err)
		}
		uncached = append(uncached, time.Since(t0))
	}

	// Warm cache: the same queries served from the pool's lookup
	// cache after one miss each.
	cpool := daemon.NewPool(nil)
	defer cpool.Close()
	client := asd.NewClient(cpool, dirs[0].Addr(), dirs[1].Addr(), dirs[2].Addr())
	for _, name := range names { // prewarm
		if _, err := client.Resolve(asd.Query{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	const warmLookups = 200000
	warm := make([]time.Duration, 0, warmLookups)
	for i := 0; i < warmLookups; i++ {
		t0 := time.Now()
		if _, err := client.Resolve(asd.Query{Name: names[i%services]}); err != nil {
			t.Fatal(err)
		}
		warm = append(warm, time.Since(t0))
	}

	uncachedP99, warmP99 := p99(uncached), p99(warm)
	speedup := float64(uncachedP99) / float64(warmP99)
	t.Logf("lookup storm: uncached p99 %v  warm-cache p99 %v  speedup %.0fx", uncachedP99, warmP99, speedup)

	// The gate: a warm lookup never leaves the process, so it must be
	// at least 10x faster than the directory round trip it replaces.
	if speedup < 10 {
		t.Errorf("warm-cache lookup p99 %v is only %.1fx faster than uncached %v, want >= 10x",
			warmP99, speedup, uncachedP99)
	}

	// ---- Renewal throughput: one replica vs three ----
	const renewNames = 24
	const stormLen = 2 * time.Second

	single, spool := startBenchDirectories(t, 1)
	sNames := make([]string, renewNames)
	for i := range sNames {
		sNames[i] = fmt.Sprintf("renew1_svc%d", i)
		benchRegister(t, spool, single[0].Addr(), sNames[i])
	}
	singleRate := renewStorm(t, []string{single[0].Addr()}, sNames, stormLen)

	trio, tpool := startBenchDirectories(t, 3)
	tNames := make([]string, renewNames)
	trioAddrs := []string{trio[0].Addr(), trio[1].Addr(), trio[2].Addr()}
	for i := range tNames {
		tNames[i] = fmt.Sprintf("renew3_svc%d", i)
		benchRegister(t, tpool, trioAddrs[i%3], tNames[i])
	}
	trioRate := renewStorm(t, trioAddrs, tNames, stormLen)

	ratio := trioRate / singleRate
	t.Logf("renewal storm: 1 replica %.0f/s  3 replicas %.0f/s  ratio %.2fx", singleRate, trioRate, ratio)

	// The gate is no-collapse: fanning renewals across three replica
	// frontends must not tank throughput versus funnelling them
	// through one. (Both setups quorum-write the same store, so the
	// replicas buy availability, not store capacity — parity, not
	// scaling, is the expectation.)
	if ratio < 0.75 {
		t.Errorf("3-replica renewal throughput %.0f/s is %.2fx the single-replica %.0f/s, want >= 0.75x",
			trioRate, ratio, singleRate)
	}

	out := os.Getenv("ACE_BENCH_ASD_OUT")
	if out == "" {
		out = "BENCH_asd.json"
	}
	payload := map[string]any{
		"benchmark": "asd-replication-and-cache",
		"date":      time.Now().UTC().Format(time.RFC3339),
		"lookup_storm": map[string]any{
			"services":        services,
			"uncached_p99_us": float64(uncachedP99) / float64(time.Microsecond),
			"warm_p99_us":     float64(warmP99) / float64(time.Microsecond),
			"speedup":         speedup,
		},
		"renewal_storm": map[string]any{
			"leases":             renewNames,
			"single_replica_rps": singleRate,
			"three_replica_rps":  trioRate,
			"three_vs_one_ratio": ratio,
		},
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
