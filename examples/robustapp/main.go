// Robustapp demonstrates the ACE application lifecycle (§5) on top of
// the persistent store (§6): a robust counter service checkpoints
// every state change into the 3-way replicated store, gets crashed
// repeatedly, and is brought back by the watcher with its exact state
// — even while one store replica is down.
package main

import (
	"fmt"
	"log"
	"time"

	"ace/internal/apps"
	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/pstore"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// Fig 17: three completely redundant storage servers.
	cluster, err := pstore.StartCluster(3, "", 50*int64(time.Millisecond))
	must(err)
	defer cluster.StopAll()
	pool := daemon.NewPool(nil)
	defer pool.Close()
	store := pstore.NewClient(pool, cluster.Addrs())
	fmt.Println("persistent store: 3 replicas at", cluster.Addrs())

	// Service directory + watcher (the §5.2 "watcher service").
	dir := asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	must(dir.Start())
	defer dir.Stop()

	ckpt := &apps.Checkpointer{Client: store, Path: "/apps/demo_counter/state"}
	makeCounter := func() *apps.RobustCounter {
		return apps.NewRobustCounter(daemon.Config{
			Name:     "demo_counter",
			ASDAddr:  dir.Addr(),
			LeaseTTL: 100 * time.Millisecond,
		}, ckpt)
	}

	counter := makeCounter()
	must(counter.Start())

	watcher := apps.NewWatcher(apps.WatcherConfig{ASDAddr: dir.Addr(), Interval: 25 * time.Millisecond})
	watcher.Watch(apps.Spec{
		Name:  "demo_counter",
		Class: apps.Robust,
		Factory: func() (apps.Startable, error) {
			fmt.Println("  watcher: relaunching demo_counter from its last checkpoint")
			return makeCounter(), nil
		},
	}, counter)
	must(watcher.Start())
	defer watcher.Stop()

	callCounter := func(cmd string) *cmdlang.CmdLine {
		addr, err := asd.Resolve(pool, dir.Addr(), asd.Query{Name: "demo_counter"})
		must(err)
		reply, err := pool.Call(addr, cmdlang.New(cmd))
		must(err)
		return reply
	}

	fmt.Println("\nincrementing the robust counter 5 times…")
	for i := 0; i < 5; i++ {
		callCounter("increment")
	}
	fmt.Println("counter value:", callCounter("value").Int("value", -1))

	fmt.Println("\nCRASH: killing the counter service.")
	counter.Stop()
	start := time.Now()
	for {
		if _, err := asd.Resolve(pool, dir.Addr(), asd.Query{Name: "demo_counter"}); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("watcher recovered it in %s.\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("counter value after recovery:", callCounter("value").Int("value", -1))

	fmt.Println("\nCRASH: killing store replica 1 as well.")
	cluster.Nodes[0].Stop()
	for i := 0; i < 3; i++ {
		callCounter("increment")
	}
	fmt.Println("counter still serving and checkpointing; value:", callCounter("value").Int("value", -1))
	fmt.Println("\nrobust applications survive service crashes AND store replica failures.")
}
