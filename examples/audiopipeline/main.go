// Audiopipeline builds the Fig 15 high-level audio system from basic
// ACE services: two sites exchange audio through distribution
// daemons; each site cancels the echo of the far-end signal; a
// recorder taps the conference; and a speech-to-command stage turns a
// spoken sentence into an ACE command that actually drives a camera
// daemon.
package main

import (
	"fmt"
	"log"
	"time"

	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/device"
	"ace/internal/media"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	// The inter-site hop: one distribution service per direction.
	distA := media.NewDistribution(daemon.Config{Name: "dist_site_a"})
	must(distA.Start())
	defer distA.Stop()

	// Site B's receive chain: a sink that also recognizes spoken
	// commands, plus a recorder tap.
	siteB := media.NewAudioSink(daemon.Config{Name: "site_b"})
	must(siteB.Start())
	defer siteB.Stop()
	recorder := media.NewAudioSink(daemon.Config{Name: "recorder"})
	must(recorder.Start())
	defer recorder.Stop()
	distA.AddSink(siteB.DataAddr())
	distA.AddSink(recorder.DataAddr())

	// Site A's capture service (simulated microphone).
	micA := media.NewAudioCapture(daemon.Config{Name: "site_a_mic"})
	must(micA.Start())
	defer micA.Stop()

	// A camera the spoken command will drive.
	camera := device.NewPTZCamera(daemon.Config{Name: "hawk_cam"}, device.VCC4)
	must(camera.Start())
	defer camera.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	fmt.Println("Fig 15 pipeline: capture → distribution → {sink, recorder} with echo cancellation")

	// Site A talks: 2 seconds of voice-band tone, then speaks the
	// command "camera on".
	fmt.Println("site A: streaming 100 frames of speech-band audio…")
	if _, err := micA.StreamTone(distA.DataAddr(), 440, 6000, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`site A: saying "camera on" …`)
	if _, err := pool.Call(micA.Addr(), cmdlang.New("say").
		SetString("dest", distA.DataAddr()).
		SetString("text", "camera on")); err != nil {
		log.Fatal(err)
	}

	// Wait for the far site to recognize the command.
	deadline := time.Now().Add(5 * time.Second)
	for len(siteB.Commands()) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("command never recognized")
		}
		time.Sleep(5 * time.Millisecond)
	}
	spoken := siteB.Commands()[0]
	fmt.Printf("site B: speech-to-command recognized %q\n", spoken)

	// Convert the recognized speech into the well-known ACE command
	// and execute it on the camera daemon.
	if spoken == "camera on;" {
		if _, err := pool.Call(camera.Addr(), cmdlang.New("power").SetBool("on", true)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("camera power state is now: on=%v\n", camera.State().On)

	// Echo cancellation demo: site B's mic hears site A's playback;
	// the canceller removes it.
	ec := media.NewEchoCanceller(80, 0.6)
	echoAdder := media.NewEchoCanceller(80, -0.6)
	var dirty, clean float64
	for _, remote := range siteB.Recorded() {
		mic := echoAdder.Process(media.NewFrame(remote.Seq), remote) // inject echo
		dirty += mic.Energy()
		clean += ec.Process(mic, remote).Energy()
	}
	fmt.Printf("echo energy before/after cancellation: %.0f → %.0f\n", dirty, clean)

	// The recorder kept the whole conference.
	fmt.Printf("recorder archived %d frames (%.1f s of audio)\n",
		len(recorder.Recorded()),
		float64(len(recorder.Recorded()))*media.FrameSamples/media.SampleRate)
}
