// Conference walks the paper's five scenarios (§7) end to end: a new
// employee gets an ACE account and default workspace; identifies
// himself by fingerprint at the conference-room podium; his workspace
// follows him there; he creates a second workspace; and he drives the
// room's projector and PTZ camera for his presentation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"ace/internal/core"
	"ace/internal/roomdb"
)

func main() {
	env, err := core.Start(core.Options{
		Name:      "conference",
		WithIdent: true,
		Rooms: []roomdb.Room{
			{Name: "hawk", Building: "nichols", Dims: roomdb.Point{X: 10, Y: 8, Z: 3}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Stop()
	rng := rand.New(rand.NewSource(7))

	// ── Scenario 1: new user & user workspace ──────────────────────
	fmt.Println("Scenario 1: the administrator registers John Doe.")
	john, err := env.RegisterUser("john_doe", "John Doe", "hunter2", rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  AUD entry created; iButton %d bound; fingerprint enrolled.\n", john.IButton)
	fmt.Printf("  default workspace housed at %s, server process on host %q (pid %d).\n\n",
		john.Workspace.VNCAddr, john.Workspace.Host, john.Workspace.PID)

	// ── Scenario 2: user identification ────────────────────────────
	fmt.Println("Scenario 2: John presses his thumb to the podium scanner in hawk.")
	reply, err := env.IdentifyByFingerprint(john, "hawk", rng, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FIU matched %q (Hamming distance %d bits).\n", reply.Str("username", ""), reply.Int("distance", 0))
	if err := env.WaitLocation("john_doe", "hawk", 2*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ID monitor updated his location in the AUD: hawk.")

	// ── Scenario 3: user workspace ─────────────────────────────────
	fmt.Println("\nScenario 3: his workspace pops up at the podium.")
	viewer, err := env.OpenViewer("john_doe", "")
	if err != nil {
		log.Fatal(err)
	}
	viewer.Type("echo opening presentation.ppt") //nolint:errcheck
	screen, err := viewer.Screen()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  podium screen shows:")
	for _, line := range screen {
		fmt.Println("   |", line)
	}

	// ── Scenario 4: multiple user workspaces ───────────────────────
	fmt.Println("\nScenario 4: John also has a separate slides workspace.")
	if _, err := env.WSS.Create("john_doe", "slides"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  workspace selector offers: %s\n", strings.Join(env.WSS.List("john_doe"), ", "))

	// ── Scenario 5: ACE services & devices ─────────────────────────
	fmt.Println("\nScenario 5: projector on, workspace to the screen, camera to the podium.")
	room, err := env.SetupConferenceRoom("hawk")
	if err != nil {
		log.Fatal(err)
	}
	if err := env.Scenario5("hawk", "john_doe", [3]float64{5, 2, 1.2}); err != nil {
		log.Fatal(err)
	}
	cam := room.Camera.State()
	proj := room.Projector.State()
	fmt.Printf("  projector: on=%v input=%q pip=%q\n", proj.On, proj.Input, proj.PIP)
	fmt.Printf("  camera:    on=%v pan=%.1f° tilt=%.1f° zoom=%.0fx\n", cam.On, cam.Pan, cam.Tilt, cam.Zoom)
	fmt.Println("\nJohn is now ready to give his presentation.")
}
