// Futurework demonstrates the §9 "Improvements & Future Work" items
// this reproduction implements beyond the paper's shipped system:
//
//  1. mobile sockets — a client transparently follows a service that
//     crashes and comes back on a different port;
//  2. automatic path creation (the Ninja idea) — a conversion path is
//     planned across specialized converter services at run time;
//  3. task automation — "print this out to the nearest printer";
//  4. voice commanding — the same task spoken into a room microphone.
package main

import (
	"fmt"
	"log"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/device"
	"ace/internal/media"
	"ace/internal/mobile"
	"ace/internal/pathcreate"
	"ace/internal/roomdb"
	"ace/internal/taskauto"
	"ace/internal/voice"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	dir := asd.New(asd.Config{ReapInterval: 20 * time.Millisecond})
	must(dir.Start())
	defer dir.Stop()
	pool := daemon.NewPool(nil)
	defer pool.Close()

	// ── 1. Mobile sockets ──────────────────────────────────────────
	fmt.Println("1. mobile sockets")
	svc := daemon.New(daemon.Config{Name: "tracker", ASDAddr: dir.Addr(), LeaseTTL: 50 * time.Millisecond})
	must(svc.Start())
	sock := mobile.NewSocket(pool, dir.Addr(), asd.Query{Name: "tracker"})
	must(sock.Ping())
	fmt.Println("   connected to tracker at", sock.Addr())

	svc.Stop()
	fmt.Println("   tracker crashed; restarting it elsewhere…")
	svc2 := daemon.New(daemon.Config{Name: "tracker", ASDAddr: dir.Addr(), LeaseTTL: 50 * time.Millisecond})
	must(svc2.Start())
	defer svc2.Stop()
	must(sock.Ping())
	re, _ := sock.Stats()
	fmt.Printf("   call succeeded at new address %s (re-resolved %d time(s))\n\n", sock.Addr(), re)

	// ── 2. Automatic path creation ─────────────────────────────────
	fmt.Println("2. automatic path creation (Ninja APC)")
	// Two specialized converters: neither can do rle→mpegsim alone.
	rleConv := media.NewConverter(daemon.Config{Name: "conv_rle", ASDAddr: dir.Addr()},
		media.Pair{From: media.FormatRLE, To: media.FormatRaw},
		media.Pair{From: media.FormatRaw, To: media.FormatRLE})
	must(rleConv.Start())
	defer rleConv.Stop()
	mpegConv := media.NewConverter(daemon.Config{Name: "conv_mpeg", ASDAddr: dir.Addr()},
		media.Pair{From: media.FormatRaw, To: media.FormatMPEG},
		media.Pair{From: media.FormatMPEG, To: media.FormatRaw})
	must(mpegConv.Start())
	defer mpegConv.Stop()

	planner := pathcreate.NewPlanner(pool, dir.Addr())
	path, err := planner.Plan(media.FormatRLE, media.FormatMPEG)
	must(err)
	fmt.Println("   planned:", path)
	payload, err := media.Convert([]byte("scanline scanline scanline scanline"), media.FormatRaw, media.FormatRLE)
	must(err)
	out, _, err := planner.Convert(payload, media.FormatRLE, media.FormatMPEG)
	must(err)
	fmt.Printf("   executed: %d RLE bytes → %d mpegsim bytes through 2 services\n\n", len(payload), len(out))

	// ── 3 & 4. Task automation + voice ─────────────────────────────
	fmt.Println("3. task automation: nearest printer")
	rooms := roomdb.New(daemon.Config{ASDAddr: dir.Addr()}, nil)
	must(rooms.Start())
	defer rooms.Stop()
	printerNear := device.NewPrinter(daemon.Config{Name: "printer_door", Room: "hawk",
		ASDAddr: dir.Addr(), RoomDBAddr: rooms.Addr()})
	must(printerNear.Start())
	defer printerNear.Stop()
	printerFar := device.NewPrinter(daemon.Config{Name: "printer_window", Room: "hawk",
		ASDAddr: dir.Addr(), RoomDBAddr: rooms.Addr()})
	must(printerFar.Start())
	defer printerFar.Stop()
	must(rooms.DB().SetPosition("hawk", "printer_door", roomdb.Point{X: 1, Y: 1, Z: 1}))
	must(rooms.DB().SetPosition("hawk", "printer_window", roomdb.Point{X: 9, Y: 7, Z: 1}))

	resolver := taskauto.NewResolver(pool, dir.Addr(), rooms.Addr())
	auto := taskauto.NewService(daemon.Config{ASDAddr: dir.Addr()}, resolver)
	must(auto.Start())
	defer auto.Stop()

	reply, err := pool.Call(auto.Addr(), cmdlang.New("task").
		SetWord("name", "print").SetWord("user", "john_doe").
		SetWord("room", "hawk").SetString("detail", "this document").
		Set("pos", cmdlang.FloatVector(2, 2, 1)))
	must(err)
	fmt.Printf("   \"print this out to the nearest printer\" → %s (%.1f m away)\n\n",
		reply.Str("device", ""), reply.Float("distance", 0))

	fmt.Println("4. the same, spoken")
	vc := voice.New(voice.Config{
		Room: "hawk", Speaker: "john_doe",
		Pos:          roomdb.Point{X: 2, Y: 2, Z: 1},
		TaskAutoAddr: auto.Addr(),
	})
	must(vc.Start())
	defer vc.Stop()
	mic := media.NewAudioCapture(daemon.Config{})
	must(mic.Start())
	defer mic.Stop()
	_, err = pool.Call(mic.Addr(), cmdlang.New("say").
		SetString("dest", vc.DataAddr()).
		SetString("text", "print meeting notes"))
	must(err)
	deadline := time.Now().Add(3 * time.Second)
	for len(vc.Utterances()) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("utterance never recognized")
		}
		time.Sleep(5 * time.Millisecond)
	}
	u := vc.Utterances()[0]
	fmt.Printf("   recognized %q → dispatched=%v\n", u.Text, u.Dispatched)
	fmt.Printf("   door printer queue: %d job(s)\n", len(printerNear.Queue()))
}
