// Quickstart: boot an ACE environment in-process, add your own
// service daemon, discover it through the service directory, command
// it with the ACE command language, and receive a notification when
// its command executes.
package main

import (
	"fmt"
	"log"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/core"
	"ace/internal/daemon"
)

func main() {
	// 1. Boot the environment: ASD, room/user/auth databases, network
	// logger, persistent store, monitors, launchers, workspace
	// servers.
	env, err := core.Start(core.Options{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Stop()
	fmt.Println("environment up; ASD at", env.ASD.Addr())

	// 2. Implement a service: declare command semantics, register a
	// handler, wire it into the environment. The shell supplies TLS,
	// ASD registration with lease renewal, room-database placement,
	// logging, and notifications.
	greeter := daemon.New(env.DaemonConfig("greeter", "Service.Demo.Greeter", "hawk"))
	greeter.Handle(cmdlang.CommandSpec{
		Name: "greet",
		Doc:  "greet a user by name",
		Args: []cmdlang.ArgSpec{{Name: "who", Kind: cmdlang.KindString, Required: true}},
	}, func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return cmdlang.OK().SetString("greeting", "Welcome to ACE, "+c.Str("who", "")+"!"), nil
	})
	if err := greeter.Start(); err != nil {
		log.Fatal(err)
	}
	defer greeter.Stop()

	// 3. Discover it the Fig 7 way: ask the ASD, get a socket address.
	addr, err := asd.Resolve(env.Pool(), env.ASD.Addr(), asd.Query{Class: "Service.Demo"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered greeter at", addr)

	// 4. Subscribe to notifications (§2.5): a second daemon wants to
	// know whenever greet executes.
	heard := make(chan string, 1)
	listener := daemon.New(env.DaemonConfig("listener", "Service.Demo.Listener", "hawk"))
	listener.Handle(cmdlang.CommandSpec{Name: "onGreeted", AllowExtra: true},
		func(_ *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
			heard <- c.Str(daemon.NotifyDetailArg, "")
			return nil, nil
		})
	if err := listener.Start(); err != nil {
		log.Fatal(err)
	}
	defer listener.Stop()
	if err := daemon.Subscribe(env.Pool(), addr, "greet", "listener", listener.Addr(), "onGreeted"); err != nil {
		log.Fatal(err)
	}

	// 5. Command it. Commands are CmdLine objects rendered to the ACE
	// textual language on the wire (Fig 5).
	cmd := cmdlang.New("greet").SetString("who", "John Doe")
	fmt.Println("sending:", cmd)
	reply, err := env.Pool().Call(addr, cmd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reply:  ", reply.Str("greeting", ""))

	// 6. The listener was notified with the executed command.
	fmt.Println("notified:", <-heard)

	// 7. Everything the environment saw went to the network logger.
	events, err := env.Pool().Call(env.NetLog.Addr(),
		cmdlang.New("query").SetWord("source", "greeter"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlog recorded %d lifecycle events for greeter\n", events.Int("count", 0))
}
