package ace

// Distributed telemetry integration test: one traced command entering
// an application daemon fans out through the ASD and the persistent
// store quorum, and the spans recorded by every daemon assemble —
// over the wire, through the `telemetry` command — into a single
// correctly parented trace. The same topology proves that metrics
// from all four instrumented layers (wire, daemon shell, asd, pstore)
// are live and queryable.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ace/internal/asd"
	"ace/internal/cmdlang"
	"ace/internal/daemon"
	"ace/internal/hier"
	"ace/internal/pstore"
	"ace/internal/telemetry"
	"ace/internal/wire"
)

// fetchSpans collects the spans a daemon recorded for traceID via its
// telemetry command — the same path acectl's trace subcommand uses.
func fetchSpans(t *testing.T, pool *daemon.Pool, addr string, traceID uint64) []telemetry.Span {
	t.Helper()
	reply, err := pool.Call(addr, cmdlang.New(daemon.CmdTelemetry).
		SetWord("op", "trace").
		SetString("id", telemetry.FormatID(traceID)))
	if err != nil {
		t.Fatalf("telemetry trace from %s: %v", addr, err)
	}
	spans, err := telemetry.DecodeSpans(reply)
	if err != nil {
		t.Fatalf("decode spans from %s: %v", addr, err)
	}
	return spans
}

// fetchSnapshot queries a daemon's metrics over the wire.
func fetchSnapshot(t *testing.T, pool *daemon.Pool, addr string) *telemetry.Snapshot {
	t.Helper()
	reply, err := pool.Call(addr, cmdlang.New(daemon.CmdTelemetry).SetWord("op", "metrics"))
	if err != nil {
		t.Fatalf("telemetry metrics from %s: %v", addr, err)
	}
	snap, err := telemetry.DecodeSnapshot(reply)
	if err != nil {
		t.Fatalf("decode snapshot from %s: %v", addr, err)
	}
	return snap
}

func TestDistributedTraceAcrossDaemons(t *testing.T) {
	// ── Topology: ASD, a 3-node store registered with it, and an ───
	// ── application daemon whose "save" command spans all of them ──
	dir := asd.New(asd.Config{})
	if err := dir.Start(); err != nil {
		t.Fatal(err)
	}
	defer dir.Stop()

	var nodes []*pstore.Node
	for i := 1; i <= 3; i++ {
		n, err := pstore.NewNode(pstore.Config{
			Daemon: daemon.Config{Name: fmt.Sprintf("pstore%d", i), ASDAddr: dir.Addr()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}

	app := daemon.New(daemon.Config{Name: "archivist", ASDAddr: dir.Addr()})
	app.Handle(cmdlang.CommandSpec{
		Name: "save",
		Doc:  "archive a value into the persistent store",
		Args: []cmdlang.ArgSpec{
			{Name: "path", Kind: cmdlang.KindString, Required: true},
			{Name: "value", Kind: cmdlang.KindString, Required: true},
		},
	}, func(ctx *daemon.Ctx, c *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		tctx := ctx.TraceContext()
		// Resolve the store replicas through the ASD — a traced
		// cross-daemon call of its own.
		lookup, err := ctx.D.Pool().CallContext(tctx, dir.Addr(),
			cmdlang.New(daemon.CmdLookup).SetString("class", hier.ClassDatabase))
		if err != nil {
			return nil, err
		}
		store := pstore.NewClient(ctx.D.Pool(), lookup.Strings("addrs"))
		version, err := store.PutContext(tctx, c.Str("path", ""), []byte(c.Str("value", "")))
		if err != nil {
			return nil, err
		}
		return cmdlang.OK().SetInt("version", int64(version)), nil
	})
	if err := app.Start(); err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	// ── Origin: a traced client call, as acectl -trace issues it ───
	client, err := wire.Dial(nil, app.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	root := telemetry.NewTrace()
	ctx := telemetry.WithSpanContext(context.Background(), root)
	reply, err := client.CallContext(ctx, cmdlang.New("save").
		SetString("path", "/wss/workspaces/john_doe/1").
		SetString("value", "6a6f686e"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Int("version", 0) != 1 {
		t.Fatalf("save version = %d, want 1", reply.Int("version", 0))
	}

	// ── Assemble the trace from every daemon over the wire ─────────
	pool := daemon.NewPool(nil)
	defer pool.Close()
	addrs := []string{app.Addr(), dir.Addr()}
	for _, n := range nodes {
		addrs = append(addrs, n.Addr())
	}
	var spans []telemetry.Span
	for _, a := range addrs {
		spans = append(spans, fetchSpans(t, pool, a, root.TraceID)...)
	}

	// The save handler performs 1 ASD lookup and, per store node, a
	// version probe (psfetch) and a write (psput): 1 + 1 + 3×2 spans.
	if len(spans) != 8 {
		t.Fatalf("assembled %d spans, want 8: %+v", len(spans), spans)
	}
	byID := make(map[uint64]telemetry.Span, len(spans))
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %+v belongs to a foreign trace", s)
		}
		if _, dup := byID[s.SpanID]; dup {
			t.Fatalf("duplicate span id %x", s.SpanID)
		}
		byID[s.SpanID] = s
	}

	// Exactly one span hangs off the origin: the archivist's "save".
	var save telemetry.Span
	roots := 0
	for _, s := range spans {
		if s.Parent == root.SpanID {
			roots++
			save = s
		}
	}
	if roots != 1 {
		t.Fatalf("%d spans parented at the origin, want exactly 1", roots)
	}
	if save.Name != "save" || save.Service != "archivist" || !save.OK {
		t.Fatalf("origin child span = %+v", save)
	}
	// Every other span is a direct child of the save span, recorded
	// by the right service.
	services := map[string]int{}
	for _, s := range spans {
		if s.SpanID == save.SpanID {
			continue
		}
		if s.Parent != save.SpanID {
			t.Fatalf("span %+v not parented at the save span %x", s, save.SpanID)
		}
		// psfetch probes answer not_found before the first write, so
		// their spans legitimately record OK=false.
		if !s.OK && s.Name != "psfetch" {
			t.Fatalf("span %+v failed", s)
		}
		services[s.Service+":"+s.Name]++
	}
	if services["asd:lookup"] != 1 {
		t.Fatalf("asd lookup spans = %d, want 1 (%v)", services["asd:lookup"], services)
	}
	psSpans := 0
	for key, n := range services {
		if key == "asd:lookup" {
			continue
		}
		psSpans += n
	}
	if psSpans != 6 {
		t.Fatalf("pstore spans = %d, want 6 (%v)", psSpans, services)
	}

	// ── Metrics: every instrumented layer answers with live data ───
	appSnap := fetchSnapshot(t, pool, app.Addr())
	if appSnap.Counter(wire.MetricFramesRecv) == 0 || appSnap.Counter(wire.MetricFramesSent) == 0 {
		t.Fatal("app daemon wire counters empty")
	}
	if h, ok := appSnap.Histogram(daemon.MetricDispatchPrefix + "save"); !ok || h.Count == 0 {
		t.Fatal("app daemon dispatch histogram for save empty")
	}
	if h, ok := appSnap.Histogram(wire.MetricCallLatency); !ok || h.Count == 0 {
		t.Fatal("app daemon outgoing call latency empty")
	}
	if h, ok := appSnap.Histogram(pstore.MetricWriteLatency); !ok || h.Count == 0 {
		t.Fatal("pstore quorum write latency empty in app registry")
	}

	asdSnap := fetchSnapshot(t, pool, dir.Addr())
	if asdSnap.Counter(asd.MetricRegistrations) < 4 {
		// Three store nodes and the archivist registered.
		t.Fatalf("asd registrations = %d, want >= 4", asdSnap.Counter(asd.MetricRegistrations))
	}
	if h, ok := asdSnap.Histogram(asd.MetricLookupLatency); !ok || h.Count == 0 {
		t.Fatal("asd lookup latency empty")
	}

	nodeSnap := fetchSnapshot(t, pool, nodes[0].Addr())
	if nodeSnap.Counter(pstore.MetricWritesApplied) == 0 {
		t.Fatal("pstore node writes-applied counter empty")
	}
	if h, ok := nodeSnap.Histogram(daemon.MetricDispatchPrefix + "psput"); !ok || h.Count == 0 {
		t.Fatal("pstore node psput dispatch histogram empty")
	}
}

// TestTraceSurvivesNotificationFanout: a notification triggered by a
// traced command carries the trace onto the listener, so the fan-out
// leg shows up in the assembled trace too.
func TestTraceSurvivesNotificationFanout(t *testing.T) {
	source := daemon.New(daemon.Config{Name: "talker"})
	source.Handle(cmdlang.CommandSpec{Name: "announce"}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		return nil, nil
	})
	if err := source.Start(); err != nil {
		t.Fatal(err)
	}
	defer source.Stop()

	heard := make(chan struct{}, 1)
	listener := daemon.New(daemon.Config{Name: "listener"})
	listener.Handle(cmdlang.CommandSpec{Name: "onAnnounce", Args: []cmdlang.ArgSpec{
		{Name: daemon.NotifySourceArg, Kind: cmdlang.KindWord},
		{Name: daemon.NotifyEventArg, Kind: cmdlang.KindWord},
		{Name: daemon.NotifyDetailArg, Kind: cmdlang.KindString},
	}}, func(_ *daemon.Ctx, _ *cmdlang.CmdLine) (*cmdlang.CmdLine, error) {
		select {
		case heard <- struct{}{}:
		default:
		}
		return nil, nil
	})
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}
	defer listener.Stop()

	pool := daemon.NewPool(nil)
	defer pool.Close()
	if err := daemon.Subscribe(pool, source.Addr(), "announce", "listener", listener.Addr(), "onAnnounce"); err != nil {
		t.Fatal(err)
	}

	root := telemetry.NewTrace()
	ctx := telemetry.WithSpanContext(context.Background(), root)
	if _, err := pool.CallContext(ctx, source.Addr(), cmdlang.New("announce")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-heard:
	case <-time.After(5 * time.Second):
		t.Fatal("notification never arrived")
	}

	// The listener records its onAnnounce span under the same trace,
	// parented at the announce span the source recorded.
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := listener.Traces().Trace(root.TraceID)
		if len(spans) == 1 {
			srcSpans := source.Traces().Trace(root.TraceID)
			if len(srcSpans) != 1 {
				t.Fatalf("source recorded %d spans, want 1", len(srcSpans))
			}
			if spans[0].Parent != srcSpans[0].SpanID {
				t.Fatalf("notification span %+v not parented at announce span %x", spans[0], srcSpans[0].SpanID)
			}
			if spans[0].Name != "onAnnounce" {
				t.Fatalf("notification span = %+v", spans[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("listener never recorded the notification span; have %d", len(spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
