module ace

go 1.22
